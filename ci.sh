#!/usr/bin/env bash
# The full offline CI gate for this workspace. Everything is deterministic
# and networkless; release mode matters (debug is 10-50x slower through the
# simulator). Run from the repository root:
#
#   ./ci.sh
#
# The `--workspace` flags are load-bearing: the repo root is itself a
# package (examples + integration tests), so bare cargo commands would
# silently skip the crates. Same gates as .claude/skills/verify/SKILL.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> etagraph lint (static invariant gate; nonzero on any non-baselined"
echo "    finding OR any stale lint.allow entry — see DESIGN.md's catalogue)"
cargo run --release -p eta-cli -- lint

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --all-targets --release"
cargo build --workspace --all-targets --release

echo "==> cargo test --workspace --release -q"
cargo test --workspace --release -q

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> report profile smoke run (quick suite, temp dir)"
PROFILE_OUT="$(mktemp -d)"
trap 'rm -rf "$PROFILE_OUT"' EXIT
cargo run --release -p eta-bench --bin report -- profile --quick --out "$PROFILE_OUT" >/dev/null
test -s "$PROFILE_OUT/profile.txt" && test -s "$PROFILE_OUT/profile.json"
grep -q "transfer/compute overlap" "$PROFILE_OUT/profile.txt"

echo "==> report faults smoke run (quick suite, temp dir)"
cargo run --release -p eta-bench --bin report -- faults --quick --out "$PROFILE_OUT" >/dev/null
test -s "$PROFILE_OUT/faults.txt" && test -s "$PROFILE_OUT/faults.json"
grep -q "availability" "$PROFILE_OUT/faults.txt"
grep -q "quarantine" "$PROFILE_OUT/faults.txt"

echo "==> chaos drill smoke run (quick suite, twice, byte-identical)"
cargo run --release -p eta-bench --bin report -- chaos --quick --out "$PROFILE_OUT" >/dev/null
grep -q "0 lost" "$PROFILE_OUT/chaos.txt"
mv "$PROFILE_OUT/chaos.json" "$PROFILE_OUT/chaos.first.json"
cargo run --release -p eta-bench --bin report -- chaos --quick --out "$PROFILE_OUT" >/dev/null
cmp "$PROFILE_OUT/chaos.first.json" "$PROFILE_OUT/chaos.json"

echo "==> overload drill gate (quick suite: nonzero exit on any lost or"
echo "    double-counted request, or a saturated cell where qos loses; then"
echo "    a second run must be byte-identical)"
cargo run --release -p eta-cli -- overload --out "$PROFILE_OUT" >/dev/null
grep -q "0 lost" "$PROFILE_OUT/overload.txt"
mv "$PROFILE_OUT/overload.json" "$PROFILE_OUT/overload.first.json"
cargo run --release -p eta-bench --bin report -- overload --quick --out "$PROFILE_OUT" >/dev/null
cmp "$PROFILE_OUT/overload.first.json" "$PROFILE_OUT/overload.json"

echo "==> report shard smoke run (quick suite, twice, byte-identical)"
cargo run --release -p eta-bench --bin report -- shard --quick --out "$PROFILE_OUT" >/dev/null
grep -q "0 mismatches" "$PROFILE_OUT/shard.txt"
mv "$PROFILE_OUT/shard.json" "$PROFILE_OUT/shard.first.json"
cargo run --release -p eta-bench --bin report -- shard --quick --out "$PROFILE_OUT" >/dev/null
cmp "$PROFILE_OUT/shard.first.json" "$PROFILE_OUT/shard.json"

echo "==> report transfer smoke run (quick suite, twice, byte-identical)"
cargo run --release -p eta-bench --bin report -- transfer --quick --out "$PROFILE_OUT" >/dev/null
grep -q "0 label mismatches" "$PROFILE_OUT/transfer.txt"
grep -q "zero-copy fastest static on 2/2 sparse cells" "$PROFILE_OUT/transfer.txt"
grep -q "adaptive beats every static mode" "$PROFILE_OUT/transfer.txt"
grep -q '"crossover_observed": true' "$PROFILE_OUT/transfer.json"
grep -q '"adaptive_within_tolerance": true' "$PROFILE_OUT/transfer.json"
grep -q '"adaptive_beats_every_static": true' "$PROFILE_OUT/transfer.json"
mv "$PROFILE_OUT/transfer.json" "$PROFILE_OUT/transfer.first.json"
cargo run --release -p eta-bench --bin report -- transfer --quick --out "$PROFILE_OUT" >/dev/null
cmp "$PROFILE_OUT/transfer.first.json" "$PROFILE_OUT/transfer.json"

echo "==> host-parallelism byte-identity (same run at 1 and 4 host threads)"
cargo run --release -p eta-cli -- generate rmat --scale 10 --edges 30000 \
    --max-weight 64 --seed 11 --out "$PROFILE_OUT/hp.etag" >/dev/null
for alg in bfs sssp; do
    for extra in "" "--sanitize" "--transfer adaptive"; do
        # shellcheck disable=SC2086
        cargo run --release -p eta-cli -- run "$PROFILE_OUT/hp.etag" \
            --alg "$alg" --host-threads 1 $extra --json >"$PROFILE_OUT/hp.1.json"
        # shellcheck disable=SC2086
        cargo run --release -p eta-cli -- run "$PROFILE_OUT/hp.etag" \
            --alg "$alg" --host-threads 4 $extra --json >"$PROFILE_OUT/hp.4.json"
        cmp "$PROFILE_OUT/hp.1.json" "$PROFILE_OUT/hp.4.json"
    done
done
cargo run --release -p eta-cli -- serve --graph rmat10 --requests 20 \
    --devices 2 --host-threads 1 --json >"$PROFILE_OUT/hp.serve.1.json"
cargo run --release -p eta-cli -- serve --graph rmat10 --requests 20 \
    --devices 2 --host-threads 4 --json >"$PROFILE_OUT/hp.serve.4.json"
cmp "$PROFILE_OUT/hp.serve.1.json" "$PROFILE_OUT/hp.serve.4.json"

echo "==> bench_sim smoke run (host-time trajectory, temp file)"
cargo run --release -p eta-bench --bin bench_sim -- --label ci-smoke \
    --threads 4 --out "$PROFILE_OUT/BENCH_sim.json" >/dev/null 2>&1
grep -q '"bench": "sim"' "$PROFILE_OUT/BENCH_sim.json"
grep -q '"sim_cycles_per_host_sec"' "$PROFILE_OUT/BENCH_sim.json"

echo "==> bench_serve smoke run (serving-layer trajectory, temp file)"
cargo run --release -p eta-bench --bin bench_serve -- --label ci-smoke \
    --out "$PROFILE_OUT/BENCH_serve.json" >/dev/null 2>&1
grep -q '"bench": "serve"' "$PROFILE_OUT/BENCH_serve.json"
grep -q '"goodput_qps"' "$PROFILE_OUT/BENCH_serve.json"

echo "==> sharded-vs-single differential (CLI label digests must match)"
cargo run --release -p eta-cli -- generate rmat --scale 10 --edges 30000 \
    --max-weight 64 --seed 7 --out "$PROFILE_OUT/g.etag" >/dev/null
for alg in bfs sssp; do
    single="$(cargo run --release -p eta-cli -- run "$PROFILE_OUT/g.etag" \
        --alg "$alg" | grep 'labels digest')"
    sharded="$(cargo run --release -p eta-cli -- run "$PROFILE_OUT/g.etag" \
        --alg "$alg" --devices 2 | grep 'labels digest')"
    if [ "$single" != "$sharded" ]; then
        echo "ci: $alg digest diverges under sharding: $single vs $sharded" >&2
        exit 1
    fi
done

echo "ci: all gates passed"
