//! GTS-like chunk-streaming framework.
//!
//! §I of the paper criticizes the stream-processing systems (GTS, Graphie)
//! that overlap transfer and compute by shipping **fixed-size topology
//! chunks** through CUDA streams: "They both use fixed-sized data chunks
//! (partitions) to stream. This could cause waste of work if there is only
//! a small part of data actually used in one chunk." This framework
//! implements that design so the claim can be measured against EtaGraph's
//! page-granular, demand-driven overlap:
//!
//! * Attribute (label) data stays resident on the device; topology lives on
//!   the host and is **re-streamed every iteration** in fixed chunks of
//!   `chunk_edges` edges, double-buffered so chunk `i+1` transfers while
//!   chunk `i` computes (the GTS "streaming topology" execution model).
//! * Each streamed chunk is processed edge-centrically: every edge in the
//!   chunk is relaxed whether or not its source is active — the wasted work
//!   the paper points at. Iterations repeat until a device-side change flag
//!   stays clear.
//!
//! The device footprint is small (two chunk buffers + labels), so this
//! framework never goes O.O.M — its weakness is transfer volume, not
//! capacity, which is exactly how the paper positions GTS.

use crate::framework::{Framework, FrameworkError};
use eta_graph::Csr;
use eta_mem::system::DSlice;
use eta_sim::{Device, Kernel, KernelMetrics, LaunchConfig, WarpCtx, WARP_SIZE};
use etagraph::result::{IterationStats, RunResult};
use etagraph::Algorithm;

/// Default chunk size: 512 K edges per streamed partition (GTS streams
/// multi-MB partitions; scaled alongside the datasets).
pub const DEFAULT_CHUNK_EDGES: u32 = 512 * 1024;

pub struct ChunkStream {
    pub chunk_edges: u32,
    pub threads_per_block: u32,
}

impl Default for ChunkStream {
    fn default() -> Self {
        ChunkStream {
            chunk_edges: DEFAULT_CHUNK_EDGES,
            threads_per_block: 256,
        }
    }
}

/// Relaxes every edge of the resident chunk (edge-centric, no frontier).
struct ChunkRelaxKernel {
    alg: Algorithm,
    src: DSlice,
    dst: DSlice,
    weights: Option<DSlice>,
    labels: DSlice,
    flag: DSlice,
    len: u32,
}

impl Kernel for ChunkRelaxKernel {
    fn name(&self) -> &'static str {
        "chunkstream_relax"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.len);
        if mask == 0 {
            return;
        }
        let s = w.load(self.src, &tids, mask);
        let d = w.load(self.dst, &tids, mask);
        let wt = match self.weights {
            Some(ws) => w.load(ws, &tids, mask),
            None => [1; WARP_SIZE],
        };
        let sl = w.load(self.labels, &s, mask);
        w.alu(1);
        let unvisited = match self.alg {
            Algorithm::Bfs | Algorithm::Sssp => u32::MAX,
            Algorithm::Sswp => 0,
            Algorithm::Cc => unreachable!("rejected at entry"),
        };
        let mut new = [0u32; WARP_SIZE];
        let mut active = 0u32;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 && sl[lane] != unvisited {
                new[lane] = match self.alg {
                    Algorithm::Bfs => sl[lane].saturating_add(1),
                    Algorithm::Sssp => sl[lane].saturating_add(wt[lane]),
                    Algorithm::Sswp => sl[lane].min(wt[lane]),
                    Algorithm::Cc => unreachable!("rejected at entry"),
                };
                active |= 1 << lane;
            }
        }
        if active == 0 {
            return;
        }
        let old = if self.alg == Algorithm::Sswp {
            w.atomic_max(self.labels, &d, &new, active)
        } else {
            w.atomic_min(self.labels, &d, &new, active)
        };
        let mut improved = 0u32;
        for lane in 0..WARP_SIZE {
            if (active >> lane) & 1 == 1 {
                let better = if self.alg == Algorithm::Sswp {
                    new[lane] > old[lane]
                } else {
                    new[lane] < old[lane]
                };
                if better {
                    improved |= 1 << lane;
                }
            }
        }
        if improved != 0 {
            w.atomic_add(self.flag, &[0; WARP_SIZE], &[1; WARP_SIZE], improved);
        }
    }
}

impl Framework for ChunkStream {
    fn name(&self) -> &'static str {
        "ChunkStream"
    }

    fn run(
        &self,
        dev: &mut Device,
        csr: &Csr,
        source: u32,
        alg: Algorithm,
    ) -> Result<RunResult, FrameworkError> {
        if alg == Algorithm::Cc {
            return Err(FrameworkError::Unsupported(
                "connected components is an EtaGraph-only extension",
            ));
        }
        if alg.needs_weights() && !csr.is_weighted() {
            return Err(FrameworkError::Unsupported("weights required"));
        }
        let tpb = self.threads_per_block;
        let n = csr.n() as u32;
        let m = csr.m() as u32;
        let chunk = self.chunk_edges.min(m.max(1));
        let n_chunks = m.div_ceil(chunk.max(1)).max(1);

        // Host-side edge list in chunk order (GTS's partitioned topology).
        let mut src_h = Vec::with_capacity(csr.m());
        let mut dst_h = Vec::with_capacity(csr.m());
        for v in 0..n {
            for &t in csr.neighbors(v) {
                src_h.push(v);
                dst_h.push(t);
            }
        }
        let w_h = csr.weights.clone().unwrap_or_default();

        // Device: double-buffered chunk slots + labels + flag.
        let weighted = alg.needs_weights();
        let buf_a = [
            dev.mem.alloc_explicit(chunk as u64)?,
            dev.mem.alloc_explicit(chunk as u64)?,
            dev.mem
                .alloc_explicit(if weighted { chunk as u64 } else { 1 })?,
        ];
        let buf_b = [
            dev.mem.alloc_explicit(chunk as u64)?,
            dev.mem.alloc_explicit(chunk as u64)?,
            dev.mem
                .alloc_explicit(if weighted { chunk as u64 } else { 1 })?,
        ];
        let labels = dev.mem.alloc_explicit(n as u64)?;
        let flag = dev.mem.alloc_explicit(1)?;

        let mut init = vec![alg.init_label(); n as usize];
        init[source as usize] = alg.source_label();
        let mut now = dev.mem.copy_h2d(labels, 0, &init, 0);

        let mut iter = 0u32;
        let mut metrics = KernelMetrics::default();
        let mut kernel_ns = 0u64;
        let mut per_iteration = Vec::new();
        let init_label = alg.init_label();

        loop {
            iter += 1;
            let start_ns = now;
            now = dev.mem.copy_h2d(flag, 0, &[0], now);

            // Stream every chunk through the double buffers: chunk c's copy
            // is issued while chunk c-1 computes, and the buffer is reused
            // only after the kernel two chunks back released it. The copy of
            // the *whole* chunk happens regardless of how many of its edges
            // matter — the fixed-granularity waste the paper calls out.
            let mut compute_ready = now;
            let mut buf_ready = [now; 2];
            for c in 0..n_chunks {
                let lo = (c * chunk) as usize;
                let hi = ((c + 1) * chunk).min(m) as usize;
                let len = (hi - lo) as u32;
                if len == 0 {
                    continue;
                }
                let slot = (c % 2) as usize;
                let bufs = if slot == 0 { &buf_a } else { &buf_b };
                let request = buf_ready[slot];
                let mut xfer_end = dev.mem.copy_h2d(bufs[0], 0, &src_h[lo..hi], request);
                xfer_end = dev.mem.copy_h2d(bufs[1], 0, &dst_h[lo..hi], xfer_end);
                if weighted {
                    xfer_end = dev.mem.copy_h2d(bufs[2], 0, &w_h[lo..hi], xfer_end);
                }
                let kern = ChunkRelaxKernel {
                    alg,
                    src: bufs[0].slice(0, len as u64),
                    dst: bufs[1].slice(0, len as u64),
                    weights: if weighted {
                        Some(bufs[2].slice(0, len as u64))
                    } else {
                        None
                    },
                    labels,
                    flag,
                    len,
                };
                let r = dev.launch(
                    &kern,
                    LaunchConfig::for_items(len, tpb),
                    xfer_end.max(compute_ready),
                );
                compute_ready = r.end_ns;
                buf_ready[slot] = r.end_ns;
                metrics.merge(&r.metrics);
                kernel_ns += r.metrics.time_ns;
            }
            now = compute_ready.max(now);

            now = dev.mem.copy_d2h(flag, 1, now);
            let changed = dev.mem.host_read(flag, 0, 1)[0];

            let visited_total = dev
                .mem
                .host_read(labels, 0, n as u64)
                .iter()
                .filter(|&&l| l != init_label)
                .count() as u64;
            per_iteration.push(IterationStats {
                iteration: iter,
                active: visited_total as u32,
                shadow_full: 0,
                shadow_partial: 0,
                pulled: false,
                visited_total,
                start_ns,
                end_ns: now,
            });
            if changed == 0 || m == 0 {
                break;
            }
        }

        now = dev.mem.copy_d2h(labels, n as u64, now);
        let labels_host = dev.mem.host_read(labels, 0, n as u64).to_vec();
        let timeline = dev.merged_timeline();
        Ok(RunResult {
            algorithm: alg,
            labels: labels_host,
            iterations: iter,
            kernel_ns,
            total_ns: now,
            per_iteration,
            metrics,
            um_stats: dev.mem.um.stats.clone(),
            overlap_fraction: timeline.overlap_fraction(),
            timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::EtaFramework;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;
    use eta_mem::timeline::SpanKind;
    use eta_sim::GpuConfig;

    fn graph() -> Csr {
        rmat(&RmatConfig::paper(11, 25_000, 91)).with_random_weights(5, 32)
    }

    fn small_chunks() -> ChunkStream {
        ChunkStream {
            chunk_edges: 4096,
            threads_per_block: 256,
        }
    }

    #[test]
    fn chunkstream_bfs_matches_reference() {
        let g = graph();
        let r = small_chunks()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        assert_eq!(r.labels, reference::bfs(&g, 0));
    }

    #[test]
    fn chunkstream_sssp_and_sswp_match_reference() {
        let g = graph();
        let sssp = small_chunks()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Sssp,
            )
            .unwrap();
        assert_eq!(sssp.labels, reference::sssp(&g, 0));
        let sswp = small_chunks()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Sswp,
            )
            .unwrap();
        assert_eq!(sswp.labels, reference::sswp(&g, 0));
    }

    #[test]
    fn chunkstream_survives_tiny_devices() {
        // The streaming design's one strength: a device barely larger than
        // two chunk buffers suffices.
        let g = graph();
        let fw = small_chunks();
        let gpu = GpuConfig::gtx1080ti_scaled(400 * 1024);
        let r = fw
            .run(&mut Device::new(gpu), &g, 0, Algorithm::Bfs)
            .unwrap();
        assert_eq!(r.labels, reference::bfs(&g, 0));
    }

    #[test]
    fn chunkstream_restreams_topology_every_iteration() {
        let g = graph();
        let r = small_chunks()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        let h2d: u64 = r
            .timeline
            .spans()
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::CopyH2D))
            .map(|s| s.bytes)
            .sum();
        let one_pass = 2 * g.m() as u64 * 4;
        assert!(
            h2d > one_pass * (r.iterations as u64 - 1),
            "fixed chunks must re-stream per iteration: {h2d} bytes over {} iterations",
            r.iterations
        );
    }

    #[test]
    fn etagraph_beats_chunkstream_at_scale() {
        // The paper's §I claim, measured: demand-driven fine-grained overlap
        // beats fixed-chunk re-streaming once re-streaming the topology
        // every iteration costs more than the per-iteration frontier
        // bookkeeping (on tiny graphs the streaming design actually wins —
        // its per-iteration fixed costs are lower).
        let g = rmat(&RmatConfig::paper(15, 1_200_000, 91));
        let eta = EtaFramework::paper()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        let chunks = ChunkStream::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        assert_eq!(eta.labels, chunks.labels);
        assert!(
            eta.total_ns * 2 < chunks.total_ns,
            "EtaGraph {} vs ChunkStream {}",
            eta.total_ns,
            chunks.total_ns
        );
    }
}
