//! CuSha-like framework: G-Shards edge-centric processing.
//!
//! CuSha stores the graph as shards of explicit `(src, dst, src_value)`
//! entries sorted by destination window (plus the Concatenated-Windows
//! mapping arrays), trading space — about 5.5 words per edge versus CSR's
//! ~1 — for perfectly coalesced streaming. Every iteration touches **all**
//! edges (there is no frontier):
//!
//! 1. a *refresh* pass rewrites each entry's `src_value` from the label
//!    array (CuSha's windowed update, coalesced because shard sources are
//!    sorted);
//! 2. the *relax* pass streams `(src_value, dst[, weight])` with unrolled
//!    consecutive loads and applies the algorithm's reduction into the
//!    label array, whose shard-window-sorted destinations keep the atomics
//!    dense.
//!
//! Iterations repeat until a device-side change flag stays zero — classic
//! Jacobi/Bellman-Ford convergence. This reproduces CuSha's published
//! profile and its Table III behaviour: competitive kernel times on
//! few-iteration social graphs, out-of-memory from mid-size graphs onward,
//! and no way to exploit a small active set.

use crate::framework::{Framework, FrameworkError};
use eta_graph::{Csr, GShards};
use eta_mem::system::DSlice;
use eta_sim::{Device, Kernel, KernelMetrics, LaunchConfig, WarpCtx, WARP_SIZE};
use etagraph::result::{IterationStats, RunResult};
use etagraph::Algorithm;

/// Consecutive edges processed per thread (CuSha's unrolled entry stride).
pub const EDGES_PER_THREAD: u32 = 8;

pub struct CushaLike {
    pub threads_per_block: u32,
    pub window: u32,
}

impl Default for CushaLike {
    fn default() -> Self {
        CushaLike {
            threads_per_block: 256,
            window: GShards::DEFAULT_WINDOW,
        }
    }
}

/// Refresh pass: `src_value[e] = labels[src[e]]` for all edges.
struct RefreshKernel {
    src: DSlice,
    srcval: DSlice,
    labels: DSlice,
    m: u32,
}

impl Kernel for RefreshKernel {
    fn name(&self) -> &'static str {
        "cusha_refresh"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let first = tids[0] * EDGES_PER_THREAD;
        if first >= self.m {
            return;
        }
        let mut start = [0u32; WARP_SIZE];
        let mut count = [0u32; WARP_SIZE];
        let mut mask = 0u32;
        for lane in 0..WARP_SIZE {
            let s = tids[lane] * EDGES_PER_THREAD;
            if s < self.m {
                mask |= 1 << lane;
                start[lane] = s;
                count[lane] = EDGES_PER_THREAD.min(self.m - s);
            }
        }
        let srcs = w.load_burst(self.src, &start, &count, mask);
        for (j, srow) in srcs.iter().enumerate() {
            let mut row = 0u32;
            let mut idx = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (mask >> lane) & 1 == 1 && (j as u32) < count[lane] {
                    row |= 1 << lane;
                    idx[lane] = start[lane] + j as u32;
                }
            }
            // Sources within a shard are sorted, so this gather coalesces
            // (the point of the CW layout).
            let vals = w.load(self.labels, srow, row);
            w.store(self.srcval, &idx, &vals, row);
        }
    }
}

/// Relax pass: stream all entries, reduce into labels, raise the change
/// flag when anything improves.
struct RelaxKernel {
    alg: Algorithm,
    dst: DSlice,
    srcval: DSlice,
    weights: Option<DSlice>,
    labels: DSlice,
    flag: DSlice,
    m: u32,
}

impl Kernel for RelaxKernel {
    fn name(&self) -> &'static str {
        "cusha_relax"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        if tids[0] * EDGES_PER_THREAD >= self.m {
            return;
        }
        let mut start = [0u32; WARP_SIZE];
        let mut count = [0u32; WARP_SIZE];
        let mut mask = 0u32;
        for lane in 0..WARP_SIZE {
            let s = tids[lane] * EDGES_PER_THREAD;
            if s < self.m {
                mask |= 1 << lane;
                start[lane] = s;
                count[lane] = EDGES_PER_THREAD.min(self.m - s);
            }
        }
        let vals = w.load_burst(self.srcval, &start, &count, mask);
        let dsts = w.load_burst(self.dst, &start, &count, mask);
        let wts = self
            .weights
            .map(|ws| w.load_burst(ws, &start, &count, mask));

        for j in 0..vals.len() {
            let mut row = 0u32;
            for lane in 0..WARP_SIZE {
                if (mask >> lane) & 1 == 1 && (j as u32) < count[lane] {
                    row |= 1 << lane;
                }
            }
            if row == 0 {
                continue;
            }
            let unvisited = match self.alg {
                Algorithm::Bfs | Algorithm::Sssp => u32::MAX,
                Algorithm::Sswp => 0,
                Algorithm::Cc => unreachable!("rejected at entry"),
            };
            let mut new = [0u32; WARP_SIZE];
            let mut active_row = 0u32;
            for lane in 0..WARP_SIZE {
                if (row >> lane) & 1 == 1 {
                    let sv = vals[j][lane];
                    if sv == unvisited {
                        continue; // source side not reached yet
                    }
                    let wt = wts.as_ref().map_or(1, |rows| rows[j][lane]);
                    new[lane] = match self.alg {
                        Algorithm::Bfs => sv.saturating_add(1),
                        Algorithm::Sssp => sv.saturating_add(wt),
                        Algorithm::Sswp => sv.min(wt),
                        Algorithm::Cc => unreachable!("rejected at entry"),
                    };
                    active_row |= 1 << lane;
                }
            }
            w.alu(1);
            if active_row == 0 {
                continue;
            }
            let old = if self.alg == Algorithm::Sswp {
                w.atomic_max(self.labels, &dsts[j], &new, active_row)
            } else {
                w.atomic_min(self.labels, &dsts[j], &new, active_row)
            };
            let mut improved = 0u32;
            for lane in 0..WARP_SIZE {
                if (active_row >> lane) & 1 == 1 {
                    let better = if self.alg == Algorithm::Sswp {
                        new[lane] > old[lane]
                    } else {
                        new[lane] < old[lane]
                    };
                    if better {
                        improved |= 1 << lane;
                    }
                }
            }
            if improved != 0 {
                w.atomic_add(self.flag, &[0; WARP_SIZE], &[1; WARP_SIZE], improved);
            }
        }
    }
}

impl Framework for CushaLike {
    fn name(&self) -> &'static str {
        "CuSha"
    }

    fn run(
        &self,
        dev: &mut Device,
        csr: &Csr,
        source: u32,
        alg: Algorithm,
    ) -> Result<RunResult, FrameworkError> {
        if alg == Algorithm::Cc {
            return Err(FrameworkError::Unsupported(
                "connected components is an EtaGraph-only extension",
            ));
        }
        if alg.needs_weights() && !csr.is_weighted() {
            return Err(FrameworkError::Unsupported("weights required"));
        }
        let tpb = self.threads_per_block;
        let n = csr.n() as u32;
        let m = csr.m() as u64;

        // Host-side sharding (preprocessing, uncharged per the methodology).
        let shards = GShards::from_csr(csr, self.window);
        let mut src_h = Vec::with_capacity(csr.m());
        let mut dst_h = Vec::with_capacity(csr.m());
        let mut w_h: Vec<u32> = Vec::with_capacity(if csr.is_weighted() { csr.m() } else { 0 });
        for shard in &shards.shards {
            src_h.extend_from_slice(&shard.src);
            dst_h.extend_from_slice(&shard.dst);
            if let Some(ws) = &shard.weights {
                w_h.extend_from_slice(ws);
            }
        }

        // Device structures: the G-Shards + CW footprint (≈5.5 words/edge).
        let src = dev.mem.alloc_explicit(m.max(1))?;
        let dst = dev.mem.alloc_explicit(m.max(1))?;
        let srcval = dev.mem.alloc_explicit(m.max(1))?;
        // Concatenated-Windows mapping arrays and the per-window update
        // staging buffer: allocated as in CuSha, exercised implicitly by the
        // coalesced refresh pass.
        let _cw_map = dev.mem.alloc_explicit(m.max(1))?;
        let _cw_offsets = dev.mem.alloc_explicit(m.max(1))?;
        let _update_stage = dev.mem.alloc_explicit((m / 2).max(1))?;
        let weights = if alg.needs_weights() {
            Some(dev.mem.alloc_explicit(m.max(1))?)
        } else {
            None
        };
        let labels = dev.mem.alloc_explicit(n as u64)?;
        let flag = dev.mem.alloc_explicit(1)?;

        // Upfront transfers of all shard data.
        let mut now = 0;
        if m > 0 {
            now = dev.mem.copy_h2d(src, 0, &src_h, now);
            now = dev.mem.copy_h2d(dst, 0, &dst_h, now);
        }
        if let Some(ws) = weights {
            now = dev.mem.copy_h2d(ws, 0, &w_h, now);
        }
        let mut init = vec![alg.init_label(); n as usize];
        init[source as usize] = alg.source_label();
        now = dev.mem.copy_h2d(labels, 0, &init, now);

        let total_threads = (m as u32).div_ceil(EDGES_PER_THREAD).max(1);
        let launch = LaunchConfig::for_items(total_threads, tpb);

        let mut iter = 0u32;
        let mut metrics = KernelMetrics::default();
        let mut kernel_ns = 0u64;
        let mut per_iteration = Vec::new();
        let init_label = alg.init_label();

        loop {
            iter += 1;
            let start_ns = now;
            now = dev.mem.copy_h2d(flag, 0, &[0], now);

            let refresh = RefreshKernel {
                src,
                srcval,
                labels,
                m: m as u32,
            };
            let r = dev.launch(&refresh, launch, now);
            now = r.end_ns;
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;

            let relax = RelaxKernel {
                alg,
                dst,
                srcval,
                weights,
                labels,
                flag,
                m: m as u32,
            };
            let r = dev.launch(&relax, launch, now);
            now = r.end_ns;
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;

            now = dev.mem.copy_d2h(flag, 1, now);
            let changed = dev.mem.host_read(flag, 0, 1)[0];

            let visited_total = dev
                .mem
                .host_read(labels, 0, n as u64)
                .iter()
                .filter(|&&l| l != init_label)
                .count() as u64;
            per_iteration.push(IterationStats {
                iteration: iter,
                active: visited_total as u32,
                shadow_full: 0,
                shadow_partial: 0,
                pulled: false,
                visited_total,
                start_ns,
                end_ns: now,
            });

            if changed == 0 || m == 0 {
                break;
            }
        }

        now = dev.mem.copy_d2h(labels, n as u64, now);
        let labels_host = dev.mem.host_read(labels, 0, n as u64).to_vec();
        let timeline = dev.merged_timeline();
        Ok(RunResult {
            algorithm: alg,
            labels: labels_host,
            iterations: iter,
            kernel_ns,
            total_ns: now,
            per_iteration,
            metrics,
            um_stats: dev.mem.um.stats.clone(),
            overlap_fraction: timeline.overlap_fraction(),
            timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;
    use eta_sim::GpuConfig;

    fn graph() -> Csr {
        rmat(&RmatConfig::paper(11, 25_000, 55)).with_random_weights(8, 32)
    }

    #[test]
    fn cusha_bfs_matches_reference() {
        let g = graph();
        let r = CushaLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        assert_eq!(r.labels, reference::bfs(&g, 0));
    }

    #[test]
    fn cusha_sssp_matches_reference() {
        let g = graph();
        let r = CushaLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Sssp,
            )
            .unwrap();
        assert_eq!(r.labels, reference::sssp(&g, 0));
    }

    #[test]
    fn cusha_sswp_matches_reference() {
        let g = graph();
        let r = CushaLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Sswp,
            )
            .unwrap();
        assert_eq!(r.labels, reference::sswp(&g, 0));
    }

    #[test]
    fn cusha_is_the_hungriest_framework() {
        // ~5.5 words/edge: a device fitting 3 words/edge must OOM.
        let g = graph();
        let gpu = GpuConfig::gtx1080ti_scaled(3 * g.m() as u64 * 4);
        match CushaLike::default().run(&mut Device::new(gpu), &g, 0, Algorithm::Bfs) {
            Err(FrameworkError::Oom(_)) => {}
            other => panic!("expected OOM, got {:?}", other.map(|r| r.iterations)),
        }
    }

    #[test]
    fn cusha_touches_all_edges_every_iteration() {
        let g = graph();
        let r = CushaLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        // Per-iteration kernel work is flat: iteration instructions are all
        // within 2x of each other (no frontier scaling).
        let durations: Vec<u64> = r
            .per_iteration
            .iter()
            .map(|s| s.end_ns - s.start_ns)
            .collect();
        let min = *durations.iter().min().unwrap();
        let max = *durations.iter().max().unwrap();
        assert!(
            max < min.saturating_mul(3),
            "edge-centric iterations should be flat: {durations:?}"
        );
        // And the iteration count tracks BFS depth (+1 to detect no change).
        let depth = reference::bfs(&g, 0)
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap();
        assert!(r.iterations >= depth && r.iterations <= depth + 2);
    }

    #[test]
    fn empty_graph_terminates() {
        let g = Csr::from_edges(3, &[]);
        let r = CushaLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        assert_eq!(r.labels, vec![0, u32::MAX, u32::MAX]);
    }
}
