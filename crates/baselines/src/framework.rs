//! The common interface Table III drives: run an algorithm from a source on
//! a fresh device, report kernel/total time or an out-of-memory failure.

use eta_graph::Csr;
use eta_mem::system::MemError;
use eta_sim::{Device, GpuConfig};
use etagraph::{Algorithm, EtaConfig, RunResult};

/// Why a framework run produced no numbers.
#[derive(Debug, Clone)]
pub enum FrameworkError {
    /// The paper's "O.O.M": the framework's device footprint does not fit.
    Oom(MemError),
    /// The framework cannot run this algorithm (Table III's '–' cells).
    Unsupported(&'static str),
}

impl std::fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameworkError::Oom(e) => write!(f, "O.O.M ({e})"),
            FrameworkError::Unsupported(why) => write!(f, "unsupported: {why}"),
        }
    }
}

impl std::error::Error for FrameworkError {}

impl From<MemError> for FrameworkError {
    fn from(e: MemError) -> Self {
        FrameworkError::Oom(e)
    }
}

/// A GPU graph-processing framework under comparison.
pub trait Framework {
    fn name(&self) -> &'static str;

    /// Runs `alg` from `source` on `dev`, which must be a fresh device (the
    /// frameworks assume an empty allocator for their O.O.M accounting).
    ///
    /// Taking the device from the caller — rather than a `GpuConfig` to
    /// build one internally — lets callers attach instrumentation and read
    /// it back after the run: `Device::sanitizer_report` is the motivating
    /// example. Use [`run_fresh`] for the old construct-and-run behavior.
    ///
    /// `csr` must carry weights when the algorithm needs them. Total time
    /// includes host→device transfer of the framework's own data structures
    /// (conversion/preprocessing happens "in advance", as the paper's
    /// methodology states, and is not charged).
    fn run(
        &self,
        dev: &mut Device,
        csr: &Csr,
        source: u32,
        alg: Algorithm,
    ) -> Result<RunResult, FrameworkError>;
}

/// Runs `fw` on a freshly constructed device — the common non-instrumented
/// path, equivalent to the pre-refactor `Framework::run(gpu, ...)`.
pub fn run_fresh(
    fw: &dyn Framework,
    gpu: GpuConfig,
    csr: &Csr,
    source: u32,
    alg: Algorithm,
) -> Result<RunResult, FrameworkError> {
    fw.run(&mut Device::new(gpu), csr, source, alg)
}

/// EtaGraph behind the common interface.
pub struct EtaFramework {
    pub cfg: EtaConfig,
    pub name: &'static str,
}

impl EtaFramework {
    /// The headline configuration ("EtaGraph").
    pub fn paper() -> Self {
        EtaFramework {
            cfg: EtaConfig::paper(),
            name: "EtaGraph",
        }
    }

    /// The "EtaGraph w/o UMP" row of Table III.
    pub fn without_ump() -> Self {
        EtaFramework {
            cfg: EtaConfig::without_ump(),
            name: "EtaGraph w/o UMP",
        }
    }
}

impl Framework for EtaFramework {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(
        &self,
        dev: &mut Device,
        csr: &Csr,
        source: u32,
        alg: Algorithm,
    ) -> Result<RunResult, FrameworkError> {
        etagraph::engine::run(dev, csr, source, alg, &self.cfg).map_err(|e| match e {
            etagraph::QueryError::Mem(m) => FrameworkError::Oom(m),
            etagraph::QueryError::SourceOutOfRange { .. } => {
                FrameworkError::Unsupported("source out of range")
            }
            // The bench harness never installs a fault plan; a fault here
            // would mean a plan leaked into a baseline device.
            etagraph::QueryError::DeviceFault(_) => {
                FrameworkError::Unsupported("device fault injected outside a fault run")
            }
            // Likewise: baselines run without checkpoint hooks, so a
            // checkpoint error can only mean misconfiguration upstream.
            etagraph::QueryError::Checkpoint(_) => {
                FrameworkError::Unsupported("checkpoint error outside a resumable run")
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;

    #[test]
    fn eta_framework_runs_and_matches_reference() {
        let g = rmat(&RmatConfig::paper(10, 10_000, 2));
        let fw = EtaFramework::paper();
        let r = run_fresh(&fw, GpuConfig::default_preset(), &g, 0, Algorithm::Bfs).unwrap();
        assert_eq!(r.labels, reference::bfs(&g, 0));
        assert_eq!(fw.name(), "EtaGraph");
        assert_eq!(EtaFramework::without_ump().name(), "EtaGraph w/o UMP");
    }

    #[test]
    fn framework_error_formats() {
        let e = FrameworkError::Unsupported("no SSWP");
        assert!(e.to_string().contains("no SSWP"));
        let oom: FrameworkError = MemError::Oom {
            requested_bytes: 10,
            free_bytes: 5,
        }
        .into();
        assert!(oom.to_string().contains("O.O.M"));
    }
}
