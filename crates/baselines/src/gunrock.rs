//! Gunrock-like framework: frontier advance + filter with load-balanced
//! workload mapping.
//!
//! Gunrock's data-centric abstraction runs each iteration as an **advance**
//! (expand the frontier's edges, relax labels, emit candidate vertices) and
//! a **filter** (validate and compact candidates into the next frontier).
//! Workload mapping follows the per-thread / warp-cooperative split: low
//! out-degree vertices are handled one per thread (divergent but cheap),
//! high out-degree vertices are processed cooperatively by a whole warp
//! with coalesced edge loads.
//!
//! Cost profile relative to EtaGraph, as the paper observes:
//!
//! * everything is explicitly allocated and copied upfront — including
//!   Gunrock's generously sized work buffers (an `|E|/2`-word
//!   load-balancing scan array plus frontier queues), which is why Gunrock
//!   is the second framework to go O.O.M in Table III;
//! * the two-kernel (advance+filter) structure touches frontier data twice
//!   per iteration, and SSSP adds a third (near/far bucketing) pass —
//!   matching Gunrock's large SSSP gap in Table III;
//! * no shared-memory staging of neighbor lists.

use crate::framework::{Framework, FrameworkError};
use eta_graph::Csr;
use eta_mem::system::DSlice;
use eta_sim::{Device, Kernel, KernelMetrics, LaunchConfig, WarpCtx, WARP_SIZE};
use etagraph::active_set::DeviceQueue;
use etagraph::result::{IterationStats, RunResult};
use etagraph::Algorithm;

/// Degree threshold between the per-thread and warp-cooperative mappings.
pub const WARP_DEGREE_THRESHOLD: u32 = 32;

pub struct GunrockLike {
    pub threads_per_block: u32,
}

impl Default for GunrockLike {
    fn default() -> Self {
        GunrockLike {
            threads_per_block: 256,
        }
    }
}

/// Load-balancing partition pass: gather frontier degrees into the scan
/// array (Gunrock sizes its advance grid from this scan).
struct LbPartitionKernel {
    frontier: DSlice,
    len: u32,
    row_offsets: DSlice,
    scan_temp: DSlice,
}

impl Kernel for LbPartitionKernel {
    fn name(&self) -> &'static str {
        "gunrock_lb_partition"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.len);
        if mask == 0 {
            return;
        }
        let v = w.load(self.frontier, &tids, mask);
        let lo = w.load(self.row_offsets, &v, mask);
        let mut v1 = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            v1[lane] = v[lane].wrapping_add(1);
        }
        let hi = w.load(self.row_offsets, &v1, mask);
        let mut deg = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            deg[lane] = hi[lane].wrapping_sub(lo[lane]);
        }
        w.alu(2); // degree + scan step
        w.store(self.scan_temp, &tids, &deg, mask);
    }
}

struct AdvanceKernel {
    alg: Algorithm,
    frontier: DSlice,
    len: u32,
    row_offsets: DSlice,
    col_idx: DSlice,
    weights: Option<DSlice>,
    labels: DSlice,
    tags: DSlice,
    raw_out: DeviceQueue,
    iter: u32,
}

impl AdvanceKernel {
    /// Relax `dst` lanes and append newly improved vertices to the raw
    /// (pre-filter) queue.
    fn relax(
        &self,
        w: &mut WarpCtx<'_>,
        dst: &[u32; WARP_SIZE],
        wt: &[u32; WARP_SIZE],
        my: &[u32; WARP_SIZE],
        row: u32,
    ) {
        let mut new = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (row >> lane) & 1 == 1 {
                new[lane] = match self.alg {
                    Algorithm::Bfs => my[lane].saturating_add(1),
                    Algorithm::Sssp => my[lane].saturating_add(wt[lane]),
                    Algorithm::Sswp => my[lane].min(wt[lane]),
                    Algorithm::Cc => unreachable!("rejected at entry"),
                };
            }
        }
        w.alu(1);
        let old = if self.alg == Algorithm::Sswp {
            w.atomic_max(self.labels, dst, &new, row)
        } else {
            w.atomic_min(self.labels, dst, &new, row)
        };
        let mut improved = 0u32;
        for lane in 0..WARP_SIZE {
            if (row >> lane) & 1 == 1 {
                let better = if self.alg == Algorithm::Sswp {
                    new[lane] > old[lane]
                } else {
                    new[lane] < old[lane]
                };
                if better {
                    improved |= 1 << lane;
                }
            }
        }
        if improved == 0 {
            return;
        }
        let push = match self.alg {
            // BFS advance is idempotent: exactly the first improver sees INF.
            Algorithm::Bfs => {
                let mut p = 0u32;
                for lane in 0..WARP_SIZE {
                    if (improved >> lane) & 1 == 1 && old[lane] == u32::MAX {
                        p |= 1 << lane;
                    }
                }
                p
            }
            // Non-idempotent ops deduplicate with the iteration-tag trick.
            _ => {
                let iters = [self.iter; WARP_SIZE];
                let old_tag = w.atomic_max(self.tags, dst, &iters, improved);
                let mut p = 0u32;
                for lane in 0..WARP_SIZE {
                    if (improved >> lane) & 1 == 1 && old_tag[lane] < self.iter {
                        p |= 1 << lane;
                    }
                }
                p
            }
        };
        if push == 0 {
            return;
        }
        let pos = w.atomic_add(self.raw_out.count, &[0; WARP_SIZE], &[1; WARP_SIZE], push);
        w.store(self.raw_out.items, &pos, dst, push);
    }
}

impl Kernel for AdvanceKernel {
    fn name(&self) -> &'static str {
        "gunrock_advance"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.len);
        if mask == 0 {
            return;
        }
        let v = w.load(self.frontier, &tids, mask);
        let lo = w.load(self.row_offsets, &v, mask);
        let mut v1 = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            v1[lane] = v[lane].wrapping_add(1);
        }
        let hi = w.load(self.row_offsets, &v1, mask);
        let my = w.load(self.labels, &v, mask);
        w.alu(1);

        let mut deg = [0u32; WARP_SIZE];
        let mut small = 0u32;
        let mut big = 0u32;
        let mut max_small = 0u32;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                deg[lane] = hi[lane] - lo[lane];
                if deg[lane] == 0 {
                    continue;
                }
                if deg[lane] < WARP_DEGREE_THRESHOLD {
                    small |= 1 << lane;
                    max_small = max_small.max(deg[lane]);
                } else {
                    big |= 1 << lane;
                }
            }
        }

        // Per-thread mapping: each lane walks its own (short) edge list —
        // divergent scattered loads, the pattern UDC exists to avoid.
        for j in 0..max_small {
            let mut row = 0u32;
            let mut idx = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (small >> lane) & 1 == 1 && j < deg[lane] {
                    row |= 1 << lane;
                    idx[lane] = lo[lane] + j;
                }
            }
            if row == 0 {
                continue;
            }
            let dst = w.load(self.col_idx, &idx, row);
            let wt = match self.weights {
                Some(ws) => w.load(ws, &idx, row),
                None => [1; WARP_SIZE],
            };
            self.relax(w, &dst, &wt, &my, row);
        }

        // Warp-cooperative mapping: the whole warp strides one high-degree
        // vertex's edges with coalesced loads, one vertex at a time.
        for owner in 0..WARP_SIZE {
            if (big >> owner) & 1 != 1 {
                continue;
            }
            w.alu(1); // broadcast of (start, deg) via shuffle
            let start = lo[owner];
            let d = deg[owner];
            let my_b = [my[owner]; WARP_SIZE];
            let steps = d.div_ceil(32);
            for s in 0..steps {
                let base = start + s * 32;
                let remaining = d - s * 32;
                let lanes = remaining.min(32);
                let row = if lanes == 32 {
                    u32::MAX
                } else {
                    (1u32 << lanes) - 1
                };
                let mut idx = [0u32; WARP_SIZE];
                for lane in 0..lanes as usize {
                    idx[lane] = base + lane as u32;
                }
                let dst = w.load(self.col_idx, &idx, row);
                let wt = match self.weights {
                    Some(ws) => w.load(ws, &idx, row),
                    None => [1; WARP_SIZE],
                };
                self.relax(w, &dst, &wt, &my_b, row);
            }
        }
    }
}

/// Filter: validate raw candidates and compact them into the next frontier.
struct FilterKernel {
    raw: DSlice,
    len: u32,
    labels: DSlice,
    next: DeviceQueue,
    /// When false this is a validation-only pass (SSSP's extra bucketing).
    compact: bool,
}

impl Kernel for FilterKernel {
    fn name(&self) -> &'static str {
        "gunrock_filter"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.len);
        if mask == 0 {
            return;
        }
        let v = w.load(self.raw, &tids, mask);
        let _lbl = w.load(self.labels, &v, mask); // validity check
        w.alu(1);
        if self.compact {
            let pos = w.atomic_add(self.next.count, &[0; WARP_SIZE], &[1; WARP_SIZE], mask);
            w.store(self.next.items, &pos, &v, mask);
        }
    }
}

impl Framework for GunrockLike {
    fn name(&self) -> &'static str {
        "Gunrock"
    }

    fn run(
        &self,
        dev: &mut Device,
        csr: &Csr,
        source: u32,
        alg: Algorithm,
    ) -> Result<RunResult, FrameworkError> {
        if alg == Algorithm::Cc {
            return Err(FrameworkError::Unsupported(
                "connected components is an EtaGraph-only extension",
            ));
        }
        if alg.needs_weights() && !csr.is_weighted() {
            return Err(FrameworkError::Unsupported("weights required"));
        }
        let tpb = self.threads_per_block;
        let n = csr.n() as u32;
        let m = csr.m() as u64;

        // Explicit allocations: CSR + Gunrock's work buffers.
        let row_offsets = dev.mem.alloc_explicit(csr.row_offsets.len() as u64)?;
        let col_idx = dev.mem.alloc_explicit(m.max(1))?;
        let weights = if alg.needs_weights() {
            Some(dev.mem.alloc_explicit(m.max(1))?)
        } else {
            None
        };
        let labels = dev.mem.alloc_explicit(n as u64)?;
        let tags = dev.mem.alloc_explicit(n as u64)?;
        let frontier_a = DeviceQueue::alloc(&mut *dev, n)?;
        let frontier_b = DeviceQueue::alloc(&mut *dev, n)?;
        let raw = DeviceQueue::alloc(&mut *dev, n)?;
        // Gunrock's load-balancing scan array, sized for the worst-case
        // frontier (|E|/2 words) — allocated upfront like the real system.
        let scan_temp = dev.mem.alloc_explicit((m / 2).max(n as u64).max(1))?;

        // Upfront transfers.
        let mut now = dev.mem.copy_h2d(row_offsets, 0, &csr.row_offsets, 0);
        if m > 0 {
            now = dev.mem.copy_h2d(col_idx, 0, &csr.col_idx, now);
        }
        if let (Some(ws), Some(wdata)) = (weights, &csr.weights) {
            now = dev.mem.copy_h2d(ws, 0, wdata, now);
        }
        let mut init = vec![alg.init_label(); n as usize];
        init[source as usize] = alg.source_label();
        now = dev.mem.copy_h2d(labels, 0, &init, now);
        now = dev.mem.copy_h2d(tags, 0, &vec![0u32; n as usize], now);
        frontier_a.host_seed(&mut *dev, &[source]);
        now = dev.mem.copy_h2d(frontier_a.count, 0, &[1], now);

        let mut queues = (frontier_a, frontier_b);
        let mut act_len = 1u32;
        let mut iter = 0u32;
        let mut metrics = KernelMetrics::default();
        let mut kernel_ns = 0u64;
        let mut per_iteration = Vec::new();
        let init_label = alg.init_label();

        while act_len > 0 {
            iter += 1;
            let start_ns = now;
            let (front, next) = (&queues.0, &queues.1);
            now = raw.reset(&mut *dev, now);
            now = next.reset(&mut *dev, now);

            // 1. load-balancing partition
            let lb = LbPartitionKernel {
                frontier: front.items,
                len: act_len,
                row_offsets,
                scan_temp: scan_temp.slice(0, (act_len as u64).min(scan_temp.len)),
            };
            let r = dev.launch(&lb, LaunchConfig::for_items(act_len, tpb), now);
            now = r.end_ns;
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;

            // 2. advance
            let adv = AdvanceKernel {
                alg,
                frontier: front.items,
                len: act_len,
                row_offsets,
                col_idx,
                weights,
                labels,
                tags,
                raw_out: raw,
                iter,
            };
            let r = dev.launch(&adv, LaunchConfig::for_items(act_len, tpb), now);
            now = r.end_ns;
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;

            let (raw_len, t) = raw.read_count(&mut *dev, now);
            now = t;

            // 3. filter (+ SSSP/SSWP's extra bucketing pass)
            if raw_len > 0 {
                if alg != Algorithm::Bfs {
                    let bucket = FilterKernel {
                        raw: raw.items,
                        len: raw_len,
                        labels,
                        next: *next,
                        compact: false,
                    };
                    let r = dev.launch(&bucket, LaunchConfig::for_items(raw_len, tpb), now);
                    now = r.end_ns;
                    metrics.merge(&r.metrics);
                    kernel_ns += r.metrics.time_ns;
                }
                let filter = FilterKernel {
                    raw: raw.items,
                    len: raw_len,
                    labels,
                    next: *next,
                    compact: true,
                };
                let r = dev.launch(&filter, LaunchConfig::for_items(raw_len, tpb), now);
                now = r.end_ns;
                metrics.merge(&r.metrics);
                kernel_ns += r.metrics.time_ns;
            }

            let visited_total = dev
                .mem
                .host_read(labels, 0, n as u64)
                .iter()
                .filter(|&&l| l != init_label)
                .count() as u64;
            per_iteration.push(IterationStats {
                iteration: iter,
                active: act_len,
                shadow_full: 0,
                shadow_partial: raw_len,
                pulled: false,
                visited_total,
                start_ns,
                end_ns: now,
            });

            queues = (queues.1, queues.0);
            let (len, t) = queues.0.read_count(&mut *dev, now);
            act_len = len;
            now = t;
        }

        now = dev.mem.copy_d2h(labels, n as u64, now);
        let labels_host = dev.mem.host_read(labels, 0, n as u64).to_vec();
        let timeline = dev.merged_timeline();
        Ok(RunResult {
            algorithm: alg,
            labels: labels_host,
            iterations: iter,
            kernel_ns,
            total_ns: now,
            per_iteration,
            metrics,
            um_stats: dev.mem.um.stats.clone(),
            overlap_fraction: timeline.overlap_fraction(),
            timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;
    use eta_sim::GpuConfig;

    fn graph() -> Csr {
        rmat(&RmatConfig::paper(11, 25_000, 33)).with_random_weights(6, 32)
    }

    #[test]
    fn gunrock_bfs_matches_reference() {
        let g = graph();
        let r = GunrockLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        assert_eq!(r.labels, reference::bfs(&g, 0));
    }

    #[test]
    fn gunrock_sssp_matches_reference() {
        let g = graph();
        let r = GunrockLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Sssp,
            )
            .unwrap();
        assert_eq!(r.labels, reference::sssp(&g, 0));
    }

    #[test]
    fn gunrock_sswp_matches_reference() {
        let g = graph();
        let r = GunrockLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                2,
                Algorithm::Sswp,
            )
            .unwrap();
        assert_eq!(r.labels, reference::sswp(&g, 2));
    }

    #[test]
    fn gunrock_allocates_the_big_scan_buffer() {
        // The |E|/2-word scan array is the footprint driver: a device that
        // fits the CSR but not the buffer must OOM.
        let g = graph();
        // Unweighted CSR bytes (BFS does not allocate weights) plus slack
        // that covers labels/queues but not the |E|/2-word scan buffer.
        let csr_bytes = (g.m() as u64 + g.n() as u64 + 1) * 4;
        let gpu = GpuConfig::gtx1080ti_scaled(csr_bytes + g.n() as u64 * 6 * 4);
        match GunrockLike::default().run(&mut Device::new(gpu), &g, 0, Algorithm::Bfs) {
            Err(FrameworkError::Oom(_)) => {}
            other => panic!("expected OOM, got {:?}", other.map(|r| r.iterations)),
        }
    }

    #[test]
    fn gunrock_sssp_runs_more_kernel_passes_than_bfs() {
        let g = graph();
        let bfs = GunrockLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        let sssp = GunrockLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Sssp,
            )
            .unwrap();
        assert!(sssp.kernel_ns > bfs.kernel_ns);
    }
}
