//! `eta-baselines` — the three GPU graph frameworks the paper compares
//! against, re-implemented as execution models on the shared simulator:
//!
//! * [`cusha`] — CuSha (Khorasani et al., HPDC'14): G-Shards edge-centric
//!   processing with shared-memory destination windows; perfectly coalesced
//!   but frontier-less (touches all edges every iteration) and
//!   space-hungry.
//! * [`gunrock`] — Gunrock (Wang et al., PPoPP'16): frontier advance +
//!   filter with thread/warp load-balanced mapping and generously sized
//!   work buffers.
//! * [`tigr`] — Tigr (Sabet et al., ASPLOS'18): materialized Virtual Split
//!   Transformation traversed with a frontier, full upfront copy.
//! * [`chunkstream`] — a GTS-like fixed-chunk topology streamer, the
//!   transfer/compute-overlap design §I criticizes for wasted work.
//!
//! Each framework allocates its *real* data structures through the device
//! allocator, so the out-of-memory entries of Table III fall out of actual
//! allocation failures rather than hand-written special cases. All four
//! frameworks (including EtaGraph, wrapped in [`EtaFramework`]) produce a
//! [`etagraph::RunResult`] validated against the CPU references in the
//! test suite.

// Kernels address per-lane register arrays by explicit lane index under an
// active mask — the SIMT idiom this simulator exists to model. Iterator
// rewrites of those loops obscure the lane structure.
#![allow(clippy::needless_range_loop)]
pub mod chunkstream;
pub mod cusha;
pub mod framework;
pub mod gunrock;
pub mod tigr;

pub use chunkstream::ChunkStream;
pub use cusha::CushaLike;
pub use framework::{run_fresh, EtaFramework, Framework, FrameworkError};
pub use gunrock::GunrockLike;
pub use tigr::TigrLike;
