//! Tigr-like framework: materialized Virtual Split Transformation.
//!
//! Tigr preprocesses the graph on the host, splitting every vertex of
//! out-degree > k into virtual vertices and materializing the transformed
//! index arrays (the `|E| + 2|N| + 2|V|` footprint of Table I). At runtime
//! it is a frontier-based vertex-centric engine over *virtual* vertices:
//! like EtaGraph's kernel but
//!
//! * the virtual active set comes from **precomputed** VST arrays rather
//!   than on-the-fly Unified Degree Cut;
//! * all data is explicitly allocated and copied upfront (`cudaMalloc` +
//!   `cudaMemcpy`) — the full 1.32×-CSR structure crosses PCIe before the
//!   first kernel, and big graphs go O.O.M;
//! * no Shared Memory Prefetch: neighbors are loaded one warp instruction
//!   per edge step.
//!
//! The paper's Table III shows exactly this profile: excellent kernel times
//! (the VST fixes load imbalance just as UDC does) but totals dominated by
//! the upfront transfer, and O.O.M from sk-2005 SSSP onward.

use crate::framework::{Framework, FrameworkError};
use eta_graph::{Csr, Vst};
use eta_mem::system::DSlice;
use eta_sim::{Device, Kernel, KernelMetrics, LaunchConfig, WarpCtx, WARP_SIZE};
use etagraph::active_set::DeviceQueue;
use etagraph::result::{IterationStats, RunResult};
use etagraph::Algorithm;

/// Degree bound Tigr uses for its virtual split (the Tigr paper's default).
pub const TIGR_K: u32 = 16;

pub struct TigrLike {
    pub k: u32,
    pub threads_per_block: u32,
}

impl Default for TigrLike {
    fn default() -> Self {
        TigrLike {
            k: TIGR_K,
            threads_per_block: 256,
        }
    }
}

/// Expand kernel: push every virtual vertex of each active real vertex.
struct ExpandKernel {
    act_items: DSlice,
    act_len: u32,
    real_virt_start: DSlice,
    virt_frontier: DeviceQueue,
}

impl Kernel for ExpandKernel {
    fn name(&self) -> &'static str {
        "tigr_expand"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.act_len);
        if mask == 0 {
            return;
        }
        let v = w.load(self.act_items, &tids, mask);
        let lo = w.load(self.real_virt_start, &v, mask);
        let mut v1 = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            v1[lane] = v[lane].wrapping_add(1);
        }
        let hi = w.load(self.real_virt_start, &v1, mask);
        w.alu(1);
        let mut count = [0u32; WARP_SIZE];
        let mut any = 0u32;
        let mut max_c = 0;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                count[lane] = hi[lane] - lo[lane];
                if count[lane] > 0 {
                    any |= 1 << lane;
                    max_c = max_c.max(count[lane]);
                }
            }
        }
        if any == 0 {
            return;
        }
        let base = w.atomic_add(self.virt_frontier.count, &[0; WARP_SIZE], &count, any);
        for p in 0..max_c {
            let mut row = 0u32;
            let mut pos = [0u32; WARP_SIZE];
            let mut val = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (any >> lane) & 1 == 1 && p < count[lane] {
                    row |= 1 << lane;
                    pos[lane] = base[lane] + p;
                    val[lane] = lo[lane] + p;
                }
            }
            w.alu(1);
            w.store(self.virt_frontier.items, &pos, &val, row);
        }
    }
}

/// Traversal over virtual vertices (no SMP).
struct TigrTraverse {
    alg: Algorithm,
    virt_frontier: DSlice,
    len: u32,
    virt_offsets: DSlice,
    virt_real: DSlice,
    col_idx: DSlice,
    weights: Option<DSlice>,
    labels: DSlice,
    tags: DSlice,
    next: DeviceQueue,
    iter: u32,
}

impl Kernel for TigrTraverse {
    fn name(&self) -> &'static str {
        "tigr_traverse"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.len);
        if mask == 0 {
            return;
        }
        let u = w.load(self.virt_frontier, &tids, mask);
        let start = w.load(self.virt_offsets, &u, mask);
        let mut u1 = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            u1[lane] = u[lane].wrapping_add(1);
        }
        let end = w.load(self.virt_offsets, &u1, mask);
        let real = w.load(self.virt_real, &u, mask);
        let my = w.load(self.labels, &real, mask);
        w.alu(1);

        let mut deg = [0u32; WARP_SIZE];
        let mut max_deg = 0;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                deg[lane] = end[lane] - start[lane];
                max_deg = max_deg.max(deg[lane]);
            }
        }
        for j in 0..max_deg {
            let mut row = 0u32;
            let mut idx = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (mask >> lane) & 1 == 1 && j < deg[lane] {
                    row |= 1 << lane;
                    idx[lane] = start[lane] + j;
                }
            }
            if row == 0 {
                continue;
            }
            let dst = w.load(self.col_idx, &idx, row);
            let wt = match self.weights {
                Some(ws) => w.load(ws, &idx, row),
                None => [1; WARP_SIZE],
            };
            let mut new = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (row >> lane) & 1 == 1 {
                    new[lane] = match self.alg {
                        Algorithm::Bfs => my[lane].saturating_add(1),
                        Algorithm::Sssp => my[lane].saturating_add(wt[lane]),
                        Algorithm::Sswp => my[lane].min(wt[lane]),
                        Algorithm::Cc => unreachable!("rejected at entry"),
                    };
                }
            }
            w.alu(1);
            let old = if self.alg == Algorithm::Sswp {
                w.atomic_max(self.labels, &dst, &new, row)
            } else {
                w.atomic_min(self.labels, &dst, &new, row)
            };
            let mut improved = 0u32;
            for lane in 0..WARP_SIZE {
                if (row >> lane) & 1 == 1 {
                    let better = if self.alg == Algorithm::Sswp {
                        new[lane] > old[lane]
                    } else {
                        new[lane] < old[lane]
                    };
                    if better {
                        improved |= 1 << lane;
                    }
                }
            }
            if improved == 0 {
                continue;
            }
            let iters = [self.iter; WARP_SIZE];
            let old_tag = w.atomic_max(self.tags, &dst, &iters, improved);
            let mut push = 0u32;
            for lane in 0..WARP_SIZE {
                if (improved >> lane) & 1 == 1 && old_tag[lane] < self.iter {
                    push |= 1 << lane;
                }
            }
            if push == 0 {
                continue;
            }
            let pos = w.atomic_add(self.next.count, &[0; WARP_SIZE], &[1; WARP_SIZE], push);
            w.store(self.next.items, &pos, &dst, push);
        }
    }
}

impl Framework for TigrLike {
    fn name(&self) -> &'static str {
        "Tigr"
    }

    fn run(
        &self,
        dev: &mut Device,
        csr: &Csr,
        source: u32,
        alg: Algorithm,
    ) -> Result<RunResult, FrameworkError> {
        if alg == Algorithm::Cc {
            return Err(FrameworkError::Unsupported(
                "connected components is an EtaGraph-only extension",
            ));
        }
        let tpb = self.threads_per_block;
        let n = csr.n() as u32;

        // Host-side preprocessing (not charged, per the paper's methodology).
        let vst = Vst::from_csr(csr, self.k);
        let n_virt = vst.n_virtual() as u32;

        // Explicit device structures: the Table I VST footprint.
        let virt_offsets = dev.mem.alloc_explicit(vst.virt_offsets.len() as u64)?;
        let virt_real = dev.mem.alloc_explicit(vst.virt_real.len().max(1) as u64)?;
        let real_virt_start = dev.mem.alloc_explicit(vst.real_virt_start.len() as u64)?;
        let col_idx = dev.mem.alloc_explicit(vst.col_idx.len().max(1) as u64)?;
        // Tigr keeps per-real bookkeeping for its updates (Table I's 2|V|).
        let _bookkeeping = dev.mem.alloc_explicit(n.max(1) as u64)?;
        let weights = match (&vst.weights, alg.needs_weights()) {
            (Some(_), true) => Some(dev.mem.alloc_explicit(vst.col_idx.len().max(1) as u64)?),
            (None, true) => {
                return Err(FrameworkError::Unsupported("weights required"));
            }
            _ => None,
        };
        let labels = dev.mem.alloc_explicit(n as u64)?;
        let tags = dev.mem.alloc_explicit(n as u64)?;
        let act = DeviceQueue::alloc(&mut *dev, n)?;
        let next = DeviceQueue::alloc(&mut *dev, n)?;
        let virt_frontier = DeviceQueue::alloc(&mut *dev, n_virt.max(1))?;

        // Upfront copies (charged).
        let mut now = dev.mem.copy_h2d(virt_offsets, 0, &vst.virt_offsets, 0);
        if !vst.virt_real.is_empty() {
            now = dev.mem.copy_h2d(virt_real, 0, &vst.virt_real, now);
        }
        now = dev
            .mem
            .copy_h2d(real_virt_start, 0, &vst.real_virt_start, now);
        if !vst.col_idx.is_empty() {
            now = dev.mem.copy_h2d(col_idx, 0, &vst.col_idx, now);
        }
        if let (Some(ws), Some(wdata)) = (weights, &vst.weights) {
            now = dev.mem.copy_h2d(ws, 0, wdata, now);
        }
        let mut init = vec![alg.init_label(); n as usize];
        init[source as usize] = alg.source_label();
        now = dev.mem.copy_h2d(labels, 0, &init, now);
        now = dev.mem.copy_h2d(tags, 0, &vec![0u32; n as usize], now);
        act.host_seed(&mut *dev, &[source]);
        now = dev.mem.copy_h2d(act.count, 0, &[1], now);

        // Frontier loop.
        let mut queues = (act, next);
        let mut act_len = 1u32;
        let mut iter = 0u32;
        let mut metrics = KernelMetrics::default();
        let mut kernel_ns = 0u64;
        let mut per_iteration = Vec::new();
        let init_label = alg.init_label();

        while act_len > 0 {
            iter += 1;
            let start_ns = now;
            let (act, next) = (&queues.0, &queues.1);
            now = virt_frontier.reset(&mut *dev, now);
            now = next.reset(&mut *dev, now);

            let expand = ExpandKernel {
                act_items: act.items,
                act_len,
                real_virt_start,
                virt_frontier,
            };
            let r = dev.launch(&expand, LaunchConfig::for_items(act_len, tpb), now);
            now = r.end_ns;
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;

            let (nv, t) = virt_frontier.read_count(&mut *dev, now);
            now = t;
            if nv > 0 {
                let traverse = TigrTraverse {
                    alg,
                    virt_frontier: virt_frontier.items,
                    len: nv,
                    virt_offsets,
                    virt_real,
                    col_idx,
                    weights,
                    labels,
                    tags,
                    next: *next,
                    iter,
                };
                let r = dev.launch(&traverse, LaunchConfig::for_items(nv, tpb), now);
                now = r.end_ns;
                metrics.merge(&r.metrics);
                kernel_ns += r.metrics.time_ns;
            }

            let visited_total = dev
                .mem
                .host_read(labels, 0, n as u64)
                .iter()
                .filter(|&&l| l != init_label)
                .count() as u64;
            per_iteration.push(IterationStats {
                iteration: iter,
                active: act_len,
                shadow_full: 0,
                shadow_partial: nv,
                pulled: false,
                visited_total,
                start_ns,
                end_ns: now,
            });

            queues = (queues.1, queues.0);
            let (len, t) = queues.0.read_count(&mut *dev, now);
            act_len = len;
            now = t;
        }

        now = dev.mem.copy_d2h(labels, n as u64, now);
        let labels_host = dev.mem.host_read(labels, 0, n as u64).to_vec();
        let timeline = dev.merged_timeline();
        Ok(RunResult {
            algorithm: alg,
            labels: labels_host,
            iterations: iter,
            kernel_ns,
            total_ns: now,
            per_iteration,
            metrics,
            um_stats: dev.mem.um.stats.clone(),
            overlap_fraction: timeline.overlap_fraction(),
            timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;
    use eta_sim::GpuConfig;

    fn graph() -> Csr {
        rmat(&RmatConfig::paper(11, 25_000, 77)).with_random_weights(4, 32)
    }

    #[test]
    fn tigr_bfs_matches_reference() {
        let g = graph();
        let r = TigrLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        assert_eq!(r.labels, reference::bfs(&g, 0));
    }

    #[test]
    fn tigr_sssp_and_sswp_match_reference() {
        let g = graph();
        let sssp = TigrLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                1,
                Algorithm::Sssp,
            )
            .unwrap();
        assert_eq!(sssp.labels, reference::sssp(&g, 1));
        let sswp = TigrLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                1,
                Algorithm::Sswp,
            )
            .unwrap();
        assert_eq!(sswp.labels, reference::sswp(&g, 1));
    }

    #[test]
    fn tigr_total_includes_upfront_transfer() {
        let g = graph();
        let r = TigrLike::default()
            .run(
                &mut Device::new(GpuConfig::default_preset()),
                &g,
                0,
                Algorithm::Bfs,
            )
            .unwrap();
        // The whole VST structure crosses the link before kernels start.
        let vst = Vst::from_csr(&g, TIGR_K);
        assert!(r.total_ns > r.kernel_ns);
        let wire = (vst.topology_bytes() as f64 / 12.0) as u64;
        assert!(
            r.total_ns > wire,
            "total {} must cover the upfront copy {}",
            r.total_ns,
            wire
        );
    }

    #[test]
    fn tigr_ooms_when_footprint_exceeds_device() {
        let g = graph();
        let tiny = GpuConfig::gtx1080ti_scaled(64 * 1024);
        match TigrLike::default().run(&mut Device::new(tiny), &g, 0, Algorithm::Bfs) {
            Err(FrameworkError::Oom(_)) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn tigr_weighted_algorithms_need_weights() {
        let g = rmat(&RmatConfig::paper(9, 4_000, 1)); // unweighted
        let r = TigrLike::default().run(
            &mut Device::new(GpuConfig::default_preset()),
            &g,
            0,
            Algorithm::Sssp,
        );
        assert!(matches!(r, Err(FrameworkError::Unsupported(_))));
    }
}
