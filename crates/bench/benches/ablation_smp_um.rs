//! Criterion counterpart of Fig. 6: the EtaGraph ablation variants (SMP,
//! UM, UM-prefetch) on the Slashdot analog.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta_bench::suite::dataset;
use eta_sim::GpuConfig;
use etagraph::{Algorithm, EtaConfig};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let d = dataset("slashdot");
    let variants: [(&str, EtaConfig); 4] = [
        ("etagraph", EtaConfig::paper()),
        ("without_smp", EtaConfig::without_smp()),
        ("without_um", EtaConfig::without_um()),
        ("without_ump", EtaConfig::without_ump()),
    ];
    let mut group = c.benchmark_group("fig6_slashdot");
    group.sample_size(10);
    for (name, cfg) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
                let r = etagraph::engine::run(
                    &mut dev,
                    black_box(&d.csr),
                    d.source,
                    Algorithm::Bfs,
                    cfg,
                )
                .expect("slashdot fits");
                black_box(r.total_ns)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
