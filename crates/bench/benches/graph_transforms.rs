//! Criterion counterpart of Table I: the cost of building each topology
//! representation. This quantifies the paper's "lightweight transformation"
//! claim — EtaGraph's UDC needs no host-side materialization at all, while
//! Tigr's VST and CuSha's G-Shards rewrite the whole graph.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eta_bench::suite::dataset;
use eta_graph::{EdgeList, GShards, Vst};
use std::hint::black_box;

fn bench_transforms(c: &mut Criterion) {
    let d = dataset("slashdot");
    let g = &d.csr;
    let mut group = c.benchmark_group("table1_transform_cost");
    group.throughput(Throughput::Elements(g.m() as u64));

    group.bench_function("vst_materialize_k16", |b| {
        b.iter(|| black_box(Vst::from_csr(g, 16)))
    });
    group.bench_function("gshards_materialize", |b| {
        b.iter(|| black_box(GShards::from_csr(g, GShards::DEFAULT_WINDOW)))
    });
    group.bench_function("edgelist_materialize", |b| {
        b.iter(|| black_box(EdgeList::from_csr(g)))
    });
    group.bench_function("udc_shadow_count_k16", |b| {
        // The *entire* host-side cost of EtaGraph's transformation: none —
        // shadow tuples are generated on the GPU each iteration. Counting
        // |N| is the only host-side arithmetic it ever needs.
        b.iter(|| black_box(etagraph::udc::shadow_count_graph(g, 16)))
    });
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
