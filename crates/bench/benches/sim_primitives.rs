//! Microbenchmarks of the simulator substrate itself: coalescer, cache and
//! warp access throughput. These bound how fast the reproduction can run
//! and guard against performance regressions in the hot paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eta_mem::cache::{Cache, CacheConfig};
use eta_mem::coalesce::sectors_for_warp;
use eta_mem::pcie::PcieLink;
use eta_mem::system::MemSystem;
use eta_sim::{GpuConfig, Kernel, LaunchConfig, WarpCtx};
use std::hint::black_box;

struct StreamKernel {
    data: eta_mem::DSlice,
    n: u32,
}

impl Kernel for StreamKernel {
    fn run(&self, w: &mut WarpCtx<'_>) {
        let ids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        if mask != 0 {
            black_box(w.load(self.data, &ids, mask));
        }
    }
}

fn bench_primitives(c: &mut Criterion) {
    // Coalescer.
    let scattered: Vec<u64> = (0..32).map(|i| i * 4096).collect();
    let mut scratch = Vec::new();
    let mut group = c.benchmark_group("sim_primitives");
    group.throughput(Throughput::Elements(32));
    group.bench_function("coalesce_scattered_warp", |b| {
        b.iter(|| {
            sectors_for_warp(black_box(&scattered), u32::MAX, &mut scratch);
            black_box(scratch.len())
        })
    });

    // Cache probe stream.
    group.bench_function("cache_probe", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 48 * 1024,
            line_bytes: 32,
            ways: 8,
            retention: 768,
        });
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 97) % 10_000;
            cache.tick(3);
            black_box(cache.access(i))
        })
    });

    // Full warp load through the hierarchy.
    group.throughput(Throughput::Elements(1 << 16));
    group.bench_function("device_stream_64k_loads", |b| {
        let cfg = GpuConfig::default_preset();
        let n = 1u32 << 16;
        b.iter(|| {
            let mut dev = eta_sim::Device::new(cfg);
            let data = dev.mem.alloc_explicit(n as u64).unwrap();
            let k = StreamKernel { data, n };
            let r = dev.launch(&k, LaunchConfig::for_items(n, 256), 0);
            black_box(r.metrics.cycles)
        })
    });

    // MemSystem residency path.
    group.throughput(Throughput::Elements(1));
    group.bench_function("um_resident_touch", |b| {
        let mut m = MemSystem::new(1 << 30, PcieLink::new(12.0, 1000));
        let a = m.alloc_unified(1 << 20);
        m.prefetch(a, 0);
        let sector = a.word_off / 8 + 100;
        b.iter(|| black_box(m.ensure_resident(a.region, &[sector], 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
