//! Criterion counterpart of Table III: all frameworks × algorithms on the
//! Slashdot analog (the only dataset small enough for statistical
//! repetition). Wall time here measures the simulator; the *simulated*
//! milliseconds of the full Table III come from
//! `cargo run -p eta-bench --bin report -- table3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta_baselines::run_fresh;
use eta_bench::suite::{dataset, frameworks, graph_for};
use eta_sim::GpuConfig;
use etagraph::Algorithm;
use std::hint::black_box;

fn bench_frameworks(c: &mut Criterion) {
    let d = dataset("slashdot");
    let mut group = c.benchmark_group("table3_slashdot");
    group.sample_size(10);
    for alg in Algorithm::ALL {
        let g = graph_for("slashdot", alg);
        for fw in frameworks() {
            group.bench_with_input(BenchmarkId::new(alg.name(), fw.name()), &alg, |b, &alg| {
                b.iter(|| {
                    let r = run_fresh(
                        fw.as_ref(),
                        GpuConfig::default_preset(),
                        black_box(&g),
                        d.source,
                        alg,
                    )
                    .expect("slashdot fits every framework");
                    black_box(r.total_ns)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_frameworks);
criterion_main!(benches);
