//! Ablation the paper leaves implicit: sensitivity of EtaGraph to the
//! degree limit K. Small K fragments vertices into many shadow tuples
//! (transformation overhead, queue traffic); large K restores imbalance and
//! eats shared memory (occupancy). The sweep reports the simulated total
//! time per K once, then benchmarks the default.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta_bench::suite::dataset;
use eta_sim::GpuConfig;
use etagraph::{Algorithm, EtaConfig};
use std::hint::black_box;

fn run_with_k(k: u32) -> u64 {
    let d = dataset("slashdot");
    let cfg = EtaConfig {
        k,
        ..EtaConfig::paper()
    };
    let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
    etagraph::engine::run(&mut dev, &d.csr, d.source, Algorithm::Bfs, &cfg)
        .expect("slashdot fits")
        .total_ns
}

fn bench_k_sweep(c: &mut Criterion) {
    println!("\nsimulated BFS total vs degree limit K (slashdot):");
    for k in [2u32, 4, 8, 16, 32, 64] {
        println!("  K={k:<3} -> {:.3} ms", run_with_k(k) as f64 / 1e6);
    }
    let mut group = c.benchmark_group("udc_k");
    group.sample_size(10);
    for k in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(run_with_k(k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k_sweep);
criterion_main!(benches);
