//! Criterion counterpart of Table V / Fig. 4: Unified Memory demand paging
//! versus prefetch streaming, including the fault-batching machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta_mem::pcie::PcieLink;
use eta_mem::um::{UmDriver, UmRegion, PAGE_WORDS};
use std::hint::black_box;

fn bench_um(c: &mut Criterion) {
    let pages = 4096u64; // 16 MiB region
    let mut group = c.benchmark_group("um_migration");

    group.bench_function(BenchmarkId::new("prefetch", pages), |b| {
        b.iter(|| {
            let mut d = UmDriver::new();
            let r = d.add_region(UmRegion::new(0, pages * PAGE_WORDS));
            let mut link = PcieLink::new(12.0, 1000);
            black_box(d.prefetch(r, 0, u64::MAX, &mut link))
        })
    });

    group.bench_function(BenchmarkId::new("demand_sweep", pages), |b| {
        b.iter(|| {
            let mut d = UmDriver::new();
            let r = d.add_region(UmRegion::new(0, pages * PAGE_WORDS));
            let mut link = PcieLink::new(12.0, 1000);
            let mut end = 0;
            let mut p = 0usize;
            while p < pages as usize {
                end = d.touch_pages(r, &[p], end, u64::MAX, &mut link);
                p = d.region(r).resident_pages();
            }
            black_box(end)
        })
    });

    group.bench_function(BenchmarkId::new("demand_scattered", pages), |b| {
        b.iter(|| {
            let mut d = UmDriver::new();
            let r = d.add_region(UmRegion::new(0, pages * PAGE_WORDS));
            let mut link = PcieLink::new(12.0, 1000);
            let mut end = 0;
            // Deterministic stride pattern touching every 64th page.
            for i in 0..64usize {
                end = d.touch_pages(r, &[(i * 67) % pages as usize], end, u64::MAX, &mut link);
            }
            black_box(end)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_um);
criterion_main!(benches);
