//! `bench_serve`: the serving-layer trajectory behind `BENCH_serve.json`.
//!
//! Runs the quick-suite overload drill (the same generator as the
//! `overload` report artifact — calibration, the multiplier × fault-plan
//! sweep, both qos arms, and differential verification) and appends one
//! entry recording:
//!
//! - **host wall-clock** of the full drill (the serving layer's speed
//!   guard, in the same spirit as `bench_sim`);
//! - **goodput and SLO attainment** for the fault-free poisson cells at 1x
//!   and 4x of calibrated capacity, qos on and off — the headline numbers
//!   that must not regress as the scheduler grows.
//!
//! Simulated results are byte-identical run to run; `ci.sh` enforces that
//! separately. The file is a *trajectory*: entries are appended (never
//! edited) so a regression shows up as the newest entry being worse than
//! its predecessors on the same machine.
//!
//! ```text
//! cargo run --release -p eta-bench --bin bench_serve -- [--label NAME] [--out FILE]
//! ```

use eta_bench::hosttime::Stopwatch;
use eta_bench::overload::overload;
use eta_bench::Suite;
use serde_json::{json, Value};

/// Pulls the fault-free poisson cell at `multiplier` (first workload seed)
/// out of the drill artifact's JSON.
fn cell_at(cells: &[Value], multiplier: u64) -> &Value {
    // lint: allow(L-PANIC): the drill always emits these cells; absence is a bench bug
    cells
        .iter()
        .find(|c| {
            c["multiplier"] == multiplier && c["arrival"] == "poisson" && c["fault_seed"].is_null()
        })
        .expect("drill emits fault-free poisson cells at every multiplier")
}

fn arm_digest(cell: &Value, arm: &str) -> Value {
    json!({
        "goodput_qps": cell[arm]["goodput_qps"],
        "slo_attainment": cell[arm]["slo_attainment"],
        "completed": cell[arm]["completed"],
        "rejected": cell[arm]["rejected"],
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let label = flag("--label").unwrap_or_else(|| "unlabeled".into());
    let out = flag("--out").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    let total = Stopwatch::started();

    let artifact = overload(Suite::Quick);
    let drill_seconds = total.elapsed_secs();
    // lint: allow(L-PANIC): the artifact always carries a cells array
    let cells = artifact.json["cells"].as_array().expect("cells array");
    let at_1x = cell_at(cells, 1);
    let at_4x = cell_at(cells, 4);
    eprintln!(
        "overload drill: {drill_seconds:.3}s host, capacity {} qps, qos goodput {} qps at 4x",
        artifact.json["capacity_qps"], at_4x["qos"]["goodput_qps"],
    );

    let entry = json!({
        "schema": "eta-bench-trajectory-v1",
        "bench": "serve",
        "label": label,
        "suite": "quick",
        "host_cores": std::thread::available_parallelism().map_or(0, |n| n.get()),
        "drill_wall_seconds": drill_seconds,
        "capacity_qps": artifact.json["capacity_qps"],
        "slo_ns": artifact.json["slo_ns"],
        "verification": artifact.json["verification"],
        "at_1x": {
            "baseline": arm_digest(at_1x, "baseline"),
            "qos": arm_digest(at_1x, "qos"),
        },
        "at_4x": {
            "baseline": arm_digest(at_4x, "baseline"),
            "qos": arm_digest(at_4x, "qos"),
        },
        "wall_seconds_total": total.elapsed_secs(),
    });
    // lint: allow(L-PANIC): serializing a just-built Value cannot fail
    let rendered = serde_json::to_string_pretty(&entry).expect("render entry");
    let indented: String = rendered
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n");

    // The trajectory is a top-level JSON array, append-only. The vendored
    // serde_json shim is emit-only (no parser), so appending is textual:
    // strip the closing bracket, splice the new entry, close again.
    let doc = match std::fs::read_to_string(&out) {
        Ok(prior) => {
            let trimmed = prior.trim_end();
            let Some(body) = trimmed.strip_suffix(']') else {
                eprintln!("error: {out} is not a JSON array; refusing to append");
                std::process::exit(2);
            };
            let body = body.trim_end().trim_end_matches(',');
            let sep = if body.trim_end().ends_with('[') {
                "\n"
            } else {
                ",\n"
            };
            format!("{body}{sep}{indented}\n]\n")
        }
        Err(_) => format!("[\n{indented}\n]\n"),
    };
    // lint: allow(L-PANIC): writing the trajectory is this binary's whole job
    std::fs::write(&out, doc).expect("write BENCH_serve.json");
    eprintln!("wrote {} ({:.1}s total)", out, total.elapsed_secs());
}
