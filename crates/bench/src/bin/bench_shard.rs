//! `bench_shard`: the host-side perf baseline behind `BENCH_shard.json`.
//!
//! Every committed report artifact is a function of the *simulated* clock;
//! this binary is the counterpart that guards **host wall-clock speed** —
//! the ROADMAP's "committed perf trajectory" item. It times the sharded BSP
//! engine end-to-end on the quick-suite Table V graphs (single-device
//! baseline, then 2- and 4-device groups, BFS plus 4-device PageRank),
//! takes the best of `REPS` repetitions, and rewrites `BENCH_shard.json`
//! at the repository root.
//!
//! The file is a *trajectory*: entries are appended (never edited) so a
//! regression shows up as the newest entry being slower than its
//! predecessors on the same workload. Wall time is inherently
//! machine-dependent — compare entries recorded on the same machine, and
//! read `edges_per_sec_host` (graph edges / host seconds for one full
//! traversal) as the portable-ish throughput figure.
//!
//!     cargo run --release -p eta-bench --bin bench_shard -- [--label NAME]
//!
//! Keep runs in release mode; debug is 10-50x slower through the simulator.

use eta_bench::hosttime::Stopwatch;
use eta_bench::{shard, suite};
use eta_mem::PeerFabric;
use eta_shard::GraphPartition;
use eta_sim::{Device, GpuConfig};
use etagraph::pagerank::{self, PageRankConfig};
use etagraph::sharded::{run_sharded, run_sharded_pagerank};
use etagraph::{engine, Algorithm, EtaConfig, UdcMode};
use serde_json::{json, Value};

/// Repetitions per configuration; the entry records the fastest.
const REPS: usize = 2;

fn cfg() -> EtaConfig {
    EtaConfig {
        udc: UdcMode::InCore,
        direction_optimizing: false,
        ..EtaConfig::paper()
    }
}

/// Times `f` REPS times and returns the best wall seconds.
fn best_of<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let sw = Stopwatch::started();
        f();
        best = best.min(sw.elapsed_secs());
    }
    best
}

fn run_config(name: &'static str, alg_name: &str, devices: u32) -> Value {
    let g = suite::graph_for(name, Algorithm::Bfs);
    let m = g.m() as f64;
    let cfg = cfg();
    let source = suite::dataset(name).source;
    let wall = if alg_name == "pagerank" {
        let pr = PageRankConfig {
            eta: cfg,
            ..PageRankConfig::default()
        };
        if devices == 1 {
            best_of(|| {
                let mut dev = Device::new(GpuConfig::default_preset());
                // lint: allow(L-PANIC): quick-suite graphs fit; an OOM is a bench bug
                pagerank::run(&mut dev, &g, &pr).expect("pagerank");
            })
        } else {
            let part = GraphPartition::vertex_range(&g, devices);
            best_of(|| {
                let mut devs: Vec<Device> = (0..devices)
                    .map(|_| Device::new(GpuConfig::default_preset()))
                    .collect();
                let mut fabric = PeerFabric::nvlink(devices);
                run_sharded_pagerank(&mut devs, &mut fabric, &part, &g, &pr)
                    // lint: allow(L-PANIC): no faults are injected; an error is a bench bug
                    .expect("sharded pagerank");
            })
        }
    } else if devices == 1 {
        best_of(|| {
            let mut dev = Device::new(GpuConfig::default_preset());
            // lint: allow(L-PANIC): quick-suite graphs fit; an OOM is a bench bug
            engine::run(&mut dev, &g, source, Algorithm::Bfs, &cfg).expect("bfs");
        })
    } else {
        let part = GraphPartition::vertex_range(&g, devices);
        best_of(|| {
            let mut devs: Vec<Device> = (0..devices)
                .map(|_| Device::new(GpuConfig::default_preset()))
                .collect();
            let mut fabric = PeerFabric::nvlink(devices);
            run_sharded(&mut devs, &mut fabric, &part, source, Algorithm::Bfs, &cfg)
                // lint: allow(L-PANIC): no faults are injected; an error is a bench bug
                .expect("sharded bfs");
        })
    };
    eprintln!("  {name} {alg_name} x{devices}: {wall:.3}s host");
    json!({
        "dataset": name,
        "algorithm": alg_name,
        "devices": devices,
        "host_seconds": wall,
        "edges_per_sec_host": m / wall,
    })
}

fn main() {
    let label = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--label")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "unlabeled".into())
    };
    let total = Stopwatch::started();
    let mut runs = Vec::new();
    for name in shard::graphs_for(suite::Suite::Quick) {
        for (alg, devices) in [("bfs", 1), ("bfs", 2), ("bfs", 4), ("pagerank", 4)] {
            runs.push(run_config(name, alg, devices));
        }
    }
    let entry = json!({
        "schema": "eta-bench-trajectory-v1",
        "bench": "shard",
        "label": label,
        "suite": "quick",
        "reps": REPS,
        "wall_seconds_total": total.elapsed_secs(),
        "runs": runs,
    });
    // lint: allow(L-PANIC): serializing a just-built Value cannot fail
    let rendered = serde_json::to_string_pretty(&entry).expect("render entry");
    // Indent the entry one level so it nests inside the top-level array.
    let indented: String = rendered
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n");

    // The trajectory is a top-level JSON array, append-only. The vendored
    // serde_json shim is emit-only (no parser), so appending is textual:
    // strip the closing bracket, splice the new entry, close again.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    let doc = match std::fs::read_to_string(path) {
        Ok(prior) => {
            let trimmed = prior.trim_end();
            let Some(body) = trimmed.strip_suffix(']') else {
                eprintln!("error: {path} is not a JSON array; refusing to append");
                std::process::exit(2);
            };
            let body = body.trim_end().trim_end_matches(',');
            let sep = if body.trim_end().ends_with('[') {
                "\n"
            } else {
                ",\n"
            };
            format!("{body}{sep}{indented}\n]\n")
        }
        Err(_) => format!("[\n{indented}\n]\n"),
    };
    // lint: allow(L-PANIC): writing the trajectory is this binary's whole job
    std::fs::write(path, doc).expect("write BENCH_shard.json");
    eprintln!("wrote {} ({:.1}s total)", path, total.elapsed_secs());
}
