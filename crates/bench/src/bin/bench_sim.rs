//! `bench_sim`: the host-side perf baseline behind `BENCH_sim.json`.
//!
//! Every committed report artifact is a function of the *simulated* clock;
//! this binary guards **host wall-clock speed** of the simulator itself and
//! measures what `--host-threads` buys. Three sections per entry:
//!
//! - **sweep** — the quick-suite kernel sweep (each dataset × algorithm
//!   cell is one full traversal through the simulator). Per cell it
//!   records host seconds, simulated kernel nanoseconds, and
//!   simulated-cycles-per-host-second (the portable-ish throughput
//!   figure). The sweep then re-runs under each `--threads` setting with
//!   cells distributed across host threads (cells are independent
//!   devices, so this is the embarrassingly-parallel layer) and records
//!   the wall-clock speedup over one thread.
//! - **within_launch** — the heaviest sweep cell run serially with the
//!   device's own per-SM drain stages at 1 vs N host threads. This
//!   isolates the intra-launch parallelism; Amdahl caps it well below the
//!   sweep-level speedup because record and L2/DRAM replay stay serial to
//!   preserve byte-identical artifacts.
//! - **chaos_drill** — the quick chaos grid (seed × checkpoint-interval
//!   fault-injection serves) timed as cells/second, again at each thread
//!   setting.
//!
//! Simulated results are byte-identical at every thread count — `ci.sh`
//! enforces that separately; this file only tracks host time. The file is
//! a *trajectory*: entries are appended (never edited) so a regression
//! shows up as the newest entry being slower than its predecessors on the
//! same machine.
//!
//! ```text
//! cargo run --release -p eta-bench --bin bench_sim -- [--label NAME] [--threads N] [--out FILE]
//! ```
//!
//! Keep runs in release mode; debug is 10-50x slower through the simulator.

use eta_bench::hosttime::Stopwatch;
use eta_bench::suite;
use eta_fault::{FaultPlan, HangFault};
use eta_graph::generate::{rmat, RmatConfig};
use eta_graph::Csr;
use eta_serve::{
    poisson_trace, Arrival, GraphRegistry, Request, ServeConfig, Service, WorkloadConfig,
};
use eta_sim::{Device, GpuConfig};
use etagraph::{engine, Algorithm, EtaConfig};
use serde_json::{json, Value};
use std::sync::Arc;

/// Repetitions per thread setting; the entry records the fastest.
const REPS: usize = 2;

/// One (dataset, algorithm) sweep cell. Outputs are filled in by the
/// single-threaded pass; the multi-threaded passes only contribute to the
/// sweep's total wall clock.
struct Cell {
    dataset: &'static str,
    alg: Algorithm,
    g: Arc<Csr>,
    source: u32,
    host_seconds: f64,
    sim_kernel_ns: u64,
}

/// Runs one cell through a fresh device and returns the simulated kernel
/// nanoseconds.
fn run_cell(cell: &Cell, host_threads: usize) -> u64 {
    let gpu = GpuConfig::default_preset().with_host_threads(host_threads);
    let mut dev = Device::new(gpu);
    // lint: allow(L-PANIC): quick-suite graphs are host-backed (no OOM); an error is a bench bug
    let r = engine::run(
        &mut dev,
        &cell.g,
        cell.source,
        cell.alg,
        &EtaConfig::paper(),
    )
    .expect("sweep cell");
    r.kernel_ns
}

/// The kernel sweep: algorithm-major order so contiguous thread chunks mix
/// heavy and light datasets instead of stacking one dataset per chunk.
fn sweep_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    for alg in [Algorithm::Bfs, Algorithm::Sssp, Algorithm::Cc] {
        for name in suite::datasets_for(suite::Suite::Quick) {
            cells.push(Cell {
                dataset: name,
                alg,
                g: suite::graph_for(name, alg),
                source: suite::dataset(name).source,
                host_seconds: 0.0,
                sim_kernel_ns: 0,
            });
        }
    }
    cells
}

/// Times one full sweep pass at `threads` host threads (best of REPS).
/// At one thread this also (re)fills each cell's per-cell outputs.
fn time_sweep(cells: &mut [Cell], threads: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let sw = Stopwatch::started();
        eta_par::for_each_mut_threads(threads, cells, |_, cell| {
            let cell_sw = Stopwatch::started();
            let kernel_ns = run_cell(cell, 1);
            cell.host_seconds = cell_sw.elapsed_secs();
            cell.sim_kernel_ns = kernel_ns;
        });
        best = best.min(sw.elapsed_secs());
    }
    best
}

/// The quick chaos drill: the seed × checkpoint-interval grid from the
/// `chaos` report artifact, minus verification/shrinking (this binary
/// times the serves, it does not re-prove them).
struct ChaosDrill {
    registry: GraphRegistry,
    trace: Vec<Request>,
    grid: Vec<(u64, u32)>,
    plans: Vec<FaultPlan>,
}

fn chaos_drill() -> ChaosDrill {
    let (scale, edges, requests, seeds): (u32, usize, u32, &[u64]) = (10, 8_000, 40, &[101, 202]);
    let mut registry = GraphRegistry::new();
    registry.insert("tenant-a", rmat(&RmatConfig::paper(scale, edges, 11)));
    registry.insert("tenant-b", rmat(&RmatConfig::paper(scale, edges, 12)));
    let names = vec!["tenant-a".to_string(), "tenant-b".to_string()];
    let workload = WorkloadConfig {
        requests,
        seed: 7,
        rate_per_s: 20_000.0,
        arrival: Arrival::Poisson,
        interactive_fraction: 0.4,
        interactive_slo_ns: Some(2_000_000),
        batch_slo_ns: None,
        timeout_ns: None,
    };
    let trace = poisson_trace(&registry, &names, &workload);
    let clean = Service::new(
        &registry,
        ServeConfig {
            devices: 2,
            ..ServeConfig::default()
        },
    )
    .run(&trace);
    let horizon = clean.makespan_ns.max(1);
    let mut grid = Vec::new();
    let mut plans = Vec::new();
    for &seed in seeds {
        let mut plan = FaultPlan::seeded(seed, 2, horizon);
        plan.hangs.push(HangFault {
            device: 0,
            start_ns: 0,
            end_ns: horizon,
            budget_ns: 50_000,
        });
        for interval in eta_bench::chaos::INTERVALS {
            grid.push((seed, interval));
            plans.push(plan.clone());
        }
    }
    ChaosDrill {
        registry,
        trace,
        grid,
        plans,
    }
}

/// Times the chaos grid at `threads` host threads (best of REPS).
fn time_drill(drill: &ChaosDrill, threads: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let mut slots: Vec<usize> = (0..drill.grid.len()).collect();
        let sw = Stopwatch::started();
        eta_par::for_each_mut_threads(threads, &mut slots, |_, slot| {
            let (_, interval) = drill.grid[*slot];
            let cfg = ServeConfig {
                devices: 2,
                faults: drill.plans[*slot].clone(),
                checkpoint_interval: interval,
                ..ServeConfig::default()
            };
            Service::new(&drill.registry, cfg).run(&drill.trace);
        });
        best = best.min(sw.elapsed_secs());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let label = flag("--label").unwrap_or_else(|| "unlabeled".into());
    let threads: usize = flag("--threads")
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or(4);
    assert!(threads >= 2, "--threads must be >= 2 (1 is the baseline)");
    let out = flag("--out").unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json").to_string()
    });
    let total = Stopwatch::started();

    // Kernel sweep: serial baseline last so the committed per-cell numbers
    // come from an otherwise-idle host.
    let mut cells = sweep_cells();
    let sweep_par = time_sweep(&mut cells, threads);
    let sweep_serial = time_sweep(&mut cells, 1);
    let sweep_speedup = sweep_serial / sweep_par;
    eprintln!(
        "sweep: {sweep_serial:.3}s at 1 thread, {sweep_par:.3}s at {threads} ({sweep_speedup:.2}x)"
    );
    let cell_rows: Vec<Value> = cells
        .iter()
        .map(|c| {
            let cycles = c.sim_kernel_ns as f64 * GpuConfig::default_preset().clock_ghz;
            json!({
                "dataset": c.dataset,
                "algorithm": c.alg.name(),
                "host_seconds": c.host_seconds,
                "sim_kernel_ns": c.sim_kernel_ns,
                "sim_cycles_per_host_sec": cycles / c.host_seconds,
            })
        })
        .collect();

    // Within-launch: the heaviest cell, per-SM drain stages at 1 vs N.
    let heaviest = cells
        .iter()
        .max_by(|a, b| a.host_seconds.total_cmp(&b.host_seconds))
        .expect("sweep is non-empty");
    let within = |host_threads: usize| {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let sw = Stopwatch::started();
            run_cell(heaviest, host_threads);
            best = best.min(sw.elapsed_secs());
        }
        best
    };
    let within_serial = within(1);
    let within_par = within(threads);
    eprintln!(
        "within-launch ({} {}): {within_serial:.3}s at 1 thread, {within_par:.3}s at {threads}",
        heaviest.dataset,
        heaviest.alg.name(),
    );

    // Chaos drill.
    let drill = chaos_drill();
    let drill_par = time_drill(&drill, threads);
    let drill_serial = time_drill(&drill, 1);
    let n_cells = drill.grid.len() as f64;
    eprintln!(
        "chaos drill: {:.1} cells/s at 1 thread, {:.1} at {threads}",
        n_cells / drill_serial,
        n_cells / drill_par,
    );

    let entry = json!({
        "schema": "eta-bench-trajectory-v1",
        "bench": "sim",
        "label": label,
        "suite": "quick",
        "reps": REPS,
        "host_threads": threads,
        "host_cores": std::thread::available_parallelism().map_or(0, |n| n.get()),
        "sweep": {
            "cells": cell_rows,
            "wall_seconds_1_thread": sweep_serial,
            "wall_seconds_n_threads": sweep_par,
            "speedup": sweep_speedup,
        },
        "within_launch": {
            "dataset": heaviest.dataset,
            "algorithm": heaviest.alg.name(),
            "wall_seconds_1_thread": within_serial,
            "wall_seconds_n_threads": within_par,
            "speedup": within_serial / within_par,
        },
        "chaos_drill": {
            "cells": drill.grid.len(),
            "wall_seconds_1_thread": drill_serial,
            "wall_seconds_n_threads": drill_par,
            "cells_per_sec_1_thread": n_cells / drill_serial,
            "cells_per_sec_n_threads": n_cells / drill_par,
            "speedup": drill_serial / drill_par,
        },
        "wall_seconds_total": total.elapsed_secs(),
    });
    // lint: allow(L-PANIC): serializing a just-built Value cannot fail
    let rendered = serde_json::to_string_pretty(&entry).expect("render entry");
    // Indent the entry one level so it nests inside the top-level array.
    let indented: String = rendered
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n");

    // The trajectory is a top-level JSON array, append-only. The vendored
    // serde_json shim is emit-only (no parser), so appending is textual:
    // strip the closing bracket, splice the new entry, close again.
    let doc = match std::fs::read_to_string(&out) {
        Ok(prior) => {
            let trimmed = prior.trim_end();
            let Some(body) = trimmed.strip_suffix(']') else {
                eprintln!("error: {out} is not a JSON array; refusing to append");
                std::process::exit(2);
            };
            let body = body.trim_end().trim_end_matches(',');
            let sep = if body.trim_end().ends_with('[') {
                "\n"
            } else {
                ",\n"
            };
            format!("{body}{sep}{indented}\n]\n")
        }
        Err(_) => format!("[\n{indented}\n]\n"),
    };
    // lint: allow(L-PANIC): writing the trajectory is this binary's whole job
    std::fs::write(&out, doc).expect("write BENCH_sim.json");
    eprintln!("wrote {} ({:.1}s total)", out, total.elapsed_secs());
}
