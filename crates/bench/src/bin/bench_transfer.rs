//! `bench_transfer`: the host-side perf baseline behind `BENCH_transfer.json`.
//!
//! Every committed report artifact is a function of the *simulated* clock;
//! this binary is the counterpart that guards **host wall-clock speed** of
//! the transfer backends — demand paging, upfront prefetch, zero-copy, and
//! the adaptive per-page-group policy — on the quick-suite Table V graphs
//! plus the sparse web analog. Each (graph, mode) cell runs BFS end-to-end,
//! takes the best of `REPS` repetitions, and appends an entry to
//! `BENCH_transfer.json` at the repository root.
//!
//! The file is a *trajectory*: entries are appended (never edited) so a
//! regression shows up as the newest entry being slower than its
//! predecessors on the same workload. Wall time is inherently
//! machine-dependent — compare entries recorded on the same machine, and
//! read `edges_per_sec_host` (graph edges / host seconds for one full
//! traversal) as the portable-ish throughput figure. The adaptive cells are
//! the ones to watch: they price the policy's bookkeeping (per-sector
//! density counters plus the per-iteration tick), which must stay a few
//! percent of the demand-paging walk, not a multiple of it.
//!
//!     cargo run --release -p eta-bench --bin bench_transfer -- [--label NAME]
//!
//! Keep runs in release mode; debug is 10-50x slower through the simulator.

use eta_bench::hosttime::Stopwatch;
use eta_bench::{suite, transfer};
use eta_sim::{Device, GpuConfig};
use etagraph::{engine, Algorithm, EtaConfig};
use serde_json::{json, Value};

/// Repetitions per configuration; the entry records the fastest.
const REPS: usize = 2;

/// Times `f` REPS times and returns the best wall seconds.
fn best_of<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let sw = Stopwatch::started();
        f();
        best = best.min(sw.elapsed_secs());
    }
    best
}

fn run_config(name: &str, g: &eta_graph::Csr, source: u32, mode: etagraph::TransferMode) -> Value {
    let cfg = EtaConfig {
        transfer: mode,
        ..EtaConfig::paper()
    };
    let wall = best_of(|| {
        let mut dev = Device::new(GpuConfig::default_preset());
        // lint: allow(L-PANIC): every raced mode is host-backed (no OOM); an error is a bench bug
        engine::run(&mut dev, g, source, Algorithm::Bfs, &cfg).expect("bfs");
    });
    eprintln!("  {name} bfs {}: {wall:.3}s host", mode.as_str());
    json!({
        "dataset": name,
        "algorithm": "bfs",
        "transfer": mode.as_str(),
        "host_seconds": wall,
        "edges_per_sec_host": g.m() as f64 / wall,
    })
}

fn main() {
    let label = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--label")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "unlabeled".into())
    };
    let total = Stopwatch::started();
    let mut runs = Vec::new();
    for name in transfer::graphs_for(suite::Suite::Quick) {
        let g = suite::graph_for(name, Algorithm::Bfs);
        let source = suite::dataset(name).source;
        for mode in transfer::MODES {
            runs.push(run_config(name, &g, source, mode));
        }
    }
    let (sparse, sparse_source) = transfer::sparse_web();
    for mode in transfer::MODES {
        runs.push(run_config("web-sparse", &sparse, sparse_source, mode));
    }
    let entry = json!({
        "schema": "eta-bench-trajectory-v1",
        "bench": "transfer",
        "label": label,
        "suite": "quick",
        "reps": REPS,
        "wall_seconds_total": total.elapsed_secs(),
        "runs": runs,
    });
    // lint: allow(L-PANIC): serializing a just-built Value cannot fail
    let rendered = serde_json::to_string_pretty(&entry).expect("render entry");
    // Indent the entry one level so it nests inside the top-level array.
    let indented: String = rendered
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n");

    // The trajectory is a top-level JSON array, append-only. The vendored
    // serde_json shim is emit-only (no parser), so appending is textual:
    // strip the closing bracket, splice the new entry, close again.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transfer.json");
    let doc = match std::fs::read_to_string(path) {
        Ok(prior) => {
            let trimmed = prior.trim_end();
            let Some(body) = trimmed.strip_suffix(']') else {
                eprintln!("error: {path} is not a JSON array; refusing to append");
                std::process::exit(2);
            };
            let body = body.trim_end().trim_end_matches(',');
            let sep = if body.trim_end().ends_with('[') {
                "\n"
            } else {
                ",\n"
            };
            format!("{body}{sep}{indented}\n]\n")
        }
        Err(_) => format!("[\n{indented}\n]\n"),
    };
    // lint: allow(L-PANIC): writing the trajectory is this binary's whole job
    std::fs::write(path, doc).expect("write BENCH_transfer.json");
    eprintln!("wrote {} ({:.1}s total)", path, total.elapsed_secs());
}
