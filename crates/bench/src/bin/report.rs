//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p eta-bench --bin report -- all            # everything
//! cargo run --release -p eta-bench --bin report -- table3 fig7   # a subset
//! cargo run --release -p eta-bench --bin report -- all --quick   # small datasets
//! cargo run --release -p eta-bench --bin report -- all --out reports/
//! ```
//!
//! Each artifact is printed and, with `--out DIR`, also written as
//! `DIR/<name>.txt` and `DIR/<name>.json`.

use eta_bench::hosttime::Stopwatch;
use eta_bench::tables::Artifact;
use eta_bench::{figs, tables, Suite};
use std::io::Write;
use std::path::PathBuf;

const KNOWN: [&str; 20] = [
    "table1", "table2", "table3", "table4", "table5", "fig2", "fig4", "fig5", "fig6", "fig7",
    "extras", "sanitize", "serve", "shard", "transfer", "profile", "faults", "chaos", "lint",
    "overload",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = Some(PathBuf::from(
                    it.next().expect("--out needs a directory argument"),
                ))
            }
            "all" => wanted.extend(KNOWN.iter().map(|s| s.to_string())),
            other if KNOWN.contains(&other) => wanted.push(other.to_string()),
            other => {
                eprintln!(
                    "unknown artifact {other:?}; known: {KNOWN:?}, 'all', --quick, --out DIR"
                );
                std::process::exit(2);
            }
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: report <artifact...|all> [--quick] [--out DIR]");
        eprintln!("artifacts: {KNOWN:?}");
        std::process::exit(2);
    }
    wanted.dedup();
    let suite = if quick { Suite::Quick } else { Suite::Full };

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }

    for name in wanted {
        let sw = Stopwatch::started();
        let artifact = generate(&name, suite);
        println!("\n=== {} ===", artifact.title);
        println!("{}", artifact.text);
        println!("[generated in {:.1}s]", sw.elapsed_secs());
        if let Some(dir) = &out_dir {
            write_artifact(dir, &artifact);
        }
    }
}

fn generate(name: &str, suite: Suite) -> Artifact {
    match name {
        "table1" => tables::table1(),
        "table2" => tables::table2(suite),
        "table3" => tables::table3(suite),
        "table4" => tables::table4(suite),
        "table5" => tables::table5(suite),
        "fig2" => figs::fig2(),
        "fig4" => figs::fig4(suite),
        "fig5" => figs::fig5(suite),
        "fig6" => figs::fig6(suite),
        "fig7" => figs::fig7(),
        "extras" => eta_bench::extras::extras(if suite == Suite::Quick {
            "slashdot"
        } else {
            "livejournal"
        }),
        "sanitize" => eta_bench::sanitize::sanitize(if suite == Suite::Quick {
            "slashdot"
        } else {
            "livejournal"
        }),
        "serve" => eta_bench::serve_report::serve(suite),
        "shard" => eta_bench::shard::shard(suite),
        "transfer" => eta_bench::transfer::transfer(suite),
        "profile" => eta_bench::profile_report::profile(suite),
        "faults" => eta_bench::faults_report::faults(suite),
        "chaos" => eta_bench::chaos::chaos(suite),
        "overload" => eta_bench::overload::overload(suite),
        "lint" => eta_bench::lint_report::lint(),
        _ => unreachable!("validated in main"),
    }
}

fn write_artifact(dir: &std::path::Path, a: &Artifact) {
    let txt = dir.join(format!("{}.txt", a.name));
    let mut f = std::fs::File::create(&txt).expect("create artifact txt");
    writeln!(f, "{}\n\n{}", a.title, a.text).expect("write artifact txt");
    let json = dir.join(format!("{}.json", a.name));
    std::fs::write(
        &json,
        serde_json::to_string_pretty(&a.json).expect("serialize artifact"),
    )
    .expect("write artifact json");
    eprintln!("wrote {} and {}", txt.display(), json.display());
}
