//! The `chaos` artifact: a deterministic chaos-soak sweep proving the
//! checkpoint/resume recovery ladder loses nothing and answers nothing
//! wrong.
//!
//! The sweep crosses seeded fault plans (each seed expands to a different
//! mix of ECC, UM, hang, and PCIe events, plus one guaranteed mid-traversal
//! hang window) with checkpoint intervals (0 = checkpointing off, the
//! restart-from-scratch ladder). Every completed request in every cell is
//! differentially verified against the CPU reference via its full level
//! digest, and every trace id must be accounted for exactly once across
//! records and rejections. A failing cell is shrunk to a minimal
//! reproducing plan with [`shrink_plan`] before it is reported.
//!
//! Everything is simulated and seeded, so the artifact — including the
//! checkpoint-interval vs makespan tradeoff curve — is byte-identical
//! across reruns.

use crate::suite::Suite;
use crate::tables::Artifact;
use crate::text;
use eta_ckpt::digest_words;
use eta_fault::{FaultPlan, HangFault};
use eta_graph::generate::{rmat, RmatConfig};
use eta_graph::reference;
use eta_serve::{
    poisson_trace, Arrival, GraphRegistry, GroupConfig, GroupService, Request, ServeConfig,
    ServeReport, Service, WorkloadConfig,
};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Checkpoint intervals swept per fault plan; 0 is the no-checkpoint
/// baseline every other column is compared against.
pub const INTERVALS: [u32; 4] = [0, 2, 4, 8];

/// Outcome of differentially verifying one served run.
#[derive(Debug, Clone, Default)]
pub struct Verification {
    /// Request ids missing from (or duplicated across) records+rejections.
    pub lost: Vec<u32>,
    /// Completed request ids whose level digest disagrees with the CPU
    /// reference.
    pub wrong: Vec<u32>,
}

impl Verification {
    pub fn clean(&self) -> bool {
        self.lost.is_empty() && self.wrong.is_empty()
    }
}

/// Checks a report against the ground truth: every trace id accounted for
/// exactly once, and every completed answer's level digest equal to the
/// CPU reference's. Reference digests are memoized per (graph, source), so
/// a sweep pays for each distinct traversal once.
pub fn verify(
    registry: &GraphRegistry,
    trace: &[Request],
    report: &ServeReport,
    memo: &mut BTreeMap<(String, u32), u64>,
) -> Verification {
    let mut v = Verification::default();
    let mut seen: BTreeMap<u32, u32> = BTreeMap::new();
    for r in &report.records {
        *seen.entry(r.id).or_insert(0) += 1;
    }
    for r in &report.rejections {
        *seen.entry(r.id).or_insert(0) += 1;
    }
    for req in trace {
        if seen.get(&req.id).copied().unwrap_or(0) != 1 {
            v.lost.push(req.id);
        }
    }
    for r in &report.records {
        let expected = *memo.entry((r.graph.clone(), r.source)).or_insert_with(|| {
            let csr = registry.get(&r.graph).expect("graph registered");
            digest_words(&[&reference::bfs(csr, r.source)])
        });
        if r.levels_digest != expected {
            v.wrong.push(r.id);
        }
    }
    v
}

fn section_len(plan: &FaultPlan, section: usize) -> usize {
    match section {
        0 => plan.ecc.len(),
        1 => plan.um.len(),
        2 => plan.hangs.len(),
        _ => plan.pcie.len(),
    }
}

fn drop_one(plan: &FaultPlan, section: usize, idx: usize) -> FaultPlan {
    let mut out = plan.clone();
    match section {
        0 => {
            out.ecc.remove(idx);
        }
        1 => {
            out.um.remove(idx);
        }
        2 => {
            out.hangs.remove(idx);
        }
        _ => {
            out.pcie.remove(idx);
        }
    }
    out
}

/// Greedy event-level ddmin: repeatedly drops single events while the
/// failure predicate keeps failing, until no single drop preserves the
/// failure. The result is 1-minimal — removing any one remaining event
/// makes the failure disappear — which is what a human debugging a chaos
/// finding wants to start from.
pub fn shrink_plan<F: Fn(&FaultPlan) -> bool>(plan: &FaultPlan, still_fails: F) -> FaultPlan {
    let mut cur = plan.clone();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for section in 0..4usize {
            let mut idx = 0;
            while idx < section_len(&cur, section) {
                let cand = drop_one(&cur, section, idx);
                if still_fails(&cand) {
                    cur = cand;
                    progressed = true;
                } else {
                    idx += 1;
                }
            }
        }
    }
    cur
}

/// One sweep cell: a (fault seed, checkpoint interval) pair and what
/// serving the trace under it produced.
struct Cell {
    seed: u64,
    interval: u32,
    report: ServeReport,
    verification: Verification,
}

/// Serves one trace under one plan/interval pair.
fn run_cell(
    registry: &GraphRegistry,
    trace: &[Request],
    plan: &FaultPlan,
    interval: u32,
) -> ServeReport {
    let cfg = ServeConfig {
        devices: 2,
        faults: plan.clone(),
        checkpoint_interval: interval,
        ..ServeConfig::default()
    };
    Service::new(registry, cfg).run(trace)
}

/// The chaos sweep. Each seed's plan is `FaultPlan::seeded` over the clean
/// run's serving window, plus one guaranteed hang window on device 0 whose
/// 50 µs budget passes small-frontier kernels and kills the peak-frontier
/// one — a mid-traversal fault with snapshots already taken, exercising
/// resume (and migration, when device 0 is still cooling off) rather than
/// only the fault-before-first-snapshot path.
pub fn chaos(suite: Suite) -> Artifact {
    let (scale, edges, requests, seeds): (u32, usize, u32, &[u64]) = match suite {
        Suite::Quick => (10, 8_000, 40, &[101, 202]),
        Suite::Full => (12, 32_000, 120, &[101, 202, 303]),
    };
    let mut registry = GraphRegistry::new();
    registry.insert("tenant-a", rmat(&RmatConfig::paper(scale, edges, 11)));
    registry.insert("tenant-b", rmat(&RmatConfig::paper(scale, edges, 12)));
    let names = vec!["tenant-a".to_string(), "tenant-b".to_string()];
    let workload = WorkloadConfig {
        requests,
        seed: 7,
        rate_per_s: 20_000.0,
        arrival: Arrival::Poisson,
        interactive_fraction: 0.4,
        interactive_slo_ns: Some(2_000_000),
        batch_slo_ns: None,
        timeout_ns: None,
    };
    let trace = poisson_trace(&registry, &names, &workload);
    let clean = run_cell(&registry, &trace, &FaultPlan::default(), 0);
    let horizon = clean.makespan_ns.max(1);

    let plan_for = |seed: u64| {
        let mut plan = FaultPlan::seeded(seed, 2, horizon);
        plan.hangs.push(HangFault {
            device: 0,
            start_ns: 0,
            end_ns: horizon,
            budget_ns: 50_000,
        });
        plan
    };

    let mut memo: BTreeMap<(String, u32), u64> = BTreeMap::new();
    let mut cells: Vec<Cell> = Vec::new();
    let mut failures: Vec<Value> = Vec::new();
    for &seed in seeds {
        let plan = plan_for(seed);
        for interval in INTERVALS {
            let report = run_cell(&registry, &trace, &plan, interval);
            let verification = verify(&registry, &trace, &report, &mut memo);
            if !verification.clean() {
                // Shrink to a minimal reproducer before reporting: the
                // memo is shared, so re-verification is cheap.
                let shrunk = shrink_plan(&plan, |cand| {
                    let r = run_cell(&registry, &trace, cand, interval);
                    let mut m = memo.clone();
                    !verify(&registry, &trace, &r, &mut m).clean()
                });
                failures.push(json!({
                    "seed": seed,
                    "interval": interval,
                    "lost": verification.lost,
                    "wrong": verification.wrong,
                    "minimal_plan": shrunk,
                }));
            }
            cells.push(Cell {
                seed,
                interval,
                report,
                verification,
            });
        }
    }

    // Device-group drill: the same tenants served by 2-member *groups*
    // (sharded traversal) from a 3-device pool, with one member hanging
    // permanently mid-query. Per-launch fault installation re-arms the
    // window every attempt, so recovery cannot come from waiting the fault
    // out — the ladder must quarantine the member and regroup the query on
    // the remaining healthy pair, resuming from its group-shape-agnostic
    // snapshot. Differentially verified like every other cell.
    let group_plan = FaultPlan {
        hangs: vec![HangFault {
            device: 1,
            start_ns: 0,
            end_ns: u64::MAX,
            budget_ns: 40_000,
        }],
        ..FaultPlan::default()
    };
    let group_trace = poisson_trace(
        &registry,
        &names,
        &WorkloadConfig {
            requests: 12,
            seed: 9,
            ..workload.clone()
        },
    );
    let group_report = GroupService::new(
        &mut registry,
        GroupConfig {
            devices: 3,
            group_size: 2,
            faults: group_plan,
            checkpoint_interval: 2,
            ..GroupConfig::default()
        },
    )
    .run(&group_trace);
    let group_verification = verify(&registry, &group_trace, &group_report, &mut memo);
    let regrouped = group_report
        .groups
        .iter()
        .filter(|g| g.devices != vec![0, 1])
        .map(|g| g.queries)
        .sum::<u32>();

    // The tradeoff curve: per interval, mean makespan and total recovery
    // traffic across every seeded plan. Restart-from-scratch is the
    // interval-0 row; the others show what snapshot overhead buys back.
    let curve: Vec<Value> = INTERVALS
        .iter()
        .map(|&interval| {
            let of: Vec<&Cell> = cells.iter().filter(|c| c.interval == interval).collect();
            let mean_makespan =
                of.iter().map(|c| c.report.makespan_ns).sum::<u64>() as f64 / of.len() as f64;
            json!({
                "interval": interval,
                "mean_makespan_ms": mean_makespan / 1e6,
                "resumes": of.iter().map(|c| c.report.resumes).sum::<u32>(),
                "migrations": of.iter().map(|c| c.report.migrations).sum::<u32>(),
                "checkpoints": of.iter().map(|c| c.report.checkpoints).sum::<u32>(),
                "work_saved_iterations":
                    of.iter().map(|c| c.report.work_saved_iterations).sum::<u64>(),
                "degraded": of.iter().map(|c| c.report.degraded).sum::<u32>(),
            })
        })
        .collect();

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.seed.to_string(),
                c.interval.to_string(),
                c.report.completed.to_string(),
                c.report.rejected.to_string(),
                c.report.degraded.to_string(),
                c.report.fault_events.len().to_string(),
                c.report.resumes.to_string(),
                c.report.migrations.to_string(),
                c.report.work_saved_iterations.to_string(),
                format!("{:.3}", c.report.makespan_ns as f64 / 1e6),
                c.verification.lost.len().to_string(),
                c.verification.wrong.len().to_string(),
            ]
        })
        .collect();
    let mut body = text::table(
        &[
            "seed",
            "interval",
            "completed",
            "rejected",
            "degraded",
            "faults",
            "resumes",
            "migrations",
            "work saved",
            "makespan (ms)",
            "lost",
            "wrong",
        ],
        &rows,
    );
    body.push_str(
        "\ncheckpoint-interval tradeoff (mean across seeds; interval 0 = restart-from-scratch):\n",
    );
    let curve_rows: Vec<Vec<String>> = curve
        .iter()
        .map(|c| {
            vec![
                c["interval"].to_string(),
                format!("{:.3}", c["mean_makespan_ms"].as_f64().unwrap()),
                c["resumes"].to_string(),
                c["migrations"].to_string(),
                c["checkpoints"].to_string(),
                c["work_saved_iterations"].to_string(),
                c["degraded"].to_string(),
            ]
        })
        .collect();
    body.push_str(&text::table(
        &[
            "interval",
            "mean makespan (ms)",
            "resumes",
            "migrations",
            "checkpoints",
            "work saved",
            "degraded",
        ],
        &curve_rows,
    ));
    body.push_str(&format!(
        "\ndevice-group drill (3-device pool, groups of 2, member 1 permanently hung):\n\
         {} queries: {} completed, {} degraded, {} quarantine(s), \
         {} resume(s), {} served on a regrouped set\n",
        group_trace.len(),
        group_report.completed,
        group_report.degraded,
        group_report.quarantines.len(),
        group_report.resumes,
        regrouped,
    ));
    let total_lost: usize = cells
        .iter()
        .map(|c| c.verification.lost.len())
        .sum::<usize>()
        + group_verification.lost.len();
    let total_wrong: usize = cells
        .iter()
        .map(|c| c.verification.wrong.len())
        .sum::<usize>()
        + group_verification.wrong.len();
    body.push_str(&format!(
        "\nverification: {} cells + the group drill, {} lost, {} wrong (every completed answer checked against the CPU reference)\n",
        cells.len(),
        total_lost,
        total_wrong
    ));

    let cell_json: Vec<Value> = cells
        .iter()
        .map(|c| {
            json!({
                "seed": c.seed,
                "interval": c.interval,
                "completed": c.report.completed,
                "rejected": c.report.rejected,
                "degraded": c.report.degraded,
                "fault_events": c.report.fault_events.len(),
                "quarantines": c.report.quarantines.len(),
                "checkpoints": c.report.checkpoints,
                "resumes": c.report.resumes,
                "migrations": c.report.migrations,
                "work_saved_iterations": c.report.work_saved_iterations,
                "makespan_ms": c.report.makespan_ns as f64 / 1e6,
                "lost": c.verification.lost,
                "wrong": c.verification.wrong,
            })
        })
        .collect();

    Artifact {
        name: "chaos",
        title: format!(
            "Chaos soak: {requests} Poisson requests over 2 tenants, {} fault seeds x {} checkpoint intervals",
            seeds.len(),
            INTERVALS.len()
        ),
        text: body,
        json: json!({
            "requests": requests,
            "workload_seed": workload.seed,
            "fault_seeds": seeds,
            "intervals": INTERVALS,
            "horizon_ns": horizon,
            "cells": cell_json,
            "curve": curve,
            "group_drill": {
                "queries": group_trace.len(),
                "completed": group_report.completed,
                "degraded": group_report.degraded,
                "quarantines": group_report.quarantines.len(),
                "checkpoints": group_report.checkpoints,
                "resumes": group_report.resumes,
                "migrations": group_report.migrations,
                "regrouped_queries": regrouped,
                "groups": group_report.groups,
                "lost": group_verification.lost,
                "wrong": group_verification.wrong,
            },
            "verification": { "lost": total_lost, "wrong": total_wrong },
            "failures": failures,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_sweep_loses_nothing_and_answers_nothing_wrong() {
        let a = chaos(Suite::Quick);
        assert_eq!(a.name, "chaos");
        assert_eq!(a.json["verification"]["lost"], 0);
        assert_eq!(a.json["verification"]["wrong"], 0);
        assert!(a.json["failures"].as_array().unwrap().is_empty());
        // The guaranteed mid-traversal hang makes the checkpoint machinery
        // actually fire somewhere in the sweep.
        let resumes: u64 = a.json["curve"]
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c["resumes"].as_u64().unwrap())
            .sum();
        assert!(
            resumes > 0,
            "the sweep must exercise resume-from-checkpoint"
        );
        // Interval 0 rows exist and report no checkpoint traffic.
        let zero = &a.json["curve"].as_array().unwrap()[0];
        assert_eq!(zero["interval"], 0);
        assert_eq!(zero["checkpoints"], 0);
        assert_eq!(zero["resumes"], 0);
        // The group drill: every query completes on devices (no CPU
        // fallback) despite the permanently hung member, the member is
        // quarantined, and at least one query finishes on a regrouped set.
        let g = &a.json["group_drill"];
        assert_eq!(g["completed"], g["queries"], "group drill: 0 lost");
        assert_eq!(g["degraded"], 0, "answered on devices, not the CPU");
        assert!(g["quarantines"].as_u64().unwrap() >= 1);
        assert!(g["regrouped_queries"].as_u64().unwrap() >= 1);
        assert!(g["lost"].as_array().unwrap().is_empty());
        assert!(g["wrong"].as_array().unwrap().is_empty());
    }

    #[test]
    fn chaos_artifact_is_deterministic() {
        let a = chaos(Suite::Quick);
        let b = chaos(Suite::Quick);
        assert_eq!(
            serde_json::to_string(&a.json).unwrap(),
            serde_json::to_string(&b.json).unwrap(),
            "same seeds, same bytes"
        );
    }

    #[test]
    fn shrinker_reaches_a_one_minimal_plan() {
        // Artificial predicate: the failure persists while the plan still
        // has >= 1 hang AND >= 1 double-bit ECC event. The minimal
        // reproducer is exactly one of each.
        let mut plan = FaultPlan::seeded(9, 2, 1_000_000);
        for d in 0..3 {
            plan.hangs.push(HangFault {
                device: d,
                start_ns: 0,
                end_ns: 1000,
                budget_ns: 10,
            });
        }
        plan.ecc.iter_mut().for_each(|e| e.double_bit = true);
        let fails = |p: &FaultPlan| !p.hangs.is_empty() && p.ecc.iter().any(|e| e.double_bit);
        assert!(fails(&plan));
        let min = shrink_plan(&plan, fails);
        assert!(fails(&min), "shrinking preserves the failure");
        assert_eq!(min.hangs.len(), 1);
        assert_eq!(min.ecc.len(), 1);
        assert!(min.um.is_empty() && min.pcie.is_empty());
    }

    #[test]
    fn verifier_flags_lost_and_wrong_answers() {
        let mut registry = GraphRegistry::new();
        registry.insert("g", rmat(&RmatConfig::paper(8, 2_000, 1)));
        let names = vec!["g".to_string()];
        let trace = poisson_trace(
            &registry,
            &names,
            &WorkloadConfig {
                requests: 6,
                ..WorkloadConfig::default()
            },
        );
        let mut report = Service::new(&registry, ServeConfig::default()).run(&trace);
        let mut memo = BTreeMap::new();
        assert!(verify(&registry, &trace, &report, &mut memo).clean());
        // Corrupt one digest and drop one record: both must be caught.
        report.records[0].levels_digest ^= 1;
        let dropped = report.records.pop().unwrap().id;
        let v = verify(&registry, &trace, &report, &mut memo);
        assert_eq!(v.wrong, vec![report.records[0].id]);
        assert_eq!(v.lost, vec![dropped]);
    }
}
