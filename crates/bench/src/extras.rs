//! Extension experiments beyond the paper's own tables and figures:
//! measured backing for the claims the paper makes in prose.

use crate::suite::{self, dataset};
use crate::tables::Artifact;
use crate::text;
use eta_baselines::{run_fresh, ChunkStream, EtaFramework};
use eta_sim::GpuConfig;
use etagraph::session::Session;
use etagraph::{pagerank, Algorithm, EtaConfig};
use serde_json::{json, Value};

/// Runs every extension experiment on the given dataset (default:
/// livejournal) and reports one table per claim.
pub fn extras(ds: &'static str) -> Artifact {
    let d = dataset(ds);
    let weighted = suite::weighted(ds);
    let mut body = String::new();
    let mut jout = serde_json::Map::new();

    // --- §III-A: in-core vs out-of-core UDC --------------------------------
    let run_with = |cfg: &EtaConfig, alg: Algorithm| {
        let g = suite::graph_for(ds, alg);
        let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
        etagraph::engine::run(&mut dev, &g, d.source, alg, cfg).expect("UM never OOMs")
    };
    let in_core = run_with(&EtaConfig::paper(), Algorithm::Sssp);
    let out_core = run_with(&EtaConfig::out_of_core(), Algorithm::Sssp);
    body.push_str(&format!(
        "in-core vs out-of-core UDC (SSSP on {ds}):\n  in-core  {:.3} ms total\n  out-of-core {:.3} ms total ({:.2}x) — pays the 3|N|+|V| table transfer\n\n",
        in_core.total_ms(),
        out_core.total_ms(),
        out_core.total_ms() / in_core.total_ms()
    ));
    jout.insert(
        "udc_mode".into(),
        json!({
            "in_core_ms": in_core.total_ms(),
            "out_of_core_ms": out_core.total_ms(),
        }),
    );

    // --- direction-optimizing BFS -------------------------------------------
    let push_only = run_with(&EtaConfig::paper(), Algorithm::Bfs);
    let pull = run_with(&EtaConfig::direction_optimizing(), Algorithm::Bfs);
    assert_eq!(push_only.labels, pull.labels);
    let pulled = pull.per_iteration.iter().filter(|s| s.pulled).count();
    body.push_str(&format!(
        "direction-optimizing BFS ({ds}):\n  push-only {:.3} ms kernels; with pull {:.3} ms kernels ({} of {} iterations pulled; +transposed-topology transfer)\n\n",
        push_only.kernel_ms(),
        pull.kernel_ms(),
        pulled,
        pull.iterations
    ));
    jout.insert(
        "direction_optimizing".into(),
        json!({
            "push_kernel_ms": push_only.kernel_ms(),
            "pull_kernel_ms": pull.kernel_ms(),
            "pulled_iterations": pulled,
        }),
    );

    // --- warm sessions -------------------------------------------------------
    let mut session = Session::new(&weighted, EtaConfig::paper()).expect("fits");
    let cold = session.query(Algorithm::Bfs, d.source).expect("runs");
    let mut warm_total = 0u64;
    let warm_n = 8;
    for i in 0..warm_n {
        let r = session
            .query(Algorithm::Bfs, (d.source + i) % d.csr.n() as u32)
            .expect("runs");
        warm_total += r.total_ns;
    }
    body.push_str(&format!(
        "warm multi-query session ({ds}, BFS):\n  cold query {:.3} ms; {} warm queries avg {:.3} ms ({:.2}x faster)\n\n",
        cold.total_ms(),
        warm_n,
        warm_total as f64 / warm_n as f64 / 1e6,
        cold.total_ns as f64 * warm_n as f64 / warm_total as f64,
    ));
    jout.insert(
        "session".into(),
        json!({
            "cold_ms": cold.total_ms(),
            "warm_avg_ms": warm_total as f64 / warm_n as f64 / 1e6,
        }),
    );

    // --- §I's fixed-chunk streaming critique --------------------------------
    let eta = run_fresh(
        &EtaFramework::paper(),
        GpuConfig::default_preset(),
        &d.csr,
        d.source,
        Algorithm::Bfs,
    )
    .expect("fits");
    let chunks = run_fresh(
        &ChunkStream::default(),
        GpuConfig::default_preset(),
        &d.csr,
        d.source,
        Algorithm::Bfs,
    )
    .expect("streaming never OOMs");
    assert_eq!(eta.labels, chunks.labels);
    body.push_str(&format!(
        "fixed-chunk streaming (GTS-like) vs EtaGraph (BFS on {ds}):\n  EtaGraph {:.3} ms total; ChunkStream {:.3} ms total ({:.1}x) — re-streams the topology every iteration\n\n",
        eta.total_ms(),
        chunks.total_ms(),
        chunks.total_ms() / eta.total_ms()
    ));
    jout.insert(
        "chunk_streaming".into(),
        json!({
            "etagraph_ms": eta.total_ms(),
            "chunkstream_ms": chunks.total_ms(),
        }),
    );

    // --- PageRank generality -------------------------------------------------
    let pr_cfg = pagerank::PageRankConfig {
        iterations: 10,
        ..Default::default()
    };
    let mut no_smp_cfg = pr_cfg;
    no_smp_cfg.eta.smp = false;
    let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
    let pr = pagerank::run(&mut dev, &d.csr, &pr_cfg).expect("fits");
    let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
    let pr_plain = pagerank::run(&mut dev, &d.csr, &no_smp_cfg).expect("fits");
    body.push_str(&format!(
        "PageRank on the UDC+SMP machinery ({ds}, 10 iterations):\n  with SMP {:.3} ms kernels, {} global load transactions\n  w/o SMP  {:.3} ms kernels, {} global load transactions ({:.2}x)\n",
        pr.kernel_ns as f64 / 1e6,
        pr.metrics.l1_requests,
        pr_plain.kernel_ns as f64 / 1e6,
        pr_plain.metrics.l1_requests,
        pr_plain.metrics.l1_requests as f64 / pr.metrics.l1_requests.max(1) as f64,
    ));
    jout.insert(
        "pagerank".into(),
        json!({
            "smp_kernel_ms": pr.kernel_ns as f64 / 1e6,
            "no_smp_kernel_ms": pr_plain.kernel_ns as f64 / 1e6,
            "smp_gld": pr.metrics.l1_requests,
            "no_smp_gld": pr_plain.metrics.l1_requests,
        }),
    );

    // --- degree-limit sweep ----------------------------------------------------
    let mut rows = Vec::new();
    let mut sweep = Vec::new();
    for k in [2u32, 4, 8, 16, 32, 64] {
        let cfg = EtaConfig {
            k,
            ..EtaConfig::paper()
        };
        let r = run_with(&cfg, Algorithm::Bfs);
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", r.kernel_ms()),
            format!("{:.3}", r.total_ms()),
            r.metrics.occupancy_warps.to_string(),
        ]);
        sweep.push(json!({"k": k, "kernel_ms": r.kernel_ms(), "total_ms": r.total_ms()}));
    }
    body.push_str("\ndegree limit K sweep (BFS):\n");
    body.push_str(&text::table(
        &["K", "kernel (ms)", "total (ms)", "occupancy (warps/SM)"],
        &rows,
    ));
    jout.insert("k_sweep".into(), Value::Array(sweep));

    Artifact {
        name: "extras",
        title: format!("Extensions beyond the paper (dataset: {ds})"),
        text: body,
        json: Value::Object(jout),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_runs_on_slashdot_and_reports_every_section() {
        let a = extras("slashdot");
        for key in [
            "udc_mode",
            "direction_optimizing",
            "session",
            "chunk_streaming",
            "pagerank",
            "k_sweep",
        ] {
            assert!(a.json.get(key).is_some(), "missing section {key}");
        }
        assert!(a.text.contains("degree limit K sweep"));
    }
}
