//! The `faults` artifact: the same served workload with and without a
//! seeded device-fault plan, reporting what resilience costs.
//!
//! This is the serving-layer counterpart of a chaos drill: `eta-fault`
//! injects ECC errors, kernel hangs, UM migration failures, and PCIe
//! degradation windows on the simulated clock, and the scheduler's recovery
//! ladder (retry with backoff → device quarantine → CPU fallback) keeps
//! every request answered. The artifact quotes availability, tail latency
//! under faults vs the clean baseline, the fault event log, and the
//! quarantine timeline — all deterministic for a given seed.

use crate::stats::Summary;
use crate::suite::Suite;
use crate::tables::Artifact;
use crate::text;
use eta_fault::FaultPlan;
use eta_graph::generate::{rmat, RmatConfig};
use eta_serve::{
    poisson_trace, Arrival, GraphRegistry, ServeConfig, ServeReport, Service, WorkloadConfig,
};
use serde_json::{json, Value};

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// JSON digest of one served run, from the fault-tolerance angle.
fn report_json(label: &str, report: &ServeReport) -> Value {
    json!({
        "mode": label,
        "completed": report.completed,
        "rejected": report.rejected,
        "degraded": report.degraded,
        "availability": report.availability,
        "makespan_ms": report.makespan_ns as f64 / 1e6,
        "latency": Summary::of(&report.latencies_ns(None)),
        "fault_events": report.fault_events,
        "quarantines": report.quarantines,
        "retries_total": report.records.iter().map(|r| r.retries as u64).sum::<u64>(),
        "checkpoints": report.checkpoints,
        "resumes": report.resumes,
        "migrations": report.migrations,
        "work_saved_iterations": report.work_saved_iterations,
    })
}

/// Serves one Poisson trace twice — clean, then under a seeded fault plan —
/// and contrasts availability and tail latency.
pub fn faults(suite: Suite) -> Artifact {
    let (scale, edges, requests) = match suite {
        Suite::Quick => (10u32, 8_000usize, 80u32),
        Suite::Full => (12, 32_000, 200),
    };
    let mut registry = GraphRegistry::new();
    registry.insert("tenant-a", rmat(&RmatConfig::paper(scale, edges, 11)));
    registry.insert("tenant-b", rmat(&RmatConfig::paper(scale, edges, 12)));
    let names = vec!["tenant-a".to_string(), "tenant-b".to_string()];
    let workload = WorkloadConfig {
        requests,
        seed: 7,
        rate_per_s: 20_000.0,
        arrival: Arrival::Poisson,
        interactive_fraction: 0.4,
        interactive_slo_ns: Some(2_000_000),
        batch_slo_ns: None,
        timeout_ns: None,
    };
    let trace = poisson_trace(&registry, &names, &workload);

    let base = ServeConfig {
        devices: 2,
        ..ServeConfig::default()
    };
    let clean = Service::new(&registry, base.clone()).run(&trace);
    // Seed the plan across the clean run's actual serving window, so the
    // injected events land where the traffic is. The makespan is itself
    // deterministic, so the whole artifact stays reproducible.
    let plan = FaultPlan::seeded(23, base.devices as u32, clean.makespan_ns.max(1));
    let plan_counts = (
        plan.ecc.len(),
        plan.um.len(),
        plan.hangs.len(),
        plan.pcie.len(),
    );
    let faulted = Service::new(
        &registry,
        ServeConfig {
            faults: plan.clone(),
            ..base.clone()
        },
    )
    .run(&trace);
    // Same plan, but with rung 0 of the recovery ladder armed: snapshot
    // every 2 iterations and resume faulted batches from the last snapshot
    // instead of restarting them from scratch.
    let ckpt = Service::new(
        &registry,
        ServeConfig {
            faults: plan.clone(),
            checkpoint_interval: 2,
            ..base
        },
    )
    .run(&trace);

    let mode_row = |label: &str, r: &ServeReport| {
        let lat = Summary::of(&r.latencies_ns(None)).expect("completed requests");
        vec![
            label.to_string(),
            r.completed.to_string(),
            r.rejected.to_string(),
            r.degraded.to_string(),
            format!("{:.4}", r.availability),
            ms(r.makespan_ns),
            ms(lat.p50),
            ms(lat.p99),
        ]
    };
    let mut body = text::table(
        &[
            "mode",
            "completed",
            "rejected",
            "degraded",
            "availability",
            "makespan (ms)",
            "p50 (ms)",
            "p99 (ms)",
        ],
        &[
            mode_row("clean", &clean),
            mode_row("faulted", &faulted),
            mode_row("faulted+ckpt", &ckpt),
        ],
    );
    body.push_str(&format!(
        "\nfault plan (seed {}): {} ecc, {} um, {} hang, {} pcie windows\n",
        plan.seed, plan_counts.0, plan_counts.1, plan_counts.2, plan_counts.3
    ));
    body.push_str(&format!(
        "faulted+ckpt (interval 2): {} checkpoints, {} resumes ({} migrated), {} iterations of work saved\n",
        ckpt.checkpoints, ckpt.resumes, ckpt.migrations, ckpt.work_saved_iterations
    ));
    if faulted.fault_events.is_empty() {
        body.push_str("no injected event intersected a launch\n");
    } else {
        body.push_str("\nobserved device faults:\n");
        let rows: Vec<Vec<String>> = faulted
            .fault_events
            .iter()
            .map(|f| vec![f.device.to_string(), f.kind.clone(), ms(f.at_ns)])
            .collect();
        body.push_str(&text::table(&["device", "kind", "at (ms)"], &rows));
    }
    if faulted.quarantines.is_empty() {
        body.push_str("\nno device reached the quarantine threshold\n");
    } else {
        body.push_str("\nquarantine timeline:\n");
        let rows: Vec<Vec<String>> = faulted
            .quarantines
            .iter()
            .map(|q| vec![q.device.to_string(), ms(q.from_ns), ms(q.until_ns)])
            .collect();
        body.push_str(&text::table(&["device", "from (ms)", "until (ms)"], &rows));
    }

    Artifact {
        name: "faults",
        title: format!(
            "Faults: {requests} Poisson requests over 2 tenants, clean vs seeded fault plan"
        ),
        text: body,
        json: json!({
            "requests": requests,
            "workload_seed": workload.seed,
            "fault_seed": plan.seed,
            "plan": plan,
            "clean": report_json("clean", &clean),
            "faulted": report_json("faulted", &faulted),
            "faulted_ckpt": report_json("faulted+ckpt", &ckpt),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_artifact_keeps_every_request_answered() {
        let a = faults(Suite::Quick);
        assert_eq!(a.name, "faults");
        assert!(a.text.contains("availability"));
        // The recovery ladder must not lose requests relative to the clean
        // run: rejections may differ (timeout policy under delay), but the
        // sum is the whole trace either way.
        let total = |r: &Value| r["completed"].as_u64().unwrap() + r["rejected"].as_u64().unwrap();
        assert_eq!(total(&a.json["clean"]), 80);
        assert_eq!(total(&a.json["faulted"]), 80);
        assert_eq!(total(&a.json["faulted_ckpt"]), 80);
        assert!(a.json["clean"]["availability"].as_f64().unwrap() > 0.0);
        // The clean run and the no-checkpoint faulted run report no
        // checkpoint traffic at all.
        assert_eq!(a.json["clean"]["checkpoints"], 0);
        assert_eq!(a.json["faulted"]["resumes"], 0);
    }
}
