//! Generators for Figures 2, 4, 5, 6 and 7 of the paper.

use crate::suite::{self, dataset, Suite};
use crate::tables::Artifact;
use crate::text;
use eta_sim::GpuConfig;
use etagraph::{Algorithm, EtaConfig, RunResult};
use serde_json::{json, Value};

fn run_eta(ds: &'static str, alg: Algorithm, cfg: &EtaConfig) -> RunResult {
    let g = suite::graph_for(ds, alg);
    let d = dataset(ds);
    let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
    etagraph::engine::run(&mut dev, &g, d.source, alg, cfg).expect("UM runs never OOM")
}

/// Fig. 2: number and cumulative distribution of active vertices per BFS
/// iteration (livejournal and orkut analogs).
pub fn fig2() -> Artifact {
    let mut body = String::new();
    let mut jout = Vec::new();
    for ds in ["livejournal", "orkut"] {
        let r = run_eta(ds, Algorithm::Bfs, &EtaConfig::paper());
        let total: u64 = r.per_iteration.iter().map(|s| s.active as u64).sum();
        let active: Vec<f64> = r.per_iteration.iter().map(|s| s.active as f64).collect();
        let bars = text::bars(&active, 40);
        body.push_str(&format!("\n{ds}: active vertices per iteration\n"));
        let mut cumulative = 0u64;
        let mut rows = Vec::new();
        for (s, bar) in r.per_iteration.iter().zip(bars) {
            cumulative += s.active as u64;
            rows.push(vec![
                s.iteration.to_string(),
                s.active.to_string(),
                format!("{:.1}%", 100.0 * cumulative as f64 / total as f64),
                bar,
            ]);
        }
        body.push_str(&text::table(&["iter", "active", "cumulative", ""], &rows));
        jout.push(json!({
            "dataset": ds,
            "active_per_iteration": r.per_iteration.iter().map(|s| s.active).collect::<Vec<_>>(),
        }));
    }
    Artifact {
        name: "fig2",
        title: "Fig. 2: active vertices per BFS iteration (grow then shrink)".into(),
        text: body,
        json: Value::Array(jout),
    }
}

/// Fig. 4: transfer/compute overlap of EtaGraph w/o UMP running SSSP.
pub fn fig4(suite: Suite) -> Artifact {
    let names: Vec<&'static str> = match suite {
        Suite::Quick => vec!["livejournal", "orkut"],
        Suite::Full => vec!["livejournal", "orkut", "rmat22", "uk2005"],
    };
    let mut rows = Vec::new();
    let mut jout = Vec::new();
    let mut strips = String::new();
    for &ds in &names {
        let r = run_eta(ds, Algorithm::Sssp, &EtaConfig::without_ump());
        let transfer_busy = r.timeline.busy_time(|s| s.kind.is_transfer());
        let compute_busy = r.timeline.busy_time(|s| !s.kind.is_transfer());
        strips.push_str(&format!(
            "\n{ds}:\n{}",
            text::timeline_strip(r.timeline.spans(), 72)
        ));
        rows.push(vec![
            ds.to_string(),
            format!("{:.3}", r.total_ms()),
            format!("{:.3}", transfer_busy as f64 / 1e6),
            format!("{:.3}", compute_busy as f64 / 1e6),
            format!("{:.0}%", r.overlap_fraction * 100.0),
        ]);
        jout.push(json!({
            "dataset": ds,
            "total_ms": r.total_ms(),
            "transfer_busy_ms": transfer_busy as f64 / 1e6,
            "compute_busy_ms": compute_busy as f64 / 1e6,
            "overlap_fraction": r.overlap_fraction,
        }));
    }
    let mut body = text::table(
        &[
            "dataset",
            "total (ms)",
            "transfer busy (ms)",
            "compute busy (ms)",
            "transfer hidden",
        ],
        &rows,
    );
    body.push_str(&strips);
    Artifact {
        name: "fig4",
        title: "Fig. 4: transfer/compute overlap, EtaGraph w/o UMP, SSSP".into(),
        text: body,
        json: Value::Array(jout),
    }
}

/// Fig. 5: visited vertices over time — near-linear growth.
pub fn fig5(suite: Suite) -> Artifact {
    let names = suite::datasets_for(suite);
    let mut body = String::new();
    let mut jout = Vec::new();
    for &ds in &names {
        let r = run_eta(ds, Algorithm::Bfs, &EtaConfig::paper());
        let series: Vec<(f64, u64)> = r
            .per_iteration
            .iter()
            .map(|s| (s.end_ns as f64 / 1e6, s.visited_total))
            .collect();
        // Linearity proxy: R² of visited ~ time over the active phase.
        let r2 = linear_r2(&series);
        body.push_str(&format!(
            "{ds}: {} iterations, visited {} — visited-vs-time R² = {:.3}\n",
            r.iterations,
            r.visited(),
            r2
        ));
        jout.push(json!({
            "dataset": ds,
            "series_ms_visited": series,
            "r_squared": r2,
        }));
    }
    body.push_str("\n(R² near 1 reproduces the paper's near-linear growth claim)\n");
    Artifact {
        name: "fig5",
        title: "Fig. 5: visited vertices over time".into(),
        text: body,
        json: Value::Array(jout),
    }
}

/// Fig. 6: normalized total runtimes of the EtaGraph ablations.
pub fn fig6(suite: Suite) -> Artifact {
    let names = suite::datasets_for(suite);
    let variants: [(&str, EtaConfig); 4] = [
        ("EtaGraph", EtaConfig::paper()),
        ("w/o SMP", EtaConfig::without_smp()),
        ("w/o UM", EtaConfig::without_um()),
        ("w/o UMP", EtaConfig::without_ump()),
    ];
    let mut rows = Vec::new();
    let mut jout = Vec::new();
    for &ds in &names {
        let g = suite::graph_for(ds, Algorithm::Bfs);
        let d = dataset(ds);
        let mut totals: Vec<Option<f64>> = Vec::new();
        for (_, cfg) in &variants {
            let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
            let total = etagraph::engine::run(&mut dev, &g, d.source, Algorithm::Bfs, cfg)
                .ok()
                .map(|r| r.total_ms());
            totals.push(total);
        }
        let base = totals[0].expect("EtaGraph itself always runs");
        let mut row = vec![ds.to_string()];
        for t in &totals {
            row.push(match t {
                Some(ms) => format!("{:.2}", ms / base),
                None => "O.O.M".to_string(),
            });
        }
        rows.push(row);
        jout.push(json!({
            "dataset": ds,
            "normalized": variants.iter().zip(&totals).map(|((name, _), t)| json!({
                "variant": name,
                "normalized_total": t.map(|ms| ms / base),
                "total_ms": t,
            })).collect::<Vec<_>>(),
        }));
    }
    let mut headers = vec!["dataset"];
    headers.extend(variants.iter().map(|(n, _)| *n));
    Artifact {
        name: "fig6",
        title: "Fig. 6: normalized BFS runtimes of EtaGraph setups".into(),
        text: text::table(&headers, &rows),
        json: Value::Array(jout),
    }
}

/// Fig. 7: SMP microarchitecture metrics, BFS on the LiveJournal analog.
pub fn fig7() -> Artifact {
    let with = run_eta("livejournal", Algorithm::Bfs, &EtaConfig::paper());
    let without = run_eta("livejournal", Algorithm::Bfs, &EtaConfig::without_smp());
    assert_eq!(with.labels, without.labels, "SMP must not change results");

    let metric = |name: &str, w: f64, wo: f64, higher_better: bool| {
        json!({
            "metric": name,
            "smp": w,
            "no_smp": wo,
            "ratio": if wo != 0.0 { w / wo } else { 0.0 },
            "higher_is_better": higher_better,
        })
    };
    let m = &with.metrics;
    let n = &without.metrics;
    let entries = vec![
        metric("ipc", m.ipc(), n.ipc(), true),
        metric(
            "unified_cache_hit_rate",
            m.l1_hit_rate(),
            n.l1_hit_rate(),
            true,
        ),
        metric("l2_hit_rate", m.l2_hit_rate(), n.l2_hit_rate(), true),
        metric(
            "l2_read_throughput_gb_s",
            m.l2_throughput_gb_s(),
            n.l2_throughput_gb_s(),
            true,
        ),
        metric(
            "unified_cache_throughput_gb_s",
            m.l1_throughput_gb_s(),
            n.l1_throughput_gb_s(),
            true,
        ),
        metric(
            "dram_read_throughput_gb_s",
            m.dram_throughput_gb_s(),
            n.dram_throughput_gb_s(),
            true,
        ),
        // nvprof's gld_transactions: global load transactions at the
        // L1TEX level — vectorized SMP bursts need ~4x fewer.
        metric(
            "global_read_transactions",
            m.l1_requests as f64,
            n.l1_requests as f64,
            false,
        ),
    ];
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e["metric"].as_str().unwrap().to_string(),
                format!("{:.3}", e["smp"].as_f64().unwrap()),
                format!("{:.3}", e["no_smp"].as_f64().unwrap()),
                format!("{:.2}x", e["ratio"].as_f64().unwrap()),
            ]
        })
        .collect();
    Artifact {
        name: "fig7",
        title: "Fig. 7: SMP effect on IPC, caches, throughput, transactions (BFS, livejournal)"
            .into(),
        text: text::table(&["metric", "SMP", "w/o SMP", "ratio"], &rows),
        json: Value::Array(entries),
    }
}

/// Least-squares R² of a (time, value) series.
fn linear_r2(series: &[(f64, u64)]) -> f64 {
    if series.len() < 3 {
        return 1.0;
    }
    let n = series.len() as f64;
    let (sx, sy): (f64, f64) = series
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y as f64));
    let (mx, my) = (sx / n, sy / n);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in series {
        let dx = x - mx;
        let dy = y as f64 - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_r2_of_perfect_line_is_one() {
        let series: Vec<(f64, u64)> = (0..10).map(|i| (i as f64, 5 * i as u64)).collect();
        assert!((linear_r2(&series) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_r2_of_noise_is_low() {
        let series = vec![
            (0.0, 10),
            (1.0, 0),
            (2.0, 10),
            (3.0, 0),
            (4.0, 10),
            (5.0, 0),
        ];
        assert!(linear_r2(&series) < 0.3);
    }

    #[test]
    fn fig7_reproduces_the_smp_headline_metrics() {
        // The two metrics the mechanism is calibrated against (paper:
        // IPC x1.42, global read transactions x0.48), plus the directions
        // that must hold for the unified cache. The L2-level metrics are
        // reported but not asserted — see EXPERIMENTS.md for the known
        // deviation of the inclusive-hierarchy model.
        let a = fig7();
        let entries = a.json.as_array().unwrap();
        let ratio = |name: &str| {
            entries
                .iter()
                .find(|e| e["metric"] == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))["ratio"]
                .as_f64()
                .unwrap()
        };
        let ipc = ratio("ipc");
        assert!((1.1..2.2).contains(&ipc), "IPC ratio out of band: {ipc}");
        let gld = ratio("global_read_transactions");
        assert!((0.2..0.8).contains(&gld), "gld ratio out of band: {gld}");
        assert!(ratio("unified_cache_hit_rate") > 1.0);
        assert!(ratio("dram_read_throughput_gb_s") > 0.9);
    }

    #[test]
    fn fig2_shows_grow_then_shrink() {
        let a = fig2();
        let lj = &a.json.as_array().unwrap()[0];
        let active: Vec<u64> = lj["active_per_iteration"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        let peak_idx = active.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
        assert!(peak_idx > 0 && peak_idx < active.len() - 1);
    }
}
