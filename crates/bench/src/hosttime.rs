//! Host wall-clock access, quarantined.
//!
//! Every artifact in this workspace is a function of the *simulated* clock
//! (`eta-sim`'s cycle counters): two runs of the same command must emit the
//! same bytes. The only legitimate use of the host clock is progress
//! feedback on stderr/stdout framing — "how long did this artifact take to
//! generate" — which is never part of an artifact's text or JSON.
//!
//! `L-DET-TIME` allowlists exactly this file; any `Instant`/`SystemTime`
//! anywhere else in the workspace is a lint finding. Keeping the wall clock
//! behind one tiny API makes "does host time leak into artifact bytes?"
//! greppable instead of a per-call-site argument.

use std::time::Instant;

/// A started wall-clock stopwatch for operator-facing progress lines.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn started() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Wall seconds since `started()`. For progress display only — never
    /// write this into an artifact.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic_and_nonnegative() {
        let sw = Stopwatch::started();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
