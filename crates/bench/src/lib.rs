//! `eta-bench` — the experiment harness.
//!
//! Regenerates every table and figure of the paper's evaluation section:
//! run `cargo run --release -p eta-bench --bin report -- all` (or a single
//! artifact name such as `table3` or `fig7`; add `--quick` to restrict to
//! the small datasets). Criterion micro-benches live under `benches/`.
//!
//! The mapping from paper artifact to generator function is in DESIGN.md's
//! per-experiment index; EXPERIMENTS.md records paper-vs-measured values.

pub mod chaos;
pub mod extras;
pub mod faults_report;
pub mod figs;
pub mod hosttime;
pub mod lint_report;
pub mod overload;
pub mod profile_report;
pub mod sanitize;
pub mod serve_report;
pub mod shard;
pub mod stats;
pub mod suite;
pub mod tables;
pub mod text;
pub mod transfer;

pub use suite::{datasets_for, CellOutcome, Suite};
