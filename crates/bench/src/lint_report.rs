//! The `lint` artifact: a full `eta-lint` run over this workspace, rendered
//! through the same `Artifact` pipeline as the paper's tables so
//! `reports/lint.{txt,json}` regenerate alongside everything else.

use crate::tables::Artifact;
use eta_lint::LintReport;
use serde_json::{json, Value};

/// Converts a lint report into the artifact's JSON value. Field-compatible
/// with [`LintReport::json`] (the CLI's hand-emitted sink); this one exists
/// because artifacts carry a `serde_json::Value`.
pub fn value(r: &LintReport) -> Value {
    let rules: Vec<Value> = eta_lint::RULES
        .iter()
        .map(|m| json!({"id": m.id, "summary": m.summary}))
        .collect();
    let findings: Vec<Value> = r
        .findings
        .iter()
        .zip(&r.source_lines)
        .map(|(f, src)| {
            json!({
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "source": src,
            })
        })
        .collect();
    let stale: Vec<Value> = r
        .stale_baseline
        .iter()
        .map(|e| json!({"rule": e.rule, "path": e.path, "source": e.line_text}))
        .collect();
    json!({
        "version": 1,
        "files_scanned": r.files_scanned,
        "new": r.findings.len(),
        "baselined": r.baselined,
        "inline_allowed": r.inline_allowed,
        "clean": r.is_clean(),
        "rules": rules,
        "findings": findings,
        "stale_baseline": stale,
    })
}

/// Runs the linter over the enclosing workspace and packages the result.
pub fn lint() -> Artifact {
    let root = std::env::current_dir()
        .ok()
        .and_then(|d| eta_lint::find_workspace_root(&d))
        .unwrap_or_else(|| {
            // Fallback for odd CWDs: this crate lives at <root>/crates/bench.
            let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
            manifest
                .parent()
                .and_then(|p| p.parent())
                .unwrap_or(manifest)
                .to_path_buf()
        });
    match eta_lint::lint_workspace(&root) {
        Ok(report) => Artifact {
            name: "lint",
            title: "eta-lint: workspace static invariant check".into(),
            text: report.text(),
            json: value(&report),
        },
        Err(e) => Artifact {
            name: "lint",
            title: "eta-lint: workspace static invariant check".into(),
            text: format!("lint run failed: {e}\n"),
            json: json!({"version": 1, "clean": false, "error": e.to_string()}),
        },
    }
}
