//! The `overload` artifact: a saturation drill proving the qos layer keeps
//! goodput and deadline attainment up when arrivals exceed capacity.
//!
//! The drill first calibrates the pool's capacity (a closed burst of
//! requests served qos-off: completed / makespan), then sweeps arrival-rate
//! multipliers over that capacity × fault plans × workload seeds, serving
//! every trace twice on the *same* arrivals: once qos-off (the bounded
//! queue alone) and once with [`QosConfig::standard`] — admission by
//! deadline feasibility, worst-first shedding, tenant fair share, the
//! retry budget, and brownout. Burst cells re-run the 4× point under the
//! two-state MMPP arrival process, the pattern that defeats averaged
//! admission.
//!
//! Every cell is differentially verified with [`crate::chaos::verify`]:
//! each trace id accounted for exactly once (completed xor rejected — 0
//! lost, 0 double-counted) and every completed answer's level digest equal
//! to the CPU reference. The artifact emits goodput, SLO attainment, a
//! shed breakdown by reject reason, and p50/p99/p999 per tenant. All of it
//! is simulated and seeded: reruns are byte-identical.

use crate::chaos::verify;
use crate::stats::percentile;
use crate::suite::Suite;
use crate::tables::Artifact;
use crate::text;
use eta_fault::FaultPlan;
use eta_graph::generate::{rmat, RmatConfig};
use eta_mem::Ns;
use eta_serve::{
    poisson_trace, Arrival, GraphRegistry, QosConfig, ServeConfig, ServeReport, Service,
    WorkloadConfig,
};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Arrival-rate multipliers over calibrated capacity. 1x is the control;
/// past it the uncontrolled queue collapses into late completions.
pub const MULTIPLIERS: [u32; 4] = [1, 2, 4, 8];

/// Interactive completion SLO in units of the calibrated pool-wide
/// per-request service time: deadline = arrival + 24 request-slots. With
/// the drill's queue of 64, an uncontrolled backlog alone is enough to
/// blow it — which is exactly the regime admission control is for.
const SLO_SLOTS: f64 = 24.0;

/// The serve config both arms share; only `qos` differs between them.
fn drill_cfg(plan: &FaultPlan, qos: QosConfig) -> ServeConfig {
    ServeConfig {
        devices: 2,
        queue_capacity: 64,
        faults: plan.clone(),
        checkpoint_interval: 2,
        qos,
        ..ServeConfig::default()
    }
}

/// Calibrates pool capacity: a closed burst served qos-off. The arrival
/// process is irrelevant at this rate — everything queues immediately — so
/// completed / makespan measures what the batched pool can actually drain.
fn calibrate(registry: &GraphRegistry, names: &[String]) -> f64 {
    let workload = WorkloadConfig {
        requests: 64,
        seed: 3,
        rate_per_s: 10_000_000.0,
        interactive_fraction: 0.0,
        interactive_slo_ns: None,
        batch_slo_ns: None,
        timeout_ns: None,
        arrival: Arrival::Poisson,
    };
    let trace = poisson_trace(registry, names, &workload);
    let report = Service::new(
        registry,
        drill_cfg(&FaultPlan::default(), QosConfig::default()),
    )
    .run(&trace);
    report.completed as f64 / (report.makespan_ns.max(1) as f64 / 1e9)
}

/// Digest of one served arm: throughput-style aggregates, the shed
/// breakdown, and per-tenant latency tails.
fn arm_json(report: &ServeReport, tenants: &[String]) -> Value {
    let mut sheds: BTreeMap<&'static str, u32> = BTreeMap::new();
    for r in &report.rejections {
        *sheds.entry(r.reason.name()).or_insert(0) += 1;
    }
    let mut shed_map = serde_json::Map::new();
    for (k, v) in &sheds {
        shed_map.insert(k.to_string(), json!(v));
    }
    let mut tenant_map = serde_json::Map::new();
    for t in tenants {
        let lats: Vec<u64> = report
            .records
            .iter()
            .filter(|r| &r.graph == t)
            .map(|r| r.latency_ns)
            .collect();
        let digest = json!({
            "completed": lats.len(),
            "p50_ms": percentile(&lats, 50.0).map(|v| v as f64 / 1e6),
            "p99_ms": percentile(&lats, 99.0).map(|v| v as f64 / 1e6),
            "p999_ms": percentile(&lats, 99.9).map(|v| v as f64 / 1e6),
        });
        tenant_map.insert(t.clone(), digest);
    }
    let shed_json = Value::Object(shed_map);
    let tenant_json = Value::Object(tenant_map);
    json!({
        "completed": report.completed,
        "rejected": report.rejected,
        "degraded": report.degraded,
        "makespan_ms": report.makespan_ns as f64 / 1e6,
        "goodput_qps": report.goodput_qps(),
        "slo_attainment": report.slo_attainment(),
        "sheds": shed_json,
        "tenants": tenant_json,
        "qos": report.qos,
    })
}

/// One sweep cell: both arms on the same trace, plus verification.
struct Cell {
    multiplier: u32,
    arrival: Arrival,
    fault_seed: Option<u64>,
    workload_seed: u64,
    baseline: ServeReport,
    qos: ServeReport,
    lost: usize,
    wrong: usize,
}

/// The overload drill.
pub fn overload(suite: Suite) -> Artifact {
    let (scale, edges, requests, workload_seeds, fault_seeds): (u32, usize, u32, &[u64], &[u64]) =
        match suite {
            Suite::Quick => (10, 8_000, 120, &[7], &[131]),
            Suite::Full => (12, 32_000, 240, &[7, 8], &[131, 232]),
        };
    let mut registry = GraphRegistry::new();
    registry.insert("tenant-a", rmat(&RmatConfig::paper(scale, edges, 11)));
    registry.insert("tenant-b", rmat(&RmatConfig::paper(scale, edges, 12)));
    let names = vec!["tenant-a".to_string(), "tenant-b".to_string()];
    let capacity_qps = calibrate(&registry, &names);
    let slo_ns = (SLO_SLOTS * 1e9 / capacity_qps) as Ns;

    // Fault plans are seeded over the expected serving window at 1x; a
    // `None` plan is the fault-free control.
    let horizon = (requests as f64 / capacity_qps * 1e9) as u64;
    let plans: Vec<Option<u64>> = std::iter::once(None)
        .chain(fault_seeds.iter().map(|&s| Some(s)))
        .collect();

    let mut memo: BTreeMap<(String, u32), u64> = BTreeMap::new();
    let mut cells: Vec<Cell> = Vec::new();
    for &workload_seed in workload_seeds {
        for &plan_seed in &plans {
            let plan = match plan_seed {
                Some(s) => FaultPlan::seeded(s, 2, horizon),
                None => FaultPlan::default(),
            };
            // The poisson sweep plus the MMPP burst point at 4x.
            let points: Vec<(u32, Arrival)> = MULTIPLIERS
                .iter()
                .map(|&m| (m, Arrival::Poisson))
                .chain(std::iter::once((4, Arrival::Burst)))
                .collect();
            for (multiplier, arrival) in points {
                let workload = WorkloadConfig {
                    requests,
                    seed: workload_seed,
                    rate_per_s: capacity_qps * multiplier as f64,
                    interactive_fraction: 0.6,
                    interactive_slo_ns: Some(slo_ns),
                    batch_slo_ns: None,
                    timeout_ns: None,
                    arrival,
                };
                let trace = poisson_trace(&registry, &names, &workload);
                let baseline =
                    Service::new(&registry, drill_cfg(&plan, QosConfig::default())).run(&trace);
                let qos =
                    Service::new(&registry, drill_cfg(&plan, QosConfig::standard())).run(&trace);
                let vb = verify(&registry, &trace, &baseline, &mut memo);
                let vq = verify(&registry, &trace, &qos, &mut memo);
                cells.push(Cell {
                    multiplier,
                    arrival,
                    fault_seed: plan_seed,
                    workload_seed,
                    baseline,
                    qos,
                    lost: vb.lost.len() + vq.lost.len(),
                    wrong: vb.wrong.len() + vq.wrong.len(),
                });
            }
        }
    }

    let att = |r: &ServeReport| r.slo_attainment().unwrap_or(0.0);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("{}x", c.multiplier),
                c.arrival.name().to_string(),
                c.fault_seed.map_or("-".into(), |s| s.to_string()),
                c.workload_seed.to_string(),
                format!("{:.0}", c.baseline.goodput_qps()),
                format!("{:.0}", c.qos.goodput_qps()),
                format!("{:.1}%", att(&c.baseline) * 100.0),
                format!("{:.1}%", att(&c.qos) * 100.0),
                c.qos.rejected.to_string(),
                c.lost.to_string(),
                c.wrong.to_string(),
            ]
        })
        .collect();
    let mut body = format!(
        "calibrated capacity: {capacity_qps:.0} qps (2 devices, qos off, closed burst)\n\n"
    );
    body.push_str(&text::table(
        &[
            "rate",
            "arrival",
            "faults",
            "wseed",
            "base goodput",
            "qos goodput",
            "base SLO",
            "qos SLO",
            "qos rejected",
            "lost",
            "wrong",
        ],
        &rows,
    ));
    let saturated: Vec<&Cell> = cells.iter().filter(|c| c.multiplier >= 4).collect();
    let qos_wins = saturated
        .iter()
        .filter(|c| {
            c.qos.goodput_qps() > c.baseline.goodput_qps() && att(&c.qos) > att(&c.baseline)
        })
        .count();
    body.push_str(&format!(
        "\nsaturated cells (>= 4x): {}/{} where qos strictly beats the baseline on both goodput and attainment\n",
        qos_wins,
        saturated.len()
    ));
    let total_lost: usize = cells.iter().map(|c| c.lost).sum();
    let total_wrong: usize = cells.iter().map(|c| c.wrong).sum();
    body.push_str(&format!(
        "verification: {} cells x 2 arms, {} lost, {} double-counted-or-wrong (every id accounted exactly once; every answer checked against the CPU reference)\n",
        cells.len(),
        total_lost,
        total_wrong
    ));

    let cell_json: Vec<Value> = cells
        .iter()
        .map(|c| {
            json!({
                "multiplier": c.multiplier,
                "arrival": c.arrival.name(),
                "fault_seed": c.fault_seed,
                "workload_seed": c.workload_seed,
                "baseline": arm_json(&c.baseline, &names),
                "qos": arm_json(&c.qos, &names),
                "lost": c.lost,
                "wrong": c.wrong,
            })
        })
        .collect();

    Artifact {
        name: "overload",
        title: format!(
            "Overload drill: {requests} requests/cell, {}x rate multipliers x {} fault plans, qos on vs off",
            MULTIPLIERS.len(),
            plans.len()
        ),
        text: body,
        json: json!({
            "requests": requests,
            "capacity_qps": capacity_qps,
            "multipliers": MULTIPLIERS,
            "slo_ns": slo_ns,
            "workload_seeds": workload_seeds,
            "fault_seeds": fault_seeds,
            "cells": cell_json,
            "saturated_cells": saturated.len(),
            "saturated_qos_wins": qos_wins,
            "verification": { "lost": total_lost, "wrong": total_wrong },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_drill_qos_beats_baseline_at_saturation_and_loses_nothing() {
        let a = overload(Suite::Quick);
        assert_eq!(a.name, "overload");
        assert_eq!(a.json["verification"]["lost"], 0, "exactly-once: 0 lost");
        assert_eq!(a.json["verification"]["wrong"], 0, "0 wrong answers");
        // The acceptance bar: at 4x and 8x saturation, qos strictly beats
        // the uncontrolled baseline on BOTH goodput and attainment, in
        // every saturated cell.
        assert_eq!(
            a.json["saturated_qos_wins"], a.json["saturated_cells"],
            "qos must win every saturated cell"
        );
        assert!(a.json["saturated_cells"].as_u64().unwrap() >= 4);
        // The sweep actually exercises the control paths: some cell shed
        // or rejected on deadline, and the burst cells ran.
        let cells = a.json["cells"].as_array().unwrap();
        assert!(cells.iter().any(|c| c["arrival"] == "burst"));
        let qos_rejected: u64 = cells
            .iter()
            .map(|c| c["qos"]["rejected"].as_u64().unwrap())
            .sum();
        assert!(qos_rejected > 0, "overload must trigger qos rejections");
    }

    #[test]
    fn overload_artifact_is_deterministic() {
        let a = overload(Suite::Quick);
        let b = overload(Suite::Quick);
        assert_eq!(
            serde_json::to_string(&a.json).unwrap(),
            serde_json::to_string(&b.json).unwrap(),
            "same seeds, same bytes"
        );
    }
}
