//! The `profile` artifact: an `eta-prof` capture of one BFS run under UM
//! oversubscription.
//!
//! The device is sized *below* the run's working set, so Unified Memory must
//! demand-migrate (and evict) topology pages while kernels execute — the
//! transfer/compute overlap of the paper's Fig. 4, here measured directly
//! from the profile's kernel and UM tracks instead of inferred from totals.
//! The text output is the profiler's nvprof-style summary; the JSON carries
//! the same summary in machine-readable form (see PROFILING.md for how to
//! capture the matching Chrome trace with `etagraph run --profile`).

use crate::suite::{dataset, Suite};
use crate::tables::Artifact;
use eta_sim::{Device, GpuConfig};
use etagraph::{Algorithm, EtaConfig};
use serde_json::{json, Value};

/// Profiles one UM-oversubscribed BFS and reports the summary.
pub fn profile(suite: Suite) -> Artifact {
    let name = match suite {
        Suite::Quick => "slashdot",
        Suite::Full => "livejournal",
    };
    let d = dataset(name);
    let g = &d.csr;
    // ~1.5 words/edge: enough for the CSR alone but below the run's total
    // working set (CSR + labels + frontier and shadow state), so the UM
    // driver pages topology in and out during the traversal.
    let device_mem = (g.m() as f64 * 1.5 * 4.0) as u64;
    let gpu = GpuConfig::gtx1080ti_scaled(device_mem).with_profiling();
    let mut dev = Device::new(gpu);
    let r = etagraph::engine::run(&mut dev, g, d.source, Algorithm::Bfs, &EtaConfig::paper())
        .expect("EtaGraph oversubscribes via UM; this must not OOM");

    let p = dev.profile();
    let s = p.summary();
    let mut text = p.summary_text();
    text.push_str(&format!(
        "\nrun: BFS on {name} from source {}, {} iterations, {:.3} ms total\n\
         device memory: {:.1} MiB; the CSR alone is {:.1} MiB, so the working\n\
         set (CSR + labels + frontier state) oversubscribes the device\n",
        d.source,
        r.iterations,
        r.total_ns as f64 / 1e6,
        device_mem as f64 / (1024.0 * 1024.0),
        ((g.n() + 1 + g.m()) * 4) as f64 / (1024.0 * 1024.0),
    ));

    let rows: Vec<Value> = s
        .rows
        .iter()
        .map(|row| {
            json!({
                "track": row.track.label(),
                "name": row.name,
                "calls": row.calls,
                "total_ns": row.total_ns,
                "avg_ns": row.avg_ns(),
                "min_ns": row.min_ns,
                "max_ns": row.max_ns,
                "bytes": row.bytes,
            })
        })
        .collect();
    let counters: Vec<Value> = s
        .kernel_counters
        .iter()
        .map(|k| {
            json!({
                "kernel": k.kernel,
                "calls": k.calls,
                "counters": k.counters.iter().map(|c| json!({
                    "name": c.name, "avg": c.avg, "min": c.min, "max": c.max,
                })).collect::<Vec<_>>(),
            })
        })
        .collect();

    Artifact {
        name: "profile",
        title: format!("eta-prof: BFS on {name} under UM oversubscription"),
        text,
        json: json!({
            "dataset": name,
            "source": d.source,
            "iterations": r.iterations,
            "total_ns": r.total_ns,
            "device_mem_bytes": device_mem,
            "events": s.event_count,
            "kernel_busy_ns": s.kernel_busy_ns,
            "transfer_busy_ns": s.transfer_busy_ns,
            "overlap_ns": s.overlap_ns,
            "overlap_fraction": s.overlap_fraction,
            "makespan_ns": s.makespan_ns,
            "rows": rows,
            "kernel_counters": counters,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_artifact_shows_transfer_compute_overlap() {
        let a = profile(Suite::Quick);
        assert_eq!(a.name, "profile");
        assert!(a.text.contains("==eta-prof=="));
        assert!(
            a.json["overlap_ns"].as_u64().unwrap() > 0,
            "UM migrations must overlap kernels"
        );
        assert!(a.json["kernel_busy_ns"].as_u64().unwrap() > 0);
        let counters = a.json["kernel_counters"].as_array().unwrap();
        assert!(!counters.is_empty(), "per-kernel counter tables present");
        // Byte-identical regeneration (the determinism contract).
        let b = profile(Suite::Quick);
        assert_eq!(a.text, b.text);
        assert_eq!(
            serde_json::to_string(&a.json).unwrap(),
            serde_json::to_string(&b.json).unwrap()
        );
    }
}
