//! `report sanitize`: runs every shipped kernel family under the full
//! sanitizer (memcheck + racecheck + lint) and reports the findings — the
//! reproduction's analogue of a `compute-sanitizer` sweep over the paper's
//! implementations. Errors mean a real hazard; warnings are access-pattern
//! advisories (see DESIGN.md for the thresholds and the expected ones).

use crate::suite::{self, dataset};
use crate::tables::Artifact;
use crate::text;
use eta_baselines::{ChunkStream, CushaLike, Framework, GunrockLike, TigrLike};
use eta_sim::{Device, GpuConfig, SanitizerMode, SanitizerReport};
use etagraph::{Algorithm, EtaConfig};
use serde_json::{json, Value};

fn sanitized_device() -> Device {
    Device::new(GpuConfig::default_preset().with_sanitizer(SanitizerMode::Full))
}

/// Runs one EtaGraph configuration sanitized and returns its report.
fn eta_case(csr: &eta_graph::Csr, source: u32, alg: Algorithm, cfg: &EtaConfig) -> SanitizerReport {
    let mut dev = sanitized_device();
    etagraph::engine::run(&mut dev, csr, source, alg, cfg).expect("sanitized run fits");
    dev.sanitizer_report().expect("sanitizer was enabled")
}

/// Every kernel family the workspace ships, each under `SanitizerMode::Full`.
pub fn cases(ds: &'static str) -> Vec<(String, SanitizerReport)> {
    let d = dataset(ds);
    let weighted = suite::weighted(ds);
    let g = &d.csr;
    let src = d.source;
    let mut out: Vec<(String, SanitizerReport)> = Vec::new();

    // EtaGraph across algorithms and the paper's ablation axes.
    for (label, alg, cfg) in [
        ("eta bfs", Algorithm::Bfs, EtaConfig::paper()),
        ("eta sssp", Algorithm::Sssp, EtaConfig::paper()),
        ("eta sswp", Algorithm::Sswp, EtaConfig::paper()),
        ("eta cc", Algorithm::Cc, EtaConfig::paper()),
        (
            "eta bfs no-smp",
            Algorithm::Bfs,
            EtaConfig {
                smp: false,
                ..EtaConfig::paper()
            },
        ),
        (
            "eta bfs out-of-core",
            Algorithm::Bfs,
            EtaConfig::out_of_core(),
        ),
        (
            "eta bfs pull",
            Algorithm::Bfs,
            EtaConfig::direction_optimizing(),
        ),
        ("eta bfs w/o ump", Algorithm::Bfs, EtaConfig::without_ump()),
    ] {
        let csr = if alg.needs_weights() { &weighted } else { g };
        out.push((label.to_string(), eta_case(csr, src, alg, &cfg)));
    }

    // PageRank rides the same UDC+SMP machinery but with float payloads.
    let pr_cfg = etagraph::pagerank::PageRankConfig {
        iterations: 5,
        ..Default::default()
    };
    let mut dev = sanitized_device();
    etagraph::pagerank::run(&mut dev, g, &pr_cfg).expect("pagerank fits");
    out.push((
        "pagerank".to_string(),
        dev.sanitizer_report().expect("sanitizer was enabled"),
    ));

    // Batched multi-source BFS (iBFS-style bitmask kernel).
    let sources: Vec<u32> = (0..4).map(|i| (src + i) % g.n() as u32).collect();
    let mut dev = sanitized_device();
    etagraph::multi_bfs::run(&mut dev, g, &sources, &EtaConfig::paper()).expect("multi-bfs fits");
    out.push((
        "multi-bfs x4".to_string(),
        dev.sanitizer_report().expect("sanitizer was enabled"),
    ));

    // Baseline frameworks' kernels run sanitized through the same device.
    let baselines: Vec<(&str, Box<dyn Framework>)> = vec![
        ("cusha bfs", Box::new(CushaLike::default())),
        ("gunrock bfs", Box::new(GunrockLike::default())),
        ("tigr bfs", Box::new(TigrLike::default())),
        ("chunkstream bfs", Box::new(ChunkStream::default())),
    ];
    for (label, fw) in baselines {
        let mut dev = sanitized_device();
        fw.run(&mut dev, g, src, Algorithm::Bfs)
            .expect("baseline BFS fits");
        out.push((
            label.to_string(),
            dev.sanitizer_report().expect("sanitizer was enabled"),
        ));
    }
    out
}

/// The `report sanitize` artifact: a per-run findings table plus the full
/// JSON reports.
pub fn sanitize(ds: &'static str) -> Artifact {
    let runs = cases(ds);
    let mut rows = Vec::new();
    let mut jruns = Vec::new();
    let mut total_errors = 0usize;
    for (label, report) in &runs {
        let warn_kinds: Vec<String> = {
            let mut kinds: Vec<String> = report
                .warnings
                .iter()
                .map(|f| format!("{:?}", f.kind))
                .collect();
            kinds.sort();
            kinds.dedup();
            kinds
        };
        total_errors += report.errors.len();
        rows.push(vec![
            label.clone(),
            report.launches.to_string(),
            report.errors.len().to_string(),
            report.warnings.len().to_string(),
            if warn_kinds.is_empty() {
                "-".to_string()
            } else {
                warn_kinds.join(", ")
            },
        ]);
        jruns.push(json!({
            "run": label,
            "clean": report.is_clean(),
            "report": report,
        }));
    }
    let mut body = text::table(
        &["run", "launches", "errors", "warnings", "warning kinds"],
        &rows,
    );
    body.push_str(&format!(
        "\n{} run(s), {} error(s) total — errors are hazards, warnings are advisory lints\n",
        runs.len(),
        total_errors
    ));
    Artifact {
        name: "sanitize",
        title: format!("Sanitizer sweep over all kernels (dataset: {ds})"),
        text: body,
        json: Value::Array(jruns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_sweep_is_error_free_on_slashdot() {
        let a = sanitize("slashdot");
        for run in a.json.as_array().unwrap() {
            assert_eq!(
                run["report"]["errors"].as_array().unwrap().len(),
                0,
                "sanitizer errors in {}: {}",
                run["run"],
                run["report"]
            );
        }
        assert!(a.text.contains("eta bfs"));
        assert!(a.text.contains("cusha bfs"));
    }
}
