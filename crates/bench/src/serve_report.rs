//! The `serve` artifact: a served multi-tenant workload, reported with the
//! latency digests of [`crate::stats`], contrasting source batching against
//! an unbatched FIFO baseline on the *same* trace.
//!
//! This is the serving-layer counterpart of the paper's throughput tables:
//! the iBFS-style batched launch amortizes one topology read across up to
//! 32 concurrent queries, and here that shows up as makespan/throughput
//! wins over per-request dispatch.

use crate::stats::Summary;
use crate::suite::Suite;
use crate::tables::Artifact;
use crate::text;
use eta_graph::generate::{rmat, RmatConfig};
use eta_serve::{
    poisson_trace, Arrival, GraphRegistry, Policy, Priority, ServeConfig, ServeReport, Service,
    WorkloadConfig,
};
use serde_json::{json, Value};

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// JSON digest of one served run.
fn report_json(label: &str, report: &ServeReport) -> Value {
    json!({
        "mode": label,
        "completed": report.completed,
        "rejected": report.rejected,
        "makespan_ms": report.makespan_ns as f64 / 1e6,
        "throughput_qps": report.throughput_qps,
        "mean_batch_size": report.mean_batch_size(),
        "slo_attainment": report.slo_attainment(),
        "latency": Summary::of(&report.latencies_ns(None)),
        "latency_interactive": Summary::of(&report.latencies_ns(Some(Priority::Interactive))),
        "latency_batch": Summary::of(&report.latencies_ns(Some(Priority::Batch))),
        "devices": report.devices,
    })
}

/// Serves the same Poisson trace twice — batched priority scheduling vs
/// unbatched FIFO — and reports both.
pub fn serve(suite: Suite) -> Artifact {
    let (scale, edges, requests) = match suite {
        Suite::Quick => (10u32, 8_000usize, 120u32),
        Suite::Full => (12, 32_000, 240),
    };
    let mut registry = GraphRegistry::new();
    registry.insert("tenant-a", rmat(&RmatConfig::paper(scale, edges, 11)));
    registry.insert("tenant-b", rmat(&RmatConfig::paper(scale, edges, 12)));
    let names = vec!["tenant-a".to_string(), "tenant-b".to_string()];
    // A rate well past what per-request dispatch sustains, so requests queue
    // behind the pool and batching has a backlog to coalesce.
    let workload = WorkloadConfig {
        requests,
        seed: 7,
        rate_per_s: 20_000.0,
        arrival: Arrival::Poisson,
        interactive_fraction: 0.4,
        interactive_slo_ns: Some(2_000_000), // 2 ms
        batch_slo_ns: None,
        timeout_ns: None,
    };
    let trace = poisson_trace(&registry, &names, &workload);

    let base = ServeConfig {
        devices: 2,
        ..ServeConfig::default()
    };
    let batched = Service::new(&registry, base.clone()).run(&trace);
    let unbatched = Service::new(
        &registry,
        ServeConfig {
            max_batch: 1,
            policy: Policy::Fifo,
            ..base
        },
    )
    .run(&trace);

    let mode_row = |label: &str, r: &ServeReport| {
        let lat = Summary::of(&r.latencies_ns(None)).expect("completed requests");
        vec![
            label.to_string(),
            r.completed.to_string(),
            format!("{:.1}", r.mean_batch_size()),
            ms(r.makespan_ns),
            format!("{:.0}", r.throughput_qps),
            ms(lat.p50),
            ms(lat.p95),
            ms(lat.p99),
        ]
    };
    let mut body = text::table(
        &[
            "mode",
            "completed",
            "mean batch",
            "makespan (ms)",
            "qps",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
        ],
        &[
            mode_row("batched + priority", &batched),
            mode_row("unbatched FIFO", &unbatched),
        ],
    );
    let class_rows: Vec<Vec<String>> = [
        ("interactive", Some(Priority::Interactive)),
        ("batch", Some(Priority::Batch)),
    ]
    .iter()
    .filter_map(|(label, class)| {
        Summary::of(&batched.latencies_ns(*class)).map(|s| {
            vec![
                label.to_string(),
                s.count.to_string(),
                ms(s.p50),
                ms(s.p95),
                ms(s.p99),
            ]
        })
    })
    .collect();
    body.push_str("\nper-class latency (batched + priority):\n");
    body.push_str(&text::table(
        &["class", "count", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        &class_rows,
    ));
    if let Some(slo) = batched.slo_attainment() {
        body.push_str(&format!(
            "\ninteractive SLO ({} ms): {:.1}% met\n",
            workload.interactive_slo_ns.unwrap_or(0) / 1_000_000,
            slo * 100.0
        ));
    }
    // Guard the ratio: an empty trace (or one where every request is
    // rejected) has makespan 0, and 0/0 is NaN — which is not byte-stable
    // through float formatting. A degenerate run reports a neutral 1x.
    let makespan_speedup = if batched.makespan_ns == 0 {
        1.0
    } else {
        unbatched.makespan_ns as f64 / batched.makespan_ns as f64
    };
    body.push_str(&format!(
        "batching speedup (makespan): {makespan_speedup:.2}x\n"
    ));

    Artifact {
        name: "serve",
        title: format!("Serve: {requests} Poisson requests over 2 tenants, batched vs unbatched"),
        text: body,
        json: json!({
            "requests": requests,
            "seed": workload.seed,
            "batched": report_json("batched_priority", &batched),
            "unbatched": report_json("unbatched_fifo", &unbatched),
            "makespan_speedup": makespan_speedup,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_artifact_shows_a_batching_win() {
        let a = serve(Suite::Quick);
        assert_eq!(a.name, "serve");
        let speedup = a.json["makespan_speedup"].as_f64().unwrap();
        assert!(speedup > 1.0, "batching must win, got {speedup}x");
        assert_eq!(a.json["batched"]["completed"], 120u32);
        assert!(a.text.contains("per-class latency"));
    }
}
