//! The `shard` artifact: multi-device sharded traversal scaling on the
//! Table V graphs.
//!
//! For each graph and each of BFS/SSSP/SSWP/PageRank, the same query runs
//! on one device (the plain engine) and on 2- and 4-device groups
//! (`etagraph::sharded` over an NVLink-modeled `PeerFabric`). The report
//! shows simulated-time scaling plus the exchange volume the BSP frontier
//! merge moved per superstep — and, load-bearing for the whole subsystem,
//! a byte-identity count: every sharded label/rank vector must match the
//! single-device run exactly (`0 mismatches`), which is what makes the
//! speedup column a comparison of *the same answer*.
//!
//! The single-device baseline uses the sharded loop's normalized config
//! (in-core UDC, push-only) so the column measures device parallelism and
//! halo traffic, not unrelated single-device tricks the BSP loop forgoes.

use crate::suite::{self, Suite};
use crate::tables::Artifact;
use crate::text;
use eta_mem::PeerFabric;
use eta_shard::GraphPartition;
use eta_sim::{Device, GpuConfig};
use etagraph::pagerank::{self, PageRankConfig};
use etagraph::sharded::{run_sharded, run_sharded_pagerank};
use etagraph::{engine, Algorithm, EtaConfig, UdcMode};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Device counts of the scaling sweep; the first entry is the baseline.
pub const GROUP_SIZES: [u32; 2] = [2, 4];

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// One (graph, algorithm) cell of the sweep.
struct Cell {
    single_ns: u64,
    /// Per group size: (total_ns, supersteps, exchanged_bytes, mismatches).
    groups: Vec<(u32, u64, u32, u64, u64)>,
}

fn group_devices(n: u32) -> Vec<Device> {
    (0..n)
        .map(|_| Device::new(GpuConfig::default_preset()))
        .collect()
}

/// The config every run in this artifact uses — the sharded loop's own
/// normalization, applied to the baseline too (see module docs).
fn cfg() -> EtaConfig {
    EtaConfig {
        udc: UdcMode::InCore,
        direction_optimizing: false,
        ..EtaConfig::paper()
    }
}

fn mismatches(a: &[u32], b: &[u32]) -> u64 {
    a.iter().zip(b).filter(|(x, y)| x != y).count() as u64
}

/// Runs one traversal algorithm's sweep on one graph.
fn traversal_cell(
    name: &'static str,
    alg: Algorithm,
    parts: &mut BTreeMap<(bool, u32), GraphPartition>,
) -> Cell {
    let g = suite::graph_for(name, alg);
    let source = suite::dataset(name).source;
    let cfg = cfg();
    let mut dev = Device::new(GpuConfig::default_preset());
    // lint: allow(L-PANIC): suite graphs fit under UM; an OOM here is a bench bug
    let single = engine::run(&mut dev, &g, source, alg, &cfg).expect("baseline run");
    let mut groups = Vec::new();
    for devices in GROUP_SIZES {
        let part = parts
            .entry((alg.needs_weights(), devices))
            .or_insert_with(|| GraphPartition::vertex_range(&g, devices));
        let mut devs = group_devices(devices);
        let mut fabric = PeerFabric::nvlink(devices);
        let r = run_sharded(&mut devs, &mut fabric, part, source, alg, &cfg)
            // lint: allow(L-PANIC): no faults are injected; a sharded error is a bench bug
            .expect("sharded run");
        groups.push((
            devices,
            r.total_ns,
            r.supersteps,
            r.bytes_per_superstep(),
            mismatches(&single.labels, &r.labels),
        ));
    }
    Cell {
        single_ns: single.total_ns,
        groups,
    }
}

/// Runs the PageRank sweep on one graph (bit-exact f32 ranks). PageRank is
/// all-active and unweighted, so it shares BFS's cached topology.
fn pagerank_cell(name: &'static str, parts: &mut BTreeMap<(bool, u32), GraphPartition>) -> Cell {
    let g = suite::graph_for(name, Algorithm::Bfs);
    let pr_cfg = PageRankConfig {
        eta: cfg(),
        ..PageRankConfig::default()
    };
    let mut dev = Device::new(GpuConfig::default_preset());
    // lint: allow(L-PANIC): suite graphs fit under UM; an OOM here is a bench bug
    let single = pagerank::run(&mut dev, &g, &pr_cfg).expect("baseline pagerank");
    let single_bits: Vec<u32> = single.ranks.iter().map(|r| r.to_bits()).collect();
    let mut groups = Vec::new();
    for devices in GROUP_SIZES {
        let part = parts
            .entry((false, devices))
            .or_insert_with(|| GraphPartition::vertex_range(&g, devices));
        let mut devs = group_devices(devices);
        let mut fabric = PeerFabric::nvlink(devices);
        let r = run_sharded_pagerank(&mut devs, &mut fabric, part, &g, &pr_cfg)
            // lint: allow(L-PANIC): no faults are injected; a sharded error is a bench bug
            .expect("sharded pagerank");
        let bits: Vec<u32> = r.ranks.iter().map(|x| x.to_bits()).collect();
        groups.push((
            devices,
            r.total_ns,
            r.iterations,
            r.exchanged_bytes
                .checked_div(r.iterations as u64)
                .unwrap_or(0),
            mismatches(&single_bits, &bits),
        ));
    }
    Cell {
        single_ns: single.total_ns,
        groups,
    }
}

/// Table V graph list for a suite (the paper's four sampled datasets; the
/// quick suite keeps the two that build in seconds).
pub fn graphs_for(suite: Suite) -> Vec<&'static str> {
    match suite {
        Suite::Quick => vec!["livejournal", "orkut"],
        Suite::Full => vec!["livejournal", "orkut", "rmat22", "uk2005"],
    }
}

/// Generates the `shard` artifact.
pub fn shard(suite: Suite) -> Artifact {
    let names = graphs_for(suite);
    let algs: [(&str, Option<Algorithm>); 4] = [
        ("bfs", Some(Algorithm::Bfs)),
        ("sssp", Some(Algorithm::Sssp)),
        ("sswp", Some(Algorithm::Sswp)),
        ("pagerank", None),
    ];
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    let mut total_mismatches = 0u64;
    let mut comparisons = 0u64;
    for &name in &names {
        // Partitions are shared across the algorithms of one graph (weighted
        // and unweighted topologies partition separately).
        let mut parts: BTreeMap<(bool, u32), GraphPartition> = BTreeMap::new();
        for (alg_name, alg) in algs {
            let cell = match alg {
                Some(a) => traversal_cell(name, a, &mut parts),
                None => pagerank_cell(name, &mut parts),
            };
            let mut row = vec![name.to_string(), alg_name.to_string(), ms(cell.single_ns)];
            let mut jgroups = Vec::new();
            for &(devices, total_ns, supersteps, bytes_per_step, miss) in &cell.groups {
                let speedup = cell.single_ns as f64 / total_ns.max(1) as f64;
                row.push(ms(total_ns));
                row.push(format!("{speedup:.2}x"));
                total_mismatches += miss;
                comparisons += 1;
                jgroups.push(json!({
                    "devices": devices,
                    "total_ns": total_ns,
                    "speedup": speedup,
                    "supersteps": supersteps,
                    "exchanged_bytes_per_superstep": bytes_per_step,
                    "mismatches": miss,
                }));
            }
            // Exchange volume columns come from the widest group.
            // lint: allow(L-PANIC): GROUP_SIZES is a non-empty const; bench code may panic
            let last = cell.groups.last().expect("at least one group size");
            row.push(last.2.to_string());
            row.push(format!("{:.1}", last.3 as f64 / 1024.0));
            row.push(cell.groups.iter().map(|g| g.4).sum::<u64>().to_string());
            rows.push(row);
            jrows.push(json!({
                "dataset": name,
                "algorithm": alg_name,
                "single_total_ns": cell.single_ns,
                "groups": jgroups,
            }));
        }
    }
    let mut body = text::table(
        &[
            "dataset",
            "algorithm",
            "1 dev (ms)",
            "2 dev (ms)",
            "2-dev speedup",
            "4 dev (ms)",
            "4-dev speedup",
            "supersteps@4",
            "KB/superstep@4",
            "mismatches",
        ],
        &rows,
    );
    body.push_str(&format!(
        "\nbyte-identity: {total_mismatches} mismatches across {comparisons} sharded runs \
         (every label/rank vector compared element-wise against the single-device engine)\n"
    ));
    Artifact {
        name: "shard",
        title: "Shard: 1/2/4-device sharded traversal scaling (Table V graphs)".into(),
        text: body,
        json: json!({
            "graphs": names,
            "group_sizes": GROUP_SIZES,
            "comparisons": comparisons,
            "total_mismatches": total_mismatches,
            "rows": Value::Array(jrows),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_artifact_is_byte_identical_and_scales() {
        let a = shard(Suite::Quick);
        assert_eq!(a.name, "shard");
        assert_eq!(a.json["total_mismatches"], 0u64, "sharded answers differ");
        assert!(a.text.contains("0 mismatches"));
        // The two quick-suite graphs are the suite's largest; the 4-device
        // group must beat one device on both (mean over the four algorithms).
        for row in a.json["rows"].as_array().unwrap().chunks(4) {
            let ds = row[0]["dataset"].as_str().unwrap().to_string();
            let mean: f64 = row
                .iter()
                .map(|r| r["groups"][1]["speedup"].as_f64().unwrap())
                .sum::<f64>()
                / row.len() as f64;
            assert!(mean > 1.0, "{ds}: mean 4-device speedup {mean:.2}x <= 1");
        }
    }
}
