//! Latency/size distribution helpers shared by the paper tables and the
//! serving-layer report.
//!
//! One percentile definition for the whole repository: **nearest rank**.
//! For `N` sorted samples and percentile `p` in (0, 100], the value is the
//! `ceil(p/100 · N)`-th smallest sample (1-indexed). This is the definition
//! used by most latency-reporting systems: it always returns an observed
//! sample (never an interpolation), p100 is the maximum, and for `N = 1`
//! every percentile is that sample.

use serde::Serialize;

/// Nearest-rank percentile of `samples` (unsorted is fine; a sorted copy is
/// made internally).
///
/// Returns `None` when `samples` is empty — an empty distribution has no
/// percentiles, and silently returning 0 would read as "zero latency" —
/// and `None` when `p` is outside `(0, 100]` or non-finite. The latter
/// used to flow straight into the rank arithmetic, where `NaN.ceil() as
/// usize` is 0, the clamp pulled it to rank 1, and a caller asking for a
/// nonsense percentile got the *minimum sample* back as a plausible-looking
/// value (PR 9 regression).
pub fn percentile(samples: &[u64], p: f64) -> Option<u64> {
    if !p.is_finite() || p <= 0.0 || p > 100.0 {
        return None;
    }
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    Some(nearest_rank(&sorted, p))
}

/// Nearest-rank lookup on already-sorted samples.
fn nearest_rank(sorted: &[u64], p: f64) -> u64 {
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The standard latency digest: count, mean, min/max, and the three
/// percentiles every report in this repository quotes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl Summary {
    /// Digests `samples`; `None` when empty (see [`percentile`]).
    pub fn of(samples: &[u64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Some(Summary {
            count: sorted.len(),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: nearest_rank(&sorted, 50.0),
            p95: nearest_rank(&sorted, 95.0),
            p99: nearest_rank(&sorted, 99.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_the_textbook_example() {
        // The classic worked example: {15, 20, 35, 40, 50}.
        let v = [35, 20, 15, 50, 40];
        assert_eq!(percentile(&v, 5.0), Some(15));
        assert_eq!(percentile(&v, 30.0), Some(20));
        assert_eq!(percentile(&v, 40.0), Some(20));
        assert_eq!(percentile(&v, 50.0), Some(35));
        assert_eq!(percentile(&v, 100.0), Some(50));
    }

    #[test]
    fn edge_cases_one_sample_and_empty() {
        assert_eq!(percentile(&[7], 1.0), Some(7));
        assert_eq!(percentile(&[7], 99.0), Some(7));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn summary_digest_is_consistent() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50.5);
        assert_eq!((s.min, s.max), (1, 100));
        // With N = 100, nearest rank p is exactly the p-th smallest.
        assert_eq!((s.p50, s.p95, s.p99), (50, 95, 99));
    }

    /// Regression (PR 9): out-of-range and non-finite `p` must be `None`,
    /// never a plausible-looking sample. Before the guard, `NaN` ceiled to
    /// rank 0, the clamp pulled it to rank 1, and the caller got the
    /// minimum sample back.
    #[test]
    fn invalid_percentiles_are_none() {
        let v = [1u64, 2, 3];
        assert_eq!(percentile(&v, f64::NAN), None);
        assert_eq!(percentile(&v, f64::INFINITY), None);
        assert_eq!(percentile(&v, f64::NEG_INFINITY), None);
        assert_eq!(percentile(&v, 0.0), None);
        assert_eq!(percentile(&v, -5.0), None);
        assert_eq!(percentile(&v, 100.0 + f64::EPSILON * 100.0), None);
        assert_eq!(percentile(&v, 101.0), None);
        // The boundary itself stays valid: p100 is the maximum.
        assert_eq!(percentile(&v, 100.0), Some(3));
        // And invalid p on an empty distribution is still None, not a panic.
        assert_eq!(percentile(&[], f64::NAN), None);
    }
}
