//! Dataset caching and framework-cell execution for the report harness.

use eta_baselines::{
    run_fresh, CushaLike, EtaFramework, Framework, FrameworkError, GunrockLike, TigrLike,
};
use eta_graph::datasets::{self, Dataset};
use eta_graph::Csr;
use eta_sim::GpuConfig;
use etagraph::{Algorithm, RunResult};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Which datasets a report run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// slashdot / livejournal / orkut — seconds, used by tests and benches.
    Quick,
    /// All seven Table II analogs — the full reproduction.
    Full,
}

/// Dataset names for a suite, in Table II order.
pub fn datasets_for(suite: Suite) -> Vec<&'static str> {
    match suite {
        Suite::Quick => datasets::SMALL.to_vec(),
        Suite::Full => datasets::ALL.to_vec(),
    }
}

struct Cache {
    plain: BTreeMap<&'static str, Arc<Dataset>>,
    unweighted: BTreeMap<&'static str, Arc<Csr>>,
    weighted: BTreeMap<&'static str, Arc<Csr>>,
}

fn cache() -> &'static Mutex<Cache> {
    static CACHE: OnceLock<Mutex<Cache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(Cache {
            plain: BTreeMap::new(),
            unweighted: BTreeMap::new(),
            weighted: BTreeMap::new(),
        })
    })
}

/// Builds (once per process) and returns a dataset.
pub fn dataset(name: &'static str) -> Arc<Dataset> {
    // lint: allow(L-PANIC): a poisoned cache lock means a bench thread already panicked
    let mut c = cache().lock().unwrap();
    if let Some(d) = c.plain.get(name) {
        return d.clone();
    }
    let d = Arc::new(datasets::build(name));
    c.plain.insert(name, d.clone());
    d
}

/// The weighted topology of a dataset (cached).
pub fn weighted(name: &'static str) -> Arc<Csr> {
    {
        // lint: allow(L-PANIC): a poisoned cache lock means a bench thread already panicked
        let c = cache().lock().unwrap();
        if let Some(w) = c.weighted.get(name) {
            return w.clone();
        }
    }
    let d = dataset(name);
    let w = Arc::new(d.weighted());
    // lint: allow(L-PANIC): a poisoned cache lock means a bench thread already panicked
    cache().lock().unwrap().weighted.insert(name, w.clone());
    w
}

/// The graph appropriate for an algorithm (weighted iff needed), cached so
/// repeated Table III cells share one topology copy.
pub fn graph_for(name: &'static str, alg: Algorithm) -> Arc<Csr> {
    if alg.needs_weights() {
        return weighted(name);
    }
    {
        // lint: allow(L-PANIC): a poisoned cache lock means a bench thread already panicked
        let c = cache().lock().unwrap();
        if let Some(g) = c.unweighted.get(name) {
            return g.clone();
        }
    }
    let g = Arc::new(dataset(name).csr.clone());
    // lint: allow(L-PANIC): a poisoned cache lock means a bench thread already panicked
    cache().lock().unwrap().unweighted.insert(name, g.clone());
    g
}

/// One Table III cell.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    Ok(Box<RunResult>),
    Oom,
    Unsupported,
}

impl CellOutcome {
    /// `t_kernel/t_total` in the paper's milliseconds format.
    pub fn format(&self) -> String {
        match self {
            CellOutcome::Ok(r) => format!("{:.2}/{:.2}", r.kernel_ms(), r.total_ms()),
            CellOutcome::Oom => "O.O.M".to_string(),
            CellOutcome::Unsupported => "-".to_string(),
        }
    }

    pub fn total_ms(&self) -> Option<f64> {
        match self {
            CellOutcome::Ok(r) => Some(r.total_ms()),
            _ => None,
        }
    }

    pub fn result(&self) -> Option<&RunResult> {
        match self {
            CellOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// The five Table III rows per algorithm.
pub fn frameworks() -> Vec<Box<dyn Framework>> {
    vec![
        Box::new(CushaLike::default()),
        Box::new(GunrockLike::default()),
        Box::new(TigrLike::default()),
        Box::new(EtaFramework::paper()),
        Box::new(EtaFramework::without_ump()),
    ]
}

/// Runs one framework on one dataset/algorithm with the default GPU.
pub fn run_cell(fw: &dyn Framework, name: &'static str, alg: Algorithm) -> CellOutcome {
    let g = graph_for(name, alg);
    let d = dataset(name);
    match run_fresh(fw, GpuConfig::default_preset(), &g, d.source, alg) {
        Ok(r) => CellOutcome::Ok(Box::new(r)),
        Err(FrameworkError::Oom(_)) => CellOutcome::Oom,
        Err(FrameworkError::Unsupported(_)) => CellOutcome::Unsupported,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_members() {
        assert_eq!(datasets_for(Suite::Quick).len(), 3);
        assert_eq!(datasets_for(Suite::Full).len(), 7);
        assert_eq!(datasets_for(Suite::Full)[0], "slashdot");
    }

    #[test]
    fn dataset_cache_returns_same_instance() {
        let a = dataset("slashdot");
        let b = dataset("slashdot");
        assert!(Arc::ptr_eq(&a, &b));
        let wa = weighted("slashdot");
        let wb = weighted("slashdot");
        assert!(Arc::ptr_eq(&wa, &wb));
        assert!(wa.is_weighted());
    }

    #[test]
    fn run_cell_produces_numbers_on_small_dataset() {
        let fws = frameworks();
        for fw in &fws {
            let cell = run_cell(fw.as_ref(), "slashdot", Algorithm::Bfs);
            let s = cell.format();
            assert!(
                cell.total_ms().is_some(),
                "{} should run slashdot BFS, got {s}",
                fw.name()
            );
        }
    }

    #[test]
    fn cell_formats() {
        assert_eq!(CellOutcome::Oom.format(), "O.O.M");
        assert_eq!(CellOutcome::Unsupported.format(), "-");
    }
}
