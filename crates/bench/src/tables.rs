//! Generators for Tables I–V of the paper.

use crate::suite::{self, dataset, frameworks, run_cell, weighted, CellOutcome, Suite};
use crate::text;
use eta_graph::{analysis, datasets, EdgeList, GShards, Vst};
use eta_sim::GpuConfig;
use etagraph::{Algorithm, EtaConfig};
use serde_json::{json, Value};

/// A regenerated table or figure: human text plus machine-readable JSON.
pub struct Artifact {
    pub name: &'static str,
    pub title: String,
    pub text: String,
    pub json: Value,
}

/// Table I: theoretical space overhead and normalized transfer volume of
/// the candidate topology representations on the LiveJournal analog.
pub fn table1() -> Artifact {
    let d = dataset("livejournal");
    let g = &d.csr;
    let (e, v) = (g.m() as u64, g.n() as u64);

    let csr_bytes = g.topology_bytes();
    let gshard_bytes = GShards::from_csr(g, GShards::DEFAULT_WINDOW).topology_bytes();
    let edgelist_bytes = EdgeList::from_csr(g).topology_bytes();
    // The paper computes |N| with K = 10.
    let vst = Vst::from_csr(g, 10);
    let vst_bytes = vst.topology_bytes();
    let n_shadow = etagraph::udc::shadow_count_graph(g, 10);
    assert_eq!(
        n_shadow as usize,
        vst.n_virtual(),
        "UDC and VST agree on |N|"
    );

    let norm = |b: u64| b as f64 / csr_bytes as f64;
    let rows = [
        (
            "G-Shard",
            "2|E|".to_string(),
            gshard_bytes,
            norm(gshard_bytes),
        ),
        (
            "Edge List",
            "2|E|".to_string(),
            edgelist_bytes,
            norm(edgelist_bytes),
        ),
        (
            "VST",
            "|E| + 2|N| + 2|V|".to_string(),
            vst_bytes,
            norm(vst_bytes),
        ),
        ("CSR", "|E| + |V|".to_string(), csr_bytes, norm(csr_bytes)),
    ];
    let text_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, theory, bytes, norm)| {
            vec![
                name.to_string(),
                theory.clone(),
                text::human_bytes(*bytes),
                format!("{norm:.2}"),
            ]
        })
        .collect();
    let mut body = text::table(
        &["structure", "theory", "measured", "normalized vs CSR"],
        &text_rows,
    );
    body.push_str(&format!(
        "\nlivejournal analog: |V|={v}, |E|={e}, |N| (K=10) = {n_shadow}\n"
    ));
    Artifact {
        name: "table1",
        title: "Table I: topology space overhead, normalized to CSR (livejournal)".into(),
        text: body,
        json: json!({
            "V": v, "E": e, "N_k10": n_shadow,
            "rows": rows.iter().map(|(n, t, b, f)| json!({
                "structure": n, "theory": t, "bytes": b, "normalized": f
            })).collect::<Vec<_>>(),
        }),
    }
}

/// Table II: dataset inventory with %LCC.
pub fn table2(suite: Suite) -> Artifact {
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for name in suite::datasets_for(suite) {
        let d = dataset(name);
        let g = &d.csr;
        let comp = analysis::components(g);
        let size_bytes = g.topology_bytes();
        rows.push(vec![
            name.to_string(),
            d.analog_of.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            format!("{:.1}", g.avg_degree()),
            format!("{}", g.max_degree()),
            text::human_bytes(size_bytes),
            format!("{:.1}", comp.lcc_fraction * 100.0),
        ]);
        jrows.push(json!({
            "name": name, "analog_of": d.analog_of,
            "vertices": g.n(), "edges": g.m(),
            "avg_degree": g.avg_degree(), "max_degree": g.max_degree(),
            "size_bytes": size_bytes, "lcc_percent": comp.lcc_fraction * 100.0,
            "source": d.source,
        }));
    }
    Artifact {
        name: "table2",
        title: "Table II: scaled datasets".into(),
        text: text::table(
            &[
                "dataset",
                "analog of",
                "#vertices",
                "#edges",
                "avg.deg",
                "max.deg",
                "size",
                "%LCC",
            ],
            &rows,
        ),
        json: Value::Array(jrows),
    }
}

/// Table III: kernel/total runtimes of all frameworks × algorithms ×
/// datasets, with O.O.M cells.
pub fn table3(suite: Suite) -> Artifact {
    let names = suite::datasets_for(suite);
    let fws = frameworks();
    let mut rows = Vec::new();
    let mut jcells = Vec::new();
    for alg in Algorithm::ALL {
        for fw in &fws {
            let mut row = vec![alg.name().to_string(), fw.name().to_string()];
            for &ds in &names {
                let cell = run_cell(fw.as_ref(), ds, alg);
                row.push(cell.format());
                jcells.push(json!({
                    "algorithm": alg.name(),
                    "framework": fw.name(),
                    "dataset": ds,
                    "kernel_ms": cell.result().map(|r| r.kernel_ms()),
                    "total_ms": cell.total_ms(),
                    "iterations": cell.result().map(|r| r.iterations),
                    "outcome": match cell { CellOutcome::Ok(_) => "ok",
                                            CellOutcome::Oom => "oom",
                                            CellOutcome::Unsupported => "unsupported" },
                }));
            }
            rows.push(row);
        }
    }
    let mut headers: Vec<&str> = vec!["alg", "framework"];
    headers.extend(names.iter());
    Artifact {
        name: "table3",
        title: "Table III: runtime comparison (kernel ms / total ms)".into(),
        text: text::table(&headers, &rows),
        json: Value::Array(jcells),
    }
}

/// Table IV: EtaGraph activation percentage and iteration count per dataset
/// (BFS from each dataset's source).
pub fn table4(suite: Suite) -> Artifact {
    let names = suite::datasets_for(suite);
    let fw = eta_baselines::EtaFramework::paper();
    let mut act_row = vec!["Act. %".to_string()];
    let mut itr_row = vec!["Itr. #".to_string()];
    let mut jrows = Vec::new();
    for &ds in &names {
        let d = dataset(ds);
        let r = eta_baselines::run_fresh(
            &fw,
            GpuConfig::default_preset(),
            &d.csr,
            d.source,
            Algorithm::Bfs,
        )
        .expect("EtaGraph never OOMs");
        let act = r.activation_percent();
        act_row.push(if act < 0.1 {
            format!("{act:.2E}")
        } else {
            format!("{act:.0}")
        });
        itr_row.push(r.iterations.to_string());
        jrows.push(json!({
            "dataset": ds,
            "activation_percent": act,
            "iterations": r.iterations,
        }));
    }
    let mut headers = vec![""];
    headers.extend(names.iter());
    Artifact {
        name: "table4",
        title: "Table IV: EtaGraph activation and iteration details (BFS)".into(),
        text: text::table(&headers, &[act_row, itr_row]),
        json: Value::Array(jrows),
    }
}

/// Table V: migrated page/batch sizes with and without UM prefetch,
/// for SSSP on the four datasets the paper samples.
pub fn table5(suite: Suite) -> Artifact {
    let names: Vec<&'static str> = match suite {
        Suite::Quick => vec!["livejournal", "orkut"],
        Suite::Full => vec!["livejournal", "orkut", "rmat22", "uk2005"],
    };
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for prefetch in [false, true] {
        for &ds in &names {
            let g = weighted(ds);
            let d = dataset(ds);
            let cfg = if prefetch {
                EtaConfig::paper()
            } else {
                EtaConfig::without_ump()
            };
            let mut dev = eta_sim::Device::new(GpuConfig::default_preset());
            let r = etagraph::engine::run(&mut dev, &g, d.source, Algorithm::Sssp, &cfg)
                .expect("UM runs never OOM");
            let sizes = r.um_stats.all_sizes();
            let digest = crate::stats::Summary::of(&sizes);
            let (avg, min, max, p50, p95) = match &digest {
                Some(s) => (s.mean, s.min, s.max, s.p50, s.p95),
                None => (0.0, 0, 0, 0, 0),
            };
            let label = format!("{}{}", ds, if prefetch { "" } else { " w/o UMP" });
            rows.push(vec![
                label.clone(),
                format!("{:.1}", avg / 1024.0),
                format!("{:.0}", min as f64 / 1024.0),
                format!("{:.0}", p50 as f64 / 1024.0),
                format!("{:.0}", p95 as f64 / 1024.0),
                format!("{:.0}", max as f64 / 1024.0),
                sizes.len().to_string(),
            ]);
            jrows.push(json!({
                "dataset": ds, "prefetch": prefetch,
                "avg_kb": avg / 1024.0, "min_kb": min as f64 / 1024.0,
                "p50_kb": p50 as f64 / 1024.0, "p95_kb": p95 as f64 / 1024.0,
                "max_kb": max as f64 / 1024.0, "migrations": sizes.len(),
                "faults": r.um_stats.faults,
            }));
        }
    }
    Artifact {
        name: "table5",
        title: "Table V: size of migrated pages (SSSP)".into(),
        text: text::table(
            &[
                "configuration",
                "avg size (KB)",
                "min (KB)",
                "p50 (KB)",
                "p95 (KB)",
                "max (KB)",
                "#batches",
            ],
            &rows,
        ),
        json: Value::Array(jrows),
    }
}

/// Sanity: Table II's analogs should land near the paper's structural
/// targets; referenced from EXPERIMENTS.md.
pub fn paper_table2_targets() -> Vec<(&'static str, f64)> {
    datasets::ALL
        .iter()
        .zip([98.0, 99.0, 99.0, 81.0, 65.2, 70.8, 71.0])
        .map(|(&n, p)| (n, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_normalizations_match_paper_ordering() {
        let a = table1();
        let rows = a.json["rows"].as_array().unwrap();
        let get = |name: &str| {
            rows.iter().find(|r| r["structure"] == name).unwrap()["normalized"]
                .as_f64()
                .unwrap()
        };
        assert_eq!(get("CSR"), 1.0);
        // Paper: G-Shard/EdgeList 1.87, VST 1.32 on LiveJournal.
        assert!(
            (get("Edge List") - 1.87).abs() < 0.15,
            "{}",
            get("Edge List")
        );
        assert!((get("G-Shard") - 1.9).abs() < 0.2);
        assert!((get("VST") - 1.32).abs() < 0.2, "{}", get("VST"));
    }

    #[test]
    fn table2_quick_has_three_rows() {
        let a = table2(Suite::Quick);
        assert_eq!(a.json.as_array().unwrap().len(), 3);
        assert!(a.text.contains("slashdot"));
    }

    #[test]
    fn table4_quick_reports_activation() {
        let a = table4(Suite::Quick);
        let rows = a.json.as_array().unwrap();
        assert_eq!(rows.len(), 3);
        for r in rows {
            let act = r["activation_percent"].as_f64().unwrap();
            assert!(act > 50.0, "social analogs are mostly reachable: {act}");
            assert!(r["iterations"].as_u64().unwrap() >= 4);
        }
    }
}
