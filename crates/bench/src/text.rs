//! Fixed-width text tables and ASCII sparklines for the report output.

/// Renders rows as a fixed-width table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..widths[i] {
                out.push(' ');
            }
        }
        // No trailing spaces.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// A unicode bar chart scaled to `width` characters; one bar per value.
pub fn bars(values: &[f64], width: usize) -> Vec<String> {
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let n = ((v / max) * width as f64).round() as usize;
            "#".repeat(n.min(width))
        })
        .collect()
}

/// Formats a byte count as KB/MB with one decimal.
pub fn human_bytes(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} MB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.1} KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Renders a two-lane ASCII timeline (transfer vs compute) over `width`
/// character cells — the Fig. 4 "execution status" strip chart.
pub fn timeline_strip(spans: &[eta_mem::timeline::Span], width: usize) -> String {
    let end = spans.iter().map(|s| s.end).max().unwrap_or(0);
    if end == 0 {
        return String::from("(empty timeline)\n");
    }
    let mut xfer = vec![false; width];
    let mut comp = vec![false; width];
    for s in spans {
        let a = (s.start as u128 * width as u128 / end as u128) as usize;
        let b = ((s.end as u128 * width as u128).div_ceil(end as u128) as usize).min(width);
        let lane = if s.kind.is_transfer() {
            &mut xfer
        } else {
            &mut comp
        };
        for cell in lane[a.min(width - 1)..b].iter_mut() {
            *cell = true;
        }
    }
    let render =
        |cells: &[bool]| -> String { cells.iter().map(|&b| if b { '#' } else { '.' }).collect() };
    format!(
        "transfer |{}|\ncompute  |{}|  (0 .. {:.3} ms)\n",
        render(&xfer),
        render(&comp),
        end as f64 / 1e6
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name  22"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn bars_scale_to_max() {
        let b = bars(&[1.0, 2.0, 4.0], 8);
        assert_eq!(b[2].len(), 8);
        assert_eq!(b[1].len(), 4);
        assert_eq!(b[0].len(), 2);
    }

    #[test]
    fn timeline_strip_marks_busy_cells() {
        use eta_mem::timeline::{Span, SpanKind};
        let spans = vec![
            Span {
                kind: SpanKind::CopyH2D,
                start: 0,
                end: 50,
                bytes: 1,
            },
            Span {
                kind: SpanKind::Compute,
                start: 50,
                end: 100,
                bytes: 0,
            },
        ];
        let strip = timeline_strip(&spans, 10);
        let lines: Vec<&str> = strip.lines().collect();
        assert!(lines[0].starts_with("transfer |#####"));
        assert!(lines[0].contains("....|"), "{strip}");
        assert!(lines[1].contains(".....#####"), "{strip}");
    }

    #[test]
    fn empty_timeline_renders() {
        assert!(timeline_strip(&[], 10).contains("empty"));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(44 * 1024), "44.0 KB");
        assert_eq!(human_bytes(2 * 1024 * 1024), "2.0 MB");
    }
}
