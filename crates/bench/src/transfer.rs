//! The `transfer` artifact: the transfer backends raced head-to-head.
//!
//! For each Table V graph plus a deliberately *sparse* web analog (an
//! island-sourced traversal that touches a sliver of the topology), BFS and
//! SSSP run under all four host→device routings: demand paging, upfront
//! prefetch, zero-copy (direct host reads, no migration), and the adaptive
//! per-page-group policy (`eta_mem::adaptive`). The report shows simulated
//! time per mode plus a label byte-identity count — routing must change
//! *when bytes move*, never *what the traversal computes*.
//!
//! The load-bearing result is the crossover the adaptive policy exists to
//! exploit: dense traversals (the Table V graphs, which eventually touch
//! most of the CSR) are fastest under prefetch, while the sparse analog is
//! fastest under zero-copy or demand (32 B sectors beat 4 KiB page
//! migrations plus fault service when most of each page would go unused).
//! The adaptive policy, which starts every group on demand paging and
//! re-decides per iteration from observed density plus the engine's
//! announced frontier volume, must land within 2% of the best static
//! mode on every cell (on most cells it lands within 0.1%, and often
//! *under* the best static mode: escalation skips static prefetch's
//! pre-traversal stall; the 2% headroom exists for uk2005, where demand
//! narrowly beats prefetch because prefetch ships never-touched pages,
//! and adaptive, having correctly escalated, inherits that gap) and
//! strictly under **every** static mode on the sweep's total simulated
//! time — that is what "hybrid transfer management" buys: no
//! per-workload mode flag, none of any static mode's worst case.

use crate::suite::{self, Suite};
use crate::tables::Artifact;
use crate::text;
use eta_graph::generate::{web, WebConfig};
use eta_graph::Csr;
use eta_sim::{Device, GpuConfig};
use etagraph::{engine, Algorithm, EtaConfig, TransferMode};
use serde_json::{json, Value};

/// The raced modes, in column order. `explicit` is excluded: Table III
/// already covers it, and it OOMs by design on the larger graphs.
pub const MODES: [TransferMode; 4] = [
    TransferMode::Unified,
    TransferMode::UnifiedPrefetch,
    TransferMode::ZeroCopy,
    TransferMode::Adaptive,
];

/// The sparse web analog: an island source in a low-connectivity web graph,
/// so the traversal reaches only the island community and the topology is
/// touched at a few sectors per page — zero-copy territory.
pub fn sparse_web() -> (Csr, u32) {
    web(&WebConfig {
        vertices: 60_000,
        edges: 1_200_000,
        communities: 24,
        lcc_fraction: 0.7,
        source_island: Some(60),
        seed: 0x2066,
    })
}

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// One (graph, algorithm) row: simulated ns per mode, in [`MODES`] order,
/// plus label mismatches of each mode against the demand-paging run.
struct Row {
    dataset: &'static str,
    algorithm: &'static str,
    ns: Vec<u64>,
    mismatches: u64,
    /// Adaptive run's final decision mix:
    /// `(demand, prefetch, zero_copy, escalated_regions)`.
    groups: (u64, u64, u64, u64),
}

fn race(name: &'static str, g: &Csr, source: u32, alg: Algorithm) -> Row {
    let mut ns = Vec::new();
    let mut mismatches = 0u64;
    let mut baseline: Option<Vec<u32>> = None;
    let mut groups = (0u64, 0u64, 0u64, 0u64);
    for mode in MODES {
        let cfg = EtaConfig {
            transfer: mode,
            ..EtaConfig::paper()
        };
        let mut dev = Device::new(GpuConfig::default_preset());
        // lint: allow(L-PANIC): every raced mode is host-backed (no OOM); an error is a bench bug
        let r = engine::run(&mut dev, g, source, alg, &cfg).expect("race run");
        ns.push(r.total_ns);
        if mode == TransferMode::Adaptive {
            groups = dev.mem.adaptive_totals().unwrap_or_default();
        }
        match &baseline {
            None => baseline = Some(r.labels),
            Some(b) => mismatches += b.iter().zip(&r.labels).filter(|(x, y)| x != y).count() as u64,
        }
    }
    Row {
        dataset: name,
        algorithm: alg.name(),
        ns,
        mismatches,
        groups,
    }
}

/// Graphs of the sweep: the Table V list (dense traversals) — the sparse
/// analog is appended by [`transfer`] itself.
pub fn graphs_for(suite: Suite) -> Vec<&'static str> {
    crate::shard::graphs_for(suite)
}

/// Generates the `transfer` artifact.
pub fn transfer(suite: Suite) -> Artifact {
    let names = graphs_for(suite);
    let algs = [Algorithm::Bfs, Algorithm::Sssp];
    let mut rows: Vec<Row> = Vec::new();
    for &name in &names {
        for alg in algs {
            let g = suite::graph_for(name, alg);
            let source = suite::dataset(name).source;
            rows.push(race(name, &g, source, alg));
        }
    }
    let (sparse, sparse_source) = sparse_web();
    let sparse_weighted = sparse.clone().with_random_weights(0x2066 ^ 0x77, 32);
    for alg in algs {
        let g = if alg.needs_weights() {
            &sparse_weighted
        } else {
            &sparse
        };
        rows.push(race("web-sparse", g, sparse_source, alg));
    }

    // Verdicts. "Static" excludes adaptive; "best static" is the per-row
    // minimum the adaptive policy has to meet.
    let mut trows = Vec::new();
    let mut jrows = Vec::new();
    let mut total_mismatches = 0u64;
    let mut adaptive_wins = 0usize;
    let mut adaptive_within = 0usize;
    let mut adaptive_tenth = 0usize;
    let mut dense_prefetch_wins = 0usize;
    let mut dense_cells = 0usize;
    let mut sparse_zerocopy_wins = 0usize;
    let mut sparse_cells = 0usize;
    let mut totals = [0u64; 4];
    for row in &rows {
        let (demand, prefetch, zerocopy, adaptive) = (row.ns[0], row.ns[1], row.ns[2], row.ns[3]);
        for (t, &v) in totals.iter_mut().zip(&row.ns) {
            *t += v;
        }
        let best_static = demand.min(prefetch).min(zerocopy);
        let best_name = MODES[..3]
            .iter()
            .zip(&row.ns)
            .min_by_key(|(_, &t)| t)
            .map(|(m, _)| m.as_str())
            // lint: allow(L-PANIC): MODES is a non-empty const; bench code may panic
            .expect("three static modes");
        let sparse = row.dataset == "web-sparse";
        if sparse {
            sparse_cells += 1;
            sparse_zerocopy_wins += usize::from(zerocopy < prefetch);
        } else {
            dense_cells += 1;
            dense_prefetch_wins += usize::from(prefetch < zerocopy);
        }
        adaptive_wins += usize::from(adaptive <= best_static);
        // Within-tolerance: escalation pays demand faults for the one or
        // two pre-wave iterations, so a cell can land a few hundred ns
        // over static prefetch — 0.1% is an order above that residue. The
        // gate itself is 2%: on uk2005, demand narrowly beats prefetch
        // (prefetch ships pages the traversal never touches), so adaptive,
        // having correctly escalated into prefetch, lands ~1.5% over the
        // best static. That is the policy working as designed, not a
        // regression, and the gate must not flag it.
        adaptive_tenth += usize::from(adaptive <= best_static + best_static / 1000);
        adaptive_within += usize::from(adaptive <= best_static + best_static / 50);
        total_mismatches += row.mismatches;
        trows.push(vec![
            row.dataset.to_string(),
            row.algorithm.to_string(),
            ms(demand),
            ms(prefetch),
            ms(zerocopy),
            ms(adaptive),
            best_name.to_string(),
            format!("{:.2}x", best_static as f64 / adaptive.max(1) as f64),
            row.mismatches.to_string(),
        ]);
        jrows.push(json!({
            "dataset": row.dataset,
            "algorithm": row.algorithm,
            "demand_ns": demand,
            "prefetch_ns": prefetch,
            "zerocopy_ns": zerocopy,
            "adaptive_ns": adaptive,
            "best_static": best_name,
            "adaptive_vs_best_static": best_static as f64 / adaptive.max(1) as f64,
            "adaptive_groups": {
                "demand": row.groups.0,
                "prefetch": row.groups.1,
                "zerocopy": row.groups.2,
                "escalated_regions": row.groups.3,
            },
            "mismatches": row.mismatches,
        }));
    }
    let crossover = dense_prefetch_wins == dense_cells && sparse_zerocopy_wins == sparse_cells;
    let adaptive_within_tolerance = adaptive_within == rows.len();
    // The headline: one policy, strictly less total simulated time than
    // every static mode over the whole sweep.
    let [demand_total, prefetch_total, zerocopy_total, adaptive_total] = totals;
    let best_static_total = demand_total.min(prefetch_total).min(zerocopy_total);
    let adaptive_beats_every_static = adaptive_total < best_static_total;

    let mut body = text::table(
        &[
            "dataset",
            "algorithm",
            "demand (ms)",
            "prefetch (ms)",
            "zerocopy (ms)",
            "adaptive (ms)",
            "best static",
            "adaptive vs best",
            "mismatches",
        ],
        &trows,
    );
    body.push_str(&format!(
        "\ncrossover: prefetch fastest static on {dense_prefetch_wins}/{dense_cells} dense cells, \
         zero-copy fastest static on {sparse_zerocopy_wins}/{sparse_cells} sparse cells\n\
         adaptive at-or-under the best static mode on {adaptive_wins}/{} cells, \
         within 2% on {adaptive_within}/{} (within 0.1% on {adaptive_tenth})\n\
         sweep totals (ms): demand {} / prefetch {} / zerocopy {} / adaptive {} — \
         adaptive {} every static mode\n\
         byte-identity: {total_mismatches} label mismatches across every mode pair \
         (routing changes when bytes move, never the answer)\n",
        rows.len(),
        rows.len(),
        ms(demand_total),
        ms(prefetch_total),
        ms(zerocopy_total),
        ms(adaptive_total),
        if adaptive_beats_every_static {
            "beats"
        } else {
            "does NOT beat"
        },
    ));
    Artifact {
        name: "transfer",
        title: "Transfer: demand / prefetch / zero-copy / adaptive, raced (Table V + sparse web)"
            .into(),
        text: body,
        json: json!({
            "graphs": names,
            "modes": MODES.iter().map(|m| m.as_str()).collect::<Vec<_>>(),
            "total_mismatches": total_mismatches,
            "crossover_observed": crossover,
            "adaptive_within_tolerance": adaptive_within_tolerance,
            "adaptive_within_tenth_pct": adaptive_tenth as u64,
            "adaptive_beats_every_static": adaptive_beats_every_static,
            "adaptive_wins": adaptive_wins as u64,
            "cells": rows.len() as u64,
            "totals_ns": {
                "demand": demand_total,
                "prefetch": prefetch_total,
                "zerocopy": zerocopy_total,
                "adaptive": adaptive_total,
            },
            "rows": Value::Array(jrows),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_artifact_shows_crossover_and_adaptive_wins() {
        let a = transfer(Suite::Quick);
        assert_eq!(a.name, "transfer");
        assert_eq!(
            a.json["total_mismatches"], 0u64,
            "labels must not depend on routing"
        );
        assert_eq!(a.json["crossover_observed"], true, "{}", a.text);
        assert_eq!(a.json["adaptive_within_tolerance"], true, "{}", a.text);
        assert_eq!(a.json["adaptive_beats_every_static"], true, "{}", a.text);
    }
}
