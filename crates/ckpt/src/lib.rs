//! Iteration-granular checkpoint/resume for simulated traversals.
//!
//! A long BFS on oversubscribed Unified Memory can spend most of its
//! simulated wall-clock migrating pages; a device fault near the end throws
//! all of it away if the only recovery is restart-from-scratch. This crate
//! is the training-stack answer scaled down to traversal queries: snapshot
//! the engine state at iteration boundaries, and let the serving layer
//! resume from the last good frontier — on the same device after a
//! re-probe, or migrated to a healthy one.
//!
//! The crate is deliberately engine-agnostic: it defines *what a checkpoint
//! is* ([`Checkpoint`], [`CkptState`]), *when to take one* ([`CkptPolicy`]),
//! *where in-flight snapshots live* ([`CkptSink`] per run, [`CkptStore`]
//! across runs), and *how a resume is validated* ([`Checkpoint::validate`]
//! against a graph-content digest). The engine hooks that fill these types
//! in live in `eta-core`; the ladder that consumes them lives in
//! `eta-serve`.
//!
//! Everything here is plain host-side data on the simulated clock — no
//! wall time, no I/O — so checkpointed runs stay byte-deterministic.

use serde::Serialize;

/// Simulated nanoseconds (mirrors `eta_sim::Ns` without the dependency).
pub type Ns = u64;

/// Why a checkpoint could not be resumed. `Copy` so it can ride inside
/// `QueryError` (which is `Copy`) without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptError {
    /// The checkpoint was taken against a different graph epoch: the
    /// content digest of the resident graph does not match.
    GraphDigest { expected: u64, actual: u64 },
    /// The vertex count baked into the checkpoint does not match the
    /// graph it is being resumed against.
    VertexCount { expected: u32, actual: u32 },
    /// The checkpoint carries state for a different algorithm or batch
    /// shape than the resuming run expects.
    StateShape,
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::GraphDigest { expected, actual } => write!(
                f,
                "checkpoint graph digest mismatch (checkpoint {expected:#018x}, graph {actual:#018x})"
            ),
            CkptError::VertexCount { expected, actual } => write!(
                f,
                "checkpoint vertex count mismatch (checkpoint {expected}, graph {actual})"
            ),
            CkptError::StateShape => {
                write!(f, "checkpoint state does not match the resuming run's shape")
            }
        }
    }
}

impl std::error::Error for CkptError {}

/// Algorithm-specific engine state captured at an iteration boundary.
///
/// Each variant holds exactly the words a resume needs to reproduce the
/// uninterrupted run byte-for-byte; anything recomputable deterministically
/// from the graph (e.g. PageRank's static UDC queue) is *not* stored.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptState {
    /// `multi_bfs` (iBFS) state: per-vertex fresh/joint reach masks, the
    /// packed per-vertex level words, and the active frontier *in queue
    /// order* (order is what makes the resumed propagation byte-identical).
    MultiBfs {
        sources: Vec<u32>,
        fresh: Vec<u32>,
        joint: Vec<u32>,
        levels: Vec<u32>,
        frontier: Vec<u32>,
    },
    /// Single-source `Engine` state: labels, visit tags, and the frontier.
    SingleSource {
        source: u32,
        labels: Vec<u32>,
        tags: Vec<u32>,
        frontier: Vec<u32>,
    },
    /// PageRank state: rank words (`f32::to_bits`) after a completed
    /// apply step; `next_ranks` is zero at every boundary by construction.
    PageRank { ranks_bits: Vec<u32> },
}

impl CkptState {
    /// Short tag for profiling/report output.
    pub fn kind(&self) -> &'static str {
        match self {
            CkptState::MultiBfs { .. } => "multi_bfs",
            CkptState::SingleSource { .. } => "single_source",
            CkptState::PageRank { .. } => "pagerank",
        }
    }

    /// Number of 32-bit words in the snapshot payload (sizing/accounting).
    pub fn payload_words(&self) -> u64 {
        let len = |v: &Vec<u32>| v.len() as u64;
        match self {
            CkptState::MultiBfs {
                sources,
                fresh,
                joint,
                levels,
                frontier,
            } => len(sources) + len(fresh) + len(joint) + len(levels) + len(frontier),
            CkptState::SingleSource {
                labels,
                tags,
                frontier,
                ..
            } => 1 + len(labels) + len(tags) + len(frontier),
            CkptState::PageRank { ranks_bits } => len(ranks_bits),
        }
    }
}

/// One snapshot of a run at an iteration boundary on the simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Content digest of the graph epoch the snapshot was taken against
    /// (see [`digest_words`]); a resume against a different graph is a
    /// named error, not silent corruption.
    pub graph_digest: u64,
    /// Vertex count of that graph, double-checked on resume.
    pub n: u32,
    /// Completed iterations at the time of the snapshot. A resume starts
    /// the next iteration from here; this is also the `work_saved` figure.
    pub iteration: u32,
    /// Simulated-clock cursor at snapshot time. The kernels themselves are
    /// PRNG-free, so the clock cursor is the only "random state" a resume
    /// needs to reason about (and the resumed run gets its *own* clock —
    /// this field is provenance, not replay input).
    pub taken_at_ns: Ns,
    /// Algorithm-specific payload.
    pub state: CkptState,
}

impl Checkpoint {
    /// Validates the snapshot against the graph it is about to resume on.
    pub fn validate(&self, graph_digest: u64, n: u32) -> Result<(), CkptError> {
        if self.graph_digest != graph_digest {
            return Err(CkptError::GraphDigest {
                expected: self.graph_digest,
                actual: graph_digest,
            });
        }
        if self.n != n {
            return Err(CkptError::VertexCount {
                expected: self.n,
                actual: n,
            });
        }
        Ok(())
    }

    /// Payload size in 32-bit words.
    pub fn payload_words(&self) -> u64 {
        self.state.payload_words()
    }
}

/// When to take checkpoints: every `interval` completed iterations.
/// `interval == 0` disables checkpointing entirely (and must be byte-inert:
/// a run with a disabled policy is identical to one with no policy at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CkptPolicy {
    pub interval: u32,
}

impl CkptPolicy {
    pub fn every(interval: u32) -> Self {
        CkptPolicy { interval }
    }

    pub fn disabled() -> Self {
        CkptPolicy { interval: 0 }
    }

    pub fn is_enabled(&self) -> bool {
        self.interval > 0
    }

    /// Is a snapshot due after `iteration` completed iterations?
    pub fn due(&self, iteration: u32) -> bool {
        self.interval > 0 && iteration > 0 && iteration.is_multiple_of(self.interval)
    }
}

/// Per-run checkpoint receiver: keeps the most recent snapshot plus
/// counters for the report. The engine writes into this; after a faulted
/// run the caller takes the survivor out and hands it to the store.
#[derive(Debug, Default)]
pub struct CkptSink {
    pub policy: CkptPolicy,
    last: Option<Checkpoint>,
    /// Snapshots taken over the sink's lifetime.
    pub taken: u32,
    /// Total payload words across all snapshots taken (accounting).
    pub words: u64,
}

impl Default for CkptPolicy {
    fn default() -> Self {
        CkptPolicy::disabled()
    }
}

impl CkptSink {
    pub fn every(interval: u32) -> Self {
        CkptSink {
            policy: CkptPolicy::every(interval),
            last: None,
            taken: 0,
            words: 0,
        }
    }

    /// Stores a snapshot, replacing any previous one (only the latest
    /// boundary matters for resume).
    pub fn store(&mut self, ck: Checkpoint) {
        self.taken += 1;
        self.words += ck.payload_words();
        self.last = Some(ck);
    }

    /// The most recent snapshot, if any (non-consuming view).
    pub fn last(&self) -> Option<&Checkpoint> {
        self.last.as_ref()
    }

    /// Takes the most recent snapshot out of the sink.
    pub fn take(&mut self) -> Option<Checkpoint> {
        self.last.take()
    }
}

/// Cross-run checkpoint store, keyed by opaque handle. The serving layer
/// parks the last good snapshot of a faulted batch here until the resume
/// dispatches (or the riders exhaust their retry budget).
#[derive(Debug, Default)]
pub struct CkptStore {
    items: std::collections::BTreeMap<u64, Checkpoint>,
    next_key: u64,
    /// Lifetime counters for reports.
    pub stored: u64,
    pub resumed: u64,
}

impl CkptStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks a snapshot; returns its handle.
    pub fn put(&mut self, ck: Checkpoint) -> u64 {
        let key = self.next_key;
        self.next_key += 1;
        self.stored += 1;
        self.items.insert(key, ck);
        key
    }

    /// Non-consuming view of a parked snapshot.
    pub fn get(&self, key: u64) -> Option<&Checkpoint> {
        self.items.get(&key)
    }

    /// Removes a parked snapshot for resume (or for abandonment).
    pub fn take(&mut self, key: u64) -> Option<Checkpoint> {
        let ck = self.items.remove(&key);
        if ck.is_some() {
            self.resumed += 1;
        }
        ck
    }

    /// Drops a parked snapshot without counting it as resumed.
    pub fn discard(&mut self, key: u64) -> Option<Checkpoint> {
        self.items.remove(&key)
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Borrowed checkpoint control handed into an engine run: an optional sink
/// to emit into, an optional snapshot to resume from, and the digest of the
/// graph actually resident on the device (for validation). `CkptCtl::off()`
/// is the byte-inert default every legacy entry point uses.
#[derive(Debug, Default)]
pub struct CkptCtl<'a> {
    pub sink: Option<&'a mut CkptSink>,
    pub resume: Option<&'a Checkpoint>,
    pub graph_digest: u64,
}

impl<'a> CkptCtl<'a> {
    /// No checkpointing, no resume: the run must be byte-identical to one
    /// compiled before this crate existed.
    pub fn off() -> Self {
        CkptCtl {
            sink: None,
            resume: None,
            graph_digest: 0,
        }
    }

    pub fn with_sink(sink: &'a mut CkptSink, graph_digest: u64) -> Self {
        CkptCtl {
            sink: Some(sink),
            resume: None,
            graph_digest,
        }
    }

    pub fn resuming(sink: &'a mut CkptSink, resume: &'a Checkpoint, graph_digest: u64) -> Self {
        CkptCtl {
            sink: Some(sink),
            resume: Some(resume),
            graph_digest,
        }
    }
}

/// FNV-1a (64-bit) over a sequence of word slices, length-prefixed so that
/// `[[1],[2]]` and `[[1,2]]` digest differently. Used both for graph-epoch
/// digests (`Csr::digest`) and for result digests in differential tests.
pub fn digest_words(parts: &[&[u32]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |w: u64| {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for part in parts {
        eat(part.len() as u64);
        for &w in part.iter() {
            eat(w as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iter: u32) -> Checkpoint {
        Checkpoint {
            graph_digest: 0xabcd,
            n: 4,
            iteration: iter,
            taken_at_ns: 100 * iter as u64,
            state: CkptState::MultiBfs {
                sources: vec![0, 1],
                fresh: vec![1, 0, 0, 2],
                joint: vec![1, 0, 0, 2],
                levels: vec![0; 8],
                frontier: vec![0, 3],
            },
        }
    }

    #[test]
    fn policy_due_only_at_multiples_and_never_when_disabled() {
        let p = CkptPolicy::every(3);
        assert!(!p.due(0), "iteration 0 is the initial state, not progress");
        assert!(!p.due(1));
        assert!(p.due(3));
        assert!(!p.due(4));
        assert!(p.due(6));
        let off = CkptPolicy::disabled();
        assert!(!off.is_enabled());
        for it in 0..10 {
            assert!(!off.due(it));
        }
    }

    #[test]
    fn validate_names_each_mismatch() {
        let ck = sample(2);
        assert!(ck.validate(0xabcd, 4).is_ok());
        assert_eq!(
            ck.validate(0x1234, 4),
            Err(CkptError::GraphDigest {
                expected: 0xabcd,
                actual: 0x1234
            })
        );
        assert_eq!(
            ck.validate(0xabcd, 5),
            Err(CkptError::VertexCount {
                expected: 4,
                actual: 5
            })
        );
        let msg = ck.validate(0x1234, 4).unwrap_err().to_string();
        assert!(msg.contains("digest mismatch"), "{msg}");
    }

    #[test]
    fn sink_keeps_only_the_latest_snapshot_but_counts_all() {
        let mut sink = CkptSink::every(2);
        assert!(sink.policy.is_enabled());
        sink.store(sample(2));
        sink.store(sample(4));
        assert_eq!(sink.taken, 2);
        assert_eq!(sink.words, 2 * sample(2).payload_words());
        assert_eq!(sink.last().unwrap().iteration, 4);
        let got = sink.take().unwrap();
        assert_eq!(got.iteration, 4);
        assert!(sink.take().is_none(), "take drains the sink");
    }

    #[test]
    fn store_handles_are_distinct_and_take_counts_resumes() {
        let mut store = CkptStore::new();
        let a = store.put(sample(1));
        let b = store.put(sample(2));
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        assert_eq!(store.take(a).unwrap().iteration, 1);
        assert_eq!(store.resumed, 1);
        assert!(store.take(a).is_none(), "a handle is single-use");
        assert_eq!(store.resumed, 1, "missing handles do not count as resumes");
        assert_eq!(store.discard(b).unwrap().iteration, 2);
        assert_eq!(store.resumed, 1, "discard is not a resume");
        assert!(store.is_empty());
    }

    #[test]
    fn payload_words_counts_every_array() {
        let ck = sample(1);
        // 2 sources + 4 fresh + 4 joint + 8 levels + 2 frontier.
        assert_eq!(ck.payload_words(), 20);
        let pr = CkptState::PageRank {
            ranks_bits: vec![0; 7],
        };
        assert_eq!(pr.payload_words(), 7);
        assert_eq!(pr.kind(), "pagerank");
        let ss = CkptState::SingleSource {
            source: 0,
            labels: vec![0; 3],
            tags: vec![0; 3],
            frontier: vec![0],
        };
        assert_eq!(ss.payload_words(), 1 + 3 + 3 + 1);
    }

    #[test]
    fn digest_is_length_prefixed_and_order_sensitive() {
        assert_eq!(digest_words(&[&[1, 2]]), digest_words(&[&[1, 2]]));
        assert_ne!(digest_words(&[&[1, 2]]), digest_words(&[&[2, 1]]));
        assert_ne!(digest_words(&[&[1], &[2]]), digest_words(&[&[1, 2]]));
        assert_ne!(digest_words(&[&[]]), digest_words(&[]));
    }

    #[test]
    fn ctl_off_is_fully_disabled() {
        let ctl = CkptCtl::off();
        assert!(ctl.sink.is_none());
        assert!(ctl.resume.is_none());
    }
}
