//! Minimal flag parser: `--name value` pairs plus positional arguments.
//!
//! Hand-rolled rather than a dependency: the CLI has a dozen flags and the
//! workspace policy is to keep the dependency set to the approved list.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Parsed command-line arguments: positionals in order, flags by name.
///
/// Every `get`/`switch` lookup records the flag name; after a command has
/// read its configuration, [`Args::ensure_consumed`] rejects anything the
/// user passed that nothing looked at — typos and unsupported flags fail
/// loudly instead of being silently ignored.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    /// Ordered map so "unknown flag(s)" messages list names in a stable
    /// order regardless of how the user passed them.
    flags: BTreeMap<String, String>,
    /// Flags given without a value (`--json`).
    switches: Vec<String>,
    consumed: RefCell<BTreeSet<String>>,
}

/// Parsing failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a token stream. A token starting with `--` either consumes
    /// the next token as its value or, when the next token is also a flag
    /// (or absent), becomes a switch.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Args {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                match it.next_if(|next| !next.starts_with("--")) {
                    Some(value) => {
                        out.flags.insert(name.to_string(), value);
                    }
                    None => out.switches.push(name.to_string()),
                }
            } else {
                out.positional.push(tok);
            }
        }
        out
    }

    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positional.get(idx).map(String::as_str)
    }

    pub fn require_positional(&self, idx: usize, what: &str) -> Result<&str, ArgError> {
        self.positional(idx)
            .ok_or_else(|| ArgError(format!("missing {what}")))
    }

    pub fn get(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().insert(name.to_string());
        self.flags.get(name).map(String::as_str)
    }

    pub fn switch(&self, name: &str) -> bool {
        self.consumed.borrow_mut().insert(name.to_string());
        self.switches.iter().any(|s| s == name)
    }

    /// Errors if any flag or switch the user passed was never read.
    pub fn ensure_consumed(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        let mut unknown: Vec<&str> = self
            .flags
            .keys()
            .map(String::as_str)
            .chain(self.switches.iter().map(String::as_str))
            .filter(|name| !consumed.contains(*name))
            .collect();
        unknown.sort_unstable();
        unknown.dedup();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgError(format!(
                "unknown flag(s): {}",
                unknown
                    .iter()
                    .map(|n| format!("--{n}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )))
        }
    }

    /// Typed flag with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Typed flag that must be present.
    pub fn require_parse<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let v = self
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required --{name}")))?;
        v.parse()
            .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse("run graph.etag --alg bfs --source 5 --json");
        assert_eq!(a.positional(0), Some("run"));
        assert_eq!(a.positional(1), Some("graph.etag"));
        assert_eq!(a.get("alg"), Some("bfs"));
        assert_eq!(a.get_parse::<u32>("source", 0).unwrap(), 5);
        assert!(a.switch("json"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse("generate rmat --scale 10");
        assert_eq!(a.get_parse::<u32>("scale", 0).unwrap(), 10);
        assert_eq!(a.get_parse::<u64>("seed", 42).unwrap(), 42);
        assert!(a.require_parse::<usize>("edges").is_err());
        assert!(a.require_positional(5, "thing").is_err());
    }

    #[test]
    fn flag_followed_by_flag_is_a_switch() {
        let a = parse("run --json --alg sssp");
        assert!(a.switch("json"));
        assert_eq!(a.get("alg"), Some("sssp"));
    }

    #[test]
    fn unconsumed_flags_are_rejected() {
        let a = parse("run g --alg bfs --sorces 0,1 --jsn");
        let _ = a.get("alg");
        let err = a.ensure_consumed().unwrap_err();
        assert!(err.0.contains("--sorces"), "{err}");
        assert!(err.0.contains("--jsn"), "{err}");
        // After reading them, the same args pass.
        let _ = a.get("sorces");
        let _ = a.switch("jsn");
        assert!(a.ensure_consumed().is_ok());
    }

    #[test]
    fn parse_errors_name_the_flag() {
        let a = parse("x --k abc");
        let err = a.get_parse::<u32>("k", 1).unwrap_err();
        assert!(err.0.contains("--k"));
    }
}
