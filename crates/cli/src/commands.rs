//! CLI subcommand implementations, separated from `main` for testability.

use crate::args::{ArgError, Args};
use eta_baselines::{ChunkStream, CushaLike, Framework, GunrockLike, TigrLike};
use eta_graph::generate::{rmat, web, RmatConfig, WebConfig};
use eta_graph::{analysis, io, Csr};
use eta_sim::{Device, GpuConfig, SanitizerMode};
use etagraph::{Algorithm, EtaConfig, RunResult, TransferMode, UdcMode};
use serde_json::json;
use std::fmt::Write as _;

/// A command's output: text for the terminal, optional JSON (with `--json`).
#[derive(Debug)]
pub struct Output {
    pub text: String,
    pub json: serde_json::Value,
}

/// Dispatches one invocation. `argv` excludes the program name.
pub fn dispatch(argv: Vec<String>) -> Result<Output, ArgError> {
    let args = Args::parse(argv);
    let _ = args.switch("json"); // handled by main; valid everywhere
    let out = match args.positional(0) {
        Some("generate") => generate(&args),
        Some("info") => info(&args),
        Some("run") => run(&args),
        Some("serve") => serve(&args),
        Some("chaos") => chaos(&args),
        Some("overload") => overload(&args),
        Some("lint") => lint(&args),
        Some("datasets") => datasets(&args),
        Some(other) => Err(ArgError(format!("unknown command {other:?}\n{}", usage()))),
        None => Err(ArgError(usage())),
    }?;
    // Reject typos and flags this command never read (a stale or wrong
    // invocation must not silently run something else).
    args.ensure_consumed()?;
    Ok(out)
}

pub fn usage() -> String {
    "usage:\n\
     etagraph generate rmat --scale S [--edges M] [--seed N] [--max-weight W] --out FILE\n\
     etagraph generate web --vertices V --edges M [--communities C] [--lcc F]\n\
     \x20                  [--island I] [--seed N] [--max-weight W] --out FILE\n\
     etagraph info FILE [--json]\n\
     etagraph run FILE --alg bfs|sssp|sswp|cc|pagerank [--source V] [--sources A,B,...] [--framework eta|tigr|gunrock|cusha|chunkstream]\n\
     \x20            [--k K] [--no-smp] [--transfer demand|prefetch|explicit|zerocopy|adaptive]\n\
     \x20            [--no-ump] [--no-um] [--out-of-core] [--pull] [--devices N]\n\
     \x20            [--device-mb MB] [--host-threads N] [--trace FILE] [--profile FILE] [--sanitize] [--faults PLAN.json] [--json]\n\
     etagraph serve --graph SPEC[,SPEC...] [--requests N] [--seed S] [--devices D] [--rate QPS]\n\
     \x20          [--arrival poisson|burst] [--batch B | --no-batch] [--fifo] [--queue-cap Q] [--timeout-ms T]\n\
     \x20          [--interactive-frac F] [--slo-ms S] [--device-mb MB] [--host-threads N] [--profile FILE] [--sanitize]\n\
     \x20          [--faults PLAN.json] [--ckpt-interval I] [--qos] [--json]\n\
     \x20          (SPEC: rmatN to generate, or a graph file path)\n\
     etagraph chaos [--full] [--out DIR] [--json]\n\
     etagraph overload [--full] [--out DIR] [--json]\n\
     etagraph lint [--root DIR] [--json]\n\
     etagraph datasets [--json]"
        .to_string()
}

fn generate(args: &Args) -> Result<Output, ArgError> {
    let kind = args.require_positional(1, "generator kind (rmat|web)")?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("missing --out FILE".into()))?
        .to_string();
    let seed: u64 = args.get_parse("seed", 42)?;
    let max_weight: u32 = args.get_parse("max-weight", 0)?;

    let (mut graph, source) = match kind {
        "rmat" => {
            let scale: u32 = args.require_parse("scale")?;
            if scale > 28 {
                return Err(ArgError("--scale above 28 is not supported".into()));
            }
            let edges: usize = args.get_parse("edges", (1usize << scale) * 16)?;
            (rmat(&RmatConfig::paper(scale, edges, seed)), 0u32)
        }
        "web" => {
            let vertices: usize = args.require_parse("vertices")?;
            let edges: usize = args.require_parse("edges")?;
            let communities: usize = args.get_parse("communities", 32)?;
            let lcc: f64 = args.get_parse("lcc", 0.8)?;
            let island: usize = args.get_parse("island", 0)?;
            web(&WebConfig {
                vertices,
                edges,
                communities,
                lcc_fraction: lcc,
                source_island: if island > 0 { Some(island) } else { None },
                seed,
            })
        }
        other => return Err(ArgError(format!("unknown generator {other:?}"))),
    };
    if max_weight > 0 {
        graph = graph.with_random_weights(seed ^ 0x77, max_weight);
    }
    // Reject typo'd flags *before* the side effect — every valid flag has
    // been read by now, so an unconsumed one is a mistake.
    args.ensure_consumed()?;
    io::save(&graph, &out).map_err(|e| ArgError(format!("writing {out}: {e}")))?;
    let text = format!(
        "wrote {out}: {} vertices, {} edges{} (suggested source: {source})",
        graph.n(),
        graph.m(),
        if graph.is_weighted() {
            ", weighted"
        } else {
            ""
        },
    );
    Ok(Output {
        json: json!({
            "file": out, "vertices": graph.n(), "edges": graph.m(),
            "weighted": graph.is_weighted(), "source": source,
        }),
        text,
    })
}

fn load_graph(args: &Args) -> Result<Csr, ArgError> {
    let path = args.require_positional(1, "graph file")?;
    io::load(path).map_err(|e| ArgError(format!("loading {path}: {e}")))
}

fn info(args: &Args) -> Result<Output, ArgError> {
    let g = load_graph(args)?;
    let comp = analysis::components(&g);
    let hist = g.degree_histogram(10);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} vertices, {} edges ({}weighted), avg degree {:.2}, max degree {}",
        g.n(),
        g.m(),
        if g.is_weighted() { "" } else { "un" },
        g.avg_degree(),
        g.max_degree()
    );
    let _ = writeln!(
        text,
        "{} components, largest covers {:.1}% of vertices",
        comp.components,
        comp.lcc_fraction * 100.0
    );
    let _ = writeln!(text, "out-degree histogram (last bucket = 9+):");
    for (d, &count) in hist.iter().enumerate() {
        let _ = writeln!(
            text,
            "  deg {d:>2}{}: {count}",
            if d == 9 { "+" } else { " " }
        );
    }
    Ok(Output {
        json: json!({
            "vertices": g.n(), "edges": g.m(), "weighted": g.is_weighted(),
            "avg_degree": g.avg_degree(), "max_degree": g.max_degree(),
            "components": comp.components, "lcc_percent": comp.lcc_fraction * 100.0,
            "degree_histogram": hist,
        }),
        text,
    })
}

/// Parses the `run` configuration flags into an [`EtaConfig`].
pub fn eta_config_from(args: &Args) -> Result<EtaConfig, ArgError> {
    let mut cfg = EtaConfig {
        k: args.get_parse("k", 16)?,
        ..EtaConfig::paper()
    };
    if cfg.k == 0 {
        return Err(ArgError("--k must be at least 1".into()));
    }
    if args.switch("no-smp") {
        cfg.smp = false;
    }
    // `--transfer` names the backend directly; the paper's ablation
    // switches (`--no-um`, `--no-ump`) stay as spellings of the same axis.
    // Naming both is ambiguous, so it is an error rather than a precedence
    // rule.
    let explicit_transfer = match args.get("transfer") {
        Some(s) => Some(TransferMode::parse(s).ok_or_else(|| {
            ArgError(format!(
                "unknown --transfer {s:?} (expected demand|prefetch|explicit|zerocopy|adaptive)"
            ))
        })?),
        None => None,
    };
    let ablation = if args.switch("no-um") {
        Some(TransferMode::ExplicitCopy)
    } else if args.switch("no-ump") {
        Some(TransferMode::Unified)
    } else {
        None
    };
    cfg.transfer = match (explicit_transfer, ablation) {
        (Some(t), None) => t,
        (None, Some(t)) => t,
        (None, None) => cfg.transfer,
        (Some(_), Some(_)) => {
            return Err(ArgError(
                "--transfer conflicts with --no-um/--no-ump; pick one spelling".into(),
            ))
        }
    };
    if args.switch("out-of-core") {
        cfg.udc = UdcMode::OutOfCore;
    }
    if args.switch("pull") {
        cfg.direction_optimizing = true;
    }
    Ok(cfg)
}

/// Parses `--faults PLAN.json` into a [`eta_fault::FaultPlan`]; `None`
/// when the flag is absent. A malformed plan is a named error, never a
/// silently-empty one.
fn fault_plan_from(args: &Args) -> Result<Option<eta_fault::FaultPlan>, ArgError> {
    let Some(path) = args.get("faults") else {
        return Ok(None);
    };
    let body = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("reading fault plan {path}: {e}")))?;
    eta_fault::FaultPlan::from_json_str(&body)
        .map(Some)
        .map_err(|e| ArgError(format!("fault plan {path}: {e}")))
}

/// Parses `--host-threads N` (default 1): how many host threads the
/// simulator may use for its per-SM drain stages. Simulated results are
/// byte-identical at every setting; only host wall-clock changes.
fn host_threads_from(args: &Args) -> Result<usize, ArgError> {
    let n: usize = args.get_parse("host-threads", 1)?;
    if n == 0 {
        return Err(ArgError("--host-threads must be at least 1".into()));
    }
    Ok(n)
}

/// Builds the simulated device, with the sanitizer attached when
/// `--sanitize` is present (full memcheck + racecheck + lint) and any
/// `--faults` plan installed (as device 0 — single-device runs).
fn device_from(args: &Args) -> Result<Device, ArgError> {
    let device_mb: u64 = args.get_parse("device-mb", 88)?;
    let mut gpu = GpuConfig::gtx1080ti_scaled(device_mb * 1024 * 1024)
        .with_host_threads(host_threads_from(args)?);
    if args.switch("sanitize") {
        gpu = gpu.with_sanitizer(SanitizerMode::Full);
    }
    if args.get("profile").is_some() {
        gpu = gpu.with_profiling();
    }
    let mut dev = Device::new(gpu);
    if let Some(plan) = fault_plan_from(args)? {
        dev.install_faults(&plan, 0);
    }
    Ok(dev)
}

/// With `--profile FILE`: writes the Chrome trace to FILE and appends the
/// nvprof-style summary to the command's text and JSON output.
fn attach_profile(
    out: &mut Output,
    profile: &eta_prof::Profile,
    args: &Args,
) -> Result<(), ArgError> {
    let Some(path) = args.get("profile") else {
        return Ok(());
    };
    std::fs::write(path, profile.to_chrome_trace())
        .map_err(|e| ArgError(format!("writing profile {path}: {e}")))?;
    out.text.push('\n');
    out.text.push_str(&profile.summary_text());
    let _ = writeln!(out.text, "chrome trace written to {path}");
    if let serde_json::Value::Object(m) = &mut out.json {
        let s = profile.summary();
        m.insert(
            "profile".into(),
            json!({
                "trace": path,
                "events": s.event_count,
                "kernel_busy_ns": s.kernel_busy_ns,
                "transfer_busy_ns": s.transfer_busy_ns,
                "overlap_ns": s.overlap_ns,
                "overlap_fraction": s.overlap_fraction,
                "makespan_ns": s.makespan_ns,
            }),
        );
    }
    Ok(())
}

/// Appends the sanitizer findings (if the run was sanitized) to a command's
/// text and JSON output.
fn attach_sanitizer(out: &mut Output, dev: &Device) {
    if let Some(report) = dev.sanitizer_report() {
        out.text.push('\n');
        out.text.push_str(&report.summarize());
        if let serde_json::Value::Object(m) = &mut out.json {
            m.insert(
                "sanitizer".into(),
                serde_json::to_value(&report).unwrap_or_default(),
            );
        }
    }
}

fn parse_algorithm(name: &str) -> Result<Algorithm, ArgError> {
    match name {
        "bfs" => Ok(Algorithm::Bfs),
        "sssp" => Ok(Algorithm::Sssp),
        "sswp" => Ok(Algorithm::Sswp),
        "cc" => Ok(Algorithm::Cc),
        other => Err(ArgError(format!("unknown algorithm {other:?}"))),
    }
}

fn run(args: &Args) -> Result<Output, ArgError> {
    let g = load_graph(args)?;
    if args.get("alg") == Some("pagerank") {
        return run_pagerank(args, &g);
    }
    if let Some(list) = args.get("sources") {
        let list = list.to_string();
        return run_multi_bfs(args, &g, &list);
    }
    let alg = parse_algorithm(args.get("alg").unwrap_or("bfs"))?;
    if alg.needs_weights() && !g.is_weighted() {
        return Err(ArgError(format!(
            "{} needs a weighted graph (generate with --max-weight)",
            alg.name()
        )));
    }
    let source: u32 = args.get_parse("source", 0)?;
    if source as usize >= g.n() {
        return Err(ArgError(format!(
            "--source {source} out of range (graph has {} vertices)",
            g.n()
        )));
    }
    let devices: u32 = args.get_parse("devices", 1)?;
    if devices > 1 {
        return run_sharded_cli(args, &g, alg, source, devices);
    }
    let mut dev = device_from(args)?;

    let result: RunResult = match args.get("framework").unwrap_or("eta") {
        "eta" => {
            let cfg = eta_config_from(args)?;
            etagraph::engine::run(&mut dev, &g, source, alg, &cfg)
                .map_err(|e| ArgError(format!("run failed: {e}")))?
        }
        name => {
            let fw: Box<dyn Framework> = match name {
                "tigr" => Box::new(TigrLike::default()),
                "gunrock" => Box::new(GunrockLike::default()),
                "cusha" => Box::new(CushaLike::default()),
                "chunkstream" => Box::new(ChunkStream::default()),
                other => return Err(ArgError(format!("unknown framework {other:?}"))),
            };
            fw.run(&mut dev, &g, source, alg)
                .map_err(|e| ArgError(format!("{name} failed: {e}")))?
        }
    };

    if let Some(path) = args.get("trace") {
        std::fs::write(path, result.timeline.to_chrome_trace())
            .map_err(|e| ArgError(format!("writing trace {path}: {e}")))?;
    }

    let m = &result.metrics;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} from {source}: visited {} of {} ({:.2}%) in {} iterations",
        alg.name(),
        result.visited(),
        g.n(),
        result.activation_percent(),
        result.iterations
    );
    let _ = writeln!(
        text,
        "simulated: {:.3} ms kernel, {:.3} ms total, {:.0}% of transfer hidden",
        result.kernel_ms(),
        result.total_ms(),
        result.overlap_fraction * 100.0
    );
    let _ = writeln!(
        text,
        "counters: IPC {:.2}, unified-cache hit {:.1}%, {} global read transactions, {:.1} KB migrated in {} batches",
        m.ipc(),
        m.l1_hit_rate() * 100.0,
        m.l1_requests,
        result.um_stats.migrated_bytes as f64 / 1024.0,
        result.um_stats.migration_batches.len(),
    );
    let digest = eta_ckpt::digest_words(&[&result.labels]);
    let _ = writeln!(text, "labels digest: {digest:016x}");
    let mut out = Output {
        json: json!({
            "algorithm": alg.name(),
            "source": source,
            "visited": result.visited(),
            "iterations": result.iterations,
            "kernel_ms": result.kernel_ms(),
            "total_ms": result.total_ms(),
            "overlap_fraction": result.overlap_fraction,
            "labels_digest": format!("{digest:016x}"),
            "metrics": m,
            "um": result.um_stats,
        }),
        text,
    };
    attach_sanitizer(&mut out, &dev);
    attach_profile(&mut out, &dev.profile(), args)?;
    Ok(out)
}

/// `run --devices N`: the same query sharded across an N-member device
/// group over a modeled NVLink fabric (`etagraph::sharded`). The labels
/// digest printed here is byte-comparable with the single-device run's —
/// the CI differential gate diffs exactly these two lines.
fn run_sharded_cli(
    args: &Args,
    g: &Csr,
    alg: Algorithm,
    source: u32,
    devices: u32,
) -> Result<Output, ArgError> {
    if args.get("framework").unwrap_or("eta") != "eta" {
        return Err(ArgError(
            "--devices applies to the eta framework only".into(),
        ));
    }
    for single_only in ["trace", "faults"] {
        if args.get(single_only).is_some() {
            return Err(ArgError(format!(
                "--{single_only} is a single-device flag; drop --devices"
            )));
        }
    }
    if args.switch("sanitize") {
        return Err(ArgError(
            "--sanitize is a single-device flag; drop --devices".into(),
        ));
    }
    let cfg = eta_config_from(args)?;
    let device_mb: u64 = args.get_parse("device-mb", 88)?;
    let mut gpu = GpuConfig::gtx1080ti_scaled(device_mb * 1024 * 1024)
        .with_host_threads(host_threads_from(args)?);
    if args.get("profile").is_some() {
        gpu = gpu.with_profiling();
    }
    let part = eta_shard::GraphPartition::vertex_range(g, devices);
    let mut devs: Vec<Device> = (0..devices).map(|_| Device::new(gpu)).collect();
    let mut fabric = eta_mem::PeerFabric::nvlink(devices);
    let r = etagraph::sharded::run_sharded(&mut devs, &mut fabric, &part, source, alg, &cfg)
        .map_err(|e| ArgError(format!("sharded run failed: {e}")))?;

    let init = alg.init_label();
    let visited = r.labels.iter().filter(|&&l| l != init).count();
    let digest = eta_ckpt::digest_words(&[&r.labels]);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} from {source} on {devices} devices: visited {} of {} ({:.2}%) in {} supersteps",
        alg.name(),
        visited,
        g.n(),
        visited as f64 * 100.0 / g.n().max(1) as f64,
        r.supersteps
    );
    let _ = writeln!(
        text,
        "simulated: {:.3} ms kernel (all shards), {:.3} ms total; {:.1} KB over the peer fabric ({:.1} KB/superstep)",
        r.kernel_ns as f64 / 1e6,
        r.total_ns as f64 / 1e6,
        r.exchanged_bytes as f64 / 1024.0,
        r.bytes_per_superstep() as f64 / 1024.0,
    );
    let _ = writeln!(text, "labels digest: {digest:016x}");
    let mut out = Output {
        json: json!({
            "algorithm": alg.name(),
            "source": source,
            "devices": devices,
            "visited": visited,
            "supersteps": r.supersteps,
            "kernel_ms": r.kernel_ns as f64 / 1e6,
            "total_ms": r.total_ns as f64 / 1e6,
            "exchanged_bytes": r.exchanged_bytes,
            "bytes_per_superstep": r.bytes_per_superstep(),
            "labels_digest": format!("{digest:016x}"),
            "metrics": r.metrics,
        }),
        text,
    };
    if args.get("profile").is_some() {
        let mut profile = eta_prof::Profile::new();
        for (s, d) in devs.iter().enumerate() {
            profile.push(&format!("device{s}"), d.mem.prof.events().to_vec());
        }
        attach_profile(&mut out, &profile, args)?;
    }
    Ok(out)
}

/// Batched concurrent BFS over a comma-separated source list (iBFS-style;
/// up to 32 sources share one traversal).
fn run_multi_bfs(args: &Args, g: &Csr, list: &str) -> Result<Output, ArgError> {
    let sources: Vec<u32> = list
        .split(',')
        .map(|tok| {
            tok.trim()
                .parse::<u32>()
                .map_err(|_| ArgError(format!("--sources: cannot parse {tok:?}")))
        })
        .collect::<Result<_, _>>()?;
    if sources.is_empty() || sources.len() > etagraph::multi_bfs::MAX_BATCH {
        return Err(ArgError(format!(
            "--sources takes 1..={} vertices",
            etagraph::multi_bfs::MAX_BATCH
        )));
    }
    for &s in &sources {
        if s as usize >= g.n() {
            return Err(ArgError(format!("--sources: vertex {s} out of range")));
        }
    }
    let cfg = eta_config_from(args)?;
    let mut dev = device_from(args)?;
    let r = etagraph::multi_bfs::run(&mut dev, g, &sources, &cfg)
        .map_err(|e| ArgError(format!("multi-bfs failed: {e}")))?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "batched BFS: {} sources in {} joint iterations, {:.3} ms kernel / {:.3} ms total",
        sources.len(),
        r.iterations,
        r.kernel_ns as f64 / 1e6,
        r.total_ns as f64 / 1e6
    );
    let mut jrows = Vec::new();
    for (s, &src) in sources.iter().enumerate() {
        let visited = r.levels[s].iter().filter(|&&l| l != u32::MAX).count();
        let _ = writeln!(text, "  source {src:>8}: reached {visited} vertices");
        jrows.push(json!({"source": src, "visited": visited}));
    }
    let mut out = Output {
        json: json!({
            "algorithm": "multi-BFS",
            "sources": jrows,
            "iterations": r.iterations,
            "kernel_ms": r.kernel_ns as f64 / 1e6,
            "total_ms": r.total_ns as f64 / 1e6,
        }),
        text,
    };
    attach_sanitizer(&mut out, &dev);
    attach_profile(&mut out, &dev.profile(), args)?;
    Ok(out)
}

fn run_pagerank(args: &Args, g: &Csr) -> Result<Output, ArgError> {
    let cfg = etagraph::pagerank::PageRankConfig {
        damping: args.get_parse("damping", 0.85f32)?,
        iterations: args.get_parse("iterations", 20)?,
        eta: eta_config_from(args)?,
    };
    let devices: u32 = args.get_parse("devices", 1)?;
    if devices > 1 {
        return run_pagerank_sharded(args, g, &cfg, devices);
    }
    let mut dev = device_from(args)?;
    let r = etagraph::pagerank::run(&mut dev, g, &cfg)
        .map_err(|e| ArgError(format!("pagerank failed: {e}")))?;
    let mut top: Vec<(u32, f32)> = r
        .ranks
        .iter()
        .copied()
        .enumerate()
        .map(|(v, rank)| (v as u32, rank))
        .collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut text = String::new();
    let _ = writeln!(
        text,
        "PageRank: {} iterations, {:.3} ms kernel / {:.3} ms total",
        r.iterations,
        r.kernel_ns as f64 / 1e6,
        r.total_ns as f64 / 1e6
    );
    let _ = writeln!(text, "top 10 vertices:");
    for &(v, rank) in top.iter().take(10) {
        let _ = writeln!(text, "  {v:>8}  {rank:.6}");
    }
    let bits: Vec<u32> = r.ranks.iter().map(|x| x.to_bits()).collect();
    let digest = eta_ckpt::digest_words(&[&bits]);
    let _ = writeln!(text, "ranks digest: {digest:016x}");
    let mut out = Output {
        json: json!({
            "algorithm": "PageRank",
            "iterations": r.iterations,
            "kernel_ms": r.kernel_ns as f64 / 1e6,
            "total_ms": r.total_ns as f64 / 1e6,
            "ranks_digest": format!("{digest:016x}"),
            "top10": top.iter().take(10).map(|&(v, rank)| json!({"vertex": v, "rank": rank})).collect::<Vec<_>>(),
        }),
        text,
    };
    attach_sanitizer(&mut out, &dev);
    attach_profile(&mut out, &dev.profile(), args)?;
    Ok(out)
}

/// `run --alg pagerank --devices N`: sharded PageRank with bit-identical
/// ranks (the digest line matches the single-device run's exactly).
fn run_pagerank_sharded(
    args: &Args,
    g: &Csr,
    cfg: &etagraph::pagerank::PageRankConfig,
    devices: u32,
) -> Result<Output, ArgError> {
    if args.switch("sanitize") || args.get("trace").is_some() || args.get("faults").is_some() {
        return Err(ArgError(
            "--sanitize/--trace/--faults are single-device flags; drop --devices".into(),
        ));
    }
    let device_mb: u64 = args.get_parse("device-mb", 88)?;
    let mut gpu = GpuConfig::gtx1080ti_scaled(device_mb * 1024 * 1024)
        .with_host_threads(host_threads_from(args)?);
    if args.get("profile").is_some() {
        gpu = gpu.with_profiling();
    }
    let part = eta_shard::GraphPartition::vertex_range(g, devices);
    let mut devs: Vec<Device> = (0..devices).map(|_| Device::new(gpu)).collect();
    let mut fabric = eta_mem::PeerFabric::nvlink(devices);
    let r = etagraph::sharded::run_sharded_pagerank(&mut devs, &mut fabric, &part, g, cfg)
        .map_err(|e| ArgError(format!("sharded pagerank failed: {e}")))?;
    let bits: Vec<u32> = r.ranks.iter().map(|x| x.to_bits()).collect();
    let digest = eta_ckpt::digest_words(&[&bits]);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "PageRank on {devices} devices: {} iterations, {:.3} ms kernel / {:.3} ms total; {:.1} KB over the peer fabric",
        r.iterations,
        r.kernel_ns as f64 / 1e6,
        r.total_ns as f64 / 1e6,
        r.exchanged_bytes as f64 / 1024.0,
    );
    let _ = writeln!(text, "ranks digest: {digest:016x}");
    let mut out = Output {
        json: json!({
            "algorithm": "PageRank",
            "devices": devices,
            "iterations": r.iterations,
            "kernel_ms": r.kernel_ns as f64 / 1e6,
            "total_ms": r.total_ns as f64 / 1e6,
            "exchanged_bytes": r.exchanged_bytes,
            "ranks_digest": format!("{digest:016x}"),
        }),
        text,
    };
    if args.get("profile").is_some() {
        let mut profile = eta_prof::Profile::new();
        for (s, d) in devs.iter().enumerate() {
            profile.push(&format!("device{s}"), d.mem.prof.events().to_vec());
        }
        attach_profile(&mut out, &profile, args)?;
    }
    Ok(out)
}

/// One `--graph` spec: `rmatN` generates an R-MAT graph in memory (graph
/// seed `42 + index`, paper edge factor); anything else loads a graph file.
/// The spec string itself becomes the registry name.
fn parse_graph_spec(spec: &str, idx: usize) -> Result<Csr, ArgError> {
    if let Some(scale) = spec
        .strip_prefix("rmat")
        .and_then(|s| s.parse::<u32>().ok())
    {
        if scale > 28 {
            return Err(ArgError(format!("--graph {spec}: scale above 28")));
        }
        let edges = (1usize << scale) * 16;
        return Ok(rmat(&RmatConfig::paper(scale, edges, 42 + idx as u64)));
    }
    io::load(spec).map_err(|e| ArgError(format!("loading {spec}: {e}")))
}

/// Serves a deterministic Poisson workload over one or more tenant graphs
/// on a pool of simulated devices; see `eta-serve`.
fn serve(args: &Args) -> Result<Output, ArgError> {
    use eta_bench::stats::Summary;
    use eta_serve::{poisson_trace, Priority};

    let specs: Vec<String> = args
        .get("graph")
        .ok_or_else(|| ArgError("missing --graph SPEC[,SPEC...]".into()))?
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let mut registry = eta_serve::GraphRegistry::new();
    for (idx, spec) in specs.iter().enumerate() {
        registry.insert(spec, parse_graph_spec(spec, idx)?);
    }

    let workload = eta_serve::WorkloadConfig {
        requests: args.get_parse("requests", 200)?,
        seed: args.get_parse("seed", 7)?,
        rate_per_s: args.get_parse("rate", 2_000.0f64)?,
        arrival: match args.get("arrival") {
            None => eta_serve::Arrival::Poisson,
            Some(s) => eta_serve::Arrival::parse(s)
                .ok_or_else(|| ArgError(format!("--arrival takes poisson or burst, got {s:?}")))?,
        },
        interactive_fraction: args.get_parse("interactive-frac", 0.5f64)?,
        interactive_slo_ns: args
            .get("slo-ms")
            .map(|v| {
                v.parse::<u64>()
                    .map(|ms| ms * 1_000_000)
                    .map_err(|_| ArgError(format!("--slo-ms: cannot parse {v:?}")))
            })
            .transpose()?,
        batch_slo_ns: None,
        timeout_ns: args
            .get("timeout-ms")
            .map(|v| {
                v.parse::<u64>()
                    .map(|ms| ms * 1_000_000)
                    .map_err(|_| ArgError(format!("--timeout-ms: cannot parse {v:?}")))
            })
            .transpose()?,
    };
    if workload.rate_per_s <= 0.0 {
        return Err(ArgError("--rate must be positive".into()));
    }

    let device_mb: u64 = args.get_parse("device-mb", 88)?;
    let mut gpu = GpuConfig::gtx1080ti_scaled(device_mb * 1024 * 1024)
        .with_host_threads(host_threads_from(args)?);
    let sanitize = args.switch("sanitize");
    if sanitize {
        gpu = gpu.with_sanitizer(SanitizerMode::Full);
    }
    if args.get("profile").is_some() {
        gpu = gpu.with_profiling();
    }
    let max_batch = if args.switch("no-batch") {
        1
    } else {
        args.get_parse("batch", etagraph::multi_bfs::MAX_BATCH)?
    };
    if !(1..=etagraph::multi_bfs::MAX_BATCH).contains(&max_batch) {
        return Err(ArgError(format!(
            "--batch takes 1..={}",
            etagraph::multi_bfs::MAX_BATCH
        )));
    }
    let cfg = eta_serve::ServeConfig {
        devices: args.get_parse("devices", 1)?,
        gpu,
        eta: eta_config_from(args)?,
        queue_capacity: args.get_parse("queue-cap", 256)?,
        max_batch,
        policy: if args.switch("fifo") {
            eta_serve::Policy::Fifo
        } else {
            eta_serve::Policy::PriorityDeadline
        },
        faults: fault_plan_from(args)?.unwrap_or_default(),
        checkpoint_interval: args.get_parse("ckpt-interval", 0)?,
        qos: if args.switch("qos") {
            eta_serve::QosConfig::standard()
        } else {
            eta_serve::QosConfig::default()
        },
        ..eta_serve::ServeConfig::default()
    };
    if cfg.devices == 0 {
        return Err(ArgError("--devices must be at least 1".into()));
    }
    if cfg.queue_capacity == 0 {
        return Err(ArgError("--queue-cap must be at least 1".into()));
    }
    args.ensure_consumed()?;

    let trace = poisson_trace(&registry, &specs, &workload);
    let mut service = eta_serve::Service::new(&registry, cfg.clone());
    let report = service.run(&trace);

    let ms = |ns: u64| ns as f64 / 1e6;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "served {} requests over {} graph(s) on {} device(s): {} completed, {} rejected",
        workload.requests,
        specs.len(),
        cfg.devices,
        report.completed,
        report.rejected
    );
    let _ = writeln!(
        text,
        "makespan {:.3} ms, throughput {:.0} qps, mean batch size {:.1} ({})",
        ms(report.makespan_ns),
        report.throughput_qps,
        report.mean_batch_size(),
        cfg.policy.name()
    );
    let mut latency_json = serde_json::Map::new();
    for (label, class) in [
        ("all", None),
        ("interactive", Some(Priority::Interactive)),
        ("batch", Some(Priority::Batch)),
    ] {
        if let Some(s) = Summary::of(&report.latencies_ns(class)) {
            let _ = writeln!(
                text,
                "latency [{label:>11}] n={:<4} p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
                s.count,
                ms(s.p50),
                ms(s.p95),
                ms(s.p99)
            );
            latency_json.insert(
                label.to_string(),
                serde_json::to_value(&s).unwrap_or_default(),
            );
        }
    }
    if let Some(slo) = report.slo_attainment() {
        let _ = writeln!(text, "SLO attainment: {:.1}%", slo * 100.0);
    }
    // Overload-control summary, only when a qos feature is actually on
    // (keeps qos-off output byte-identical to older builds).
    if let Some(q) = &report.qos {
        let _ = writeln!(
            text,
            "qos: goodput {:.0} qps, {} admission / {} shed / {} throttle rejection(s), \
             {} retry(ies) granted, {} denied, {} brownout batch(es)",
            report.goodput_qps(),
            q.admission_rejections,
            q.shed_rejections,
            q.throttle_rejections,
            q.retries_granted,
            q.retries_denied,
            q.brownout_batches
        );
    }
    // Fault-tolerance summary, only when the run actually saw faults (the
    // empty default plan keeps this output byte-identical to older builds).
    if !report.fault_events.is_empty() {
        let _ = writeln!(
            text,
            "faults: {} device fault(s), {} retried answer(s), {} degraded (CPU fallback), availability {:.4}",
            report.fault_events.len(),
            report.records.iter().filter(|r| r.retries > 0).count(),
            report.degraded,
            report.availability
        );
        for q in &report.quarantines {
            let _ = writeln!(
                text,
                "quarantine: device {} from {:.3} ms to {:.3} ms",
                q.device,
                ms(q.from_ns),
                ms(q.until_ns)
            );
        }
    }
    // Checkpoint summary, only when rung 0 actually did something (keeps
    // non-checkpointed output byte-identical to older builds).
    if report.checkpoints > 0 || report.resumes > 0 {
        let _ = writeln!(
            text,
            "checkpoints: {} snapshot(s), {} resume(s) ({} migrated), {} iteration(s) of work saved",
            report.checkpoints, report.resumes, report.migrations, report.work_saved_iterations
        );
    }
    for d in &report.devices {
        let _ = writeln!(
            text,
            "device {}: {:.1}% utilized, {} upload(s), {} eviction(s)",
            d.device,
            d.utilization * 100.0,
            d.uploads,
            d.evictions
        );
    }
    if !report.rejections.is_empty() {
        let mut by_reason: std::collections::BTreeMap<&str, u32> = Default::default();
        for r in &report.rejections {
            *by_reason.entry(r.reason.name()).or_default() += 1;
        }
        let reasons: Vec<String> = by_reason
            .iter()
            .map(|(name, count)| format!("{name} x{count}"))
            .collect();
        let _ = writeln!(text, "rejections: {}", reasons.join(", "));
    }

    let mut out = Output {
        json: json!({
            "graphs": specs,
            "requests": workload.requests,
            "seed": workload.seed,
            "devices": cfg.devices,
            "max_batch": cfg.max_batch,
            "policy": cfg.policy,
            "latency_ms_scale": 1e-6,
            "latency": serde_json::Value::Object(latency_json),
            "slo_attainment": report.slo_attainment(),
            "mean_batch_size": report.mean_batch_size(),
            "report": serde_json::to_value(&report).unwrap_or_default(),
        }),
        text,
    };
    if sanitize {
        let mut reports = Vec::new();
        for w in service.workers() {
            if let Some(report) = w.dev.sanitizer_report() {
                out.text.push('\n');
                out.text.push_str(&report.summarize());
                reports.push(serde_json::to_value(&report).unwrap_or_default());
            }
        }
        if let serde_json::Value::Object(m) = &mut out.json {
            m.insert("sanitizer".into(), serde_json::Value::Array(reports));
        }
    }
    attach_profile(&mut out, &service.profile(), args)?;
    Ok(out)
}

/// Runs the deterministic chaos-soak drill from `eta-bench`: seeded fault
/// plans crossed with checkpoint intervals, every completed answer checked
/// against the CPU reference. `--full` runs the large sweep; `--out DIR`
/// also writes the `chaos.txt` / `chaos.json` artifact pair.
fn chaos(args: &Args) -> Result<Output, ArgError> {
    let suite = if args.switch("full") {
        eta_bench::Suite::Full
    } else {
        eta_bench::Suite::Quick
    };
    let out_dir = args.get("out").map(String::from);
    args.ensure_consumed()?;

    let a = eta_bench::chaos::chaos(suite);
    let lost = a.json["verification"]["lost"].as_u64().unwrap_or(u64::MAX);
    let wrong = a.json["verification"]["wrong"].as_u64().unwrap_or(u64::MAX);
    let mut text = format!("{}\n\n{}", a.title, a.text);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| ArgError(format!("creating {dir}: {e}")))?;
        let txt = format!("{dir}/chaos.txt");
        std::fs::write(&txt, format!("{}\n\n{}", a.title, a.text))
            .map_err(|e| ArgError(format!("writing {txt}: {e}")))?;
        let jsn = format!("{dir}/chaos.json");
        std::fs::write(
            &jsn,
            serde_json::to_string_pretty(&a.json).unwrap_or_default(),
        )
        .map_err(|e| ArgError(format!("writing {jsn}: {e}")))?;
        let _ = writeln!(text, "\nwrote {txt} and {jsn}");
    }
    if lost > 0 || wrong > 0 {
        return Err(ArgError(format!(
            "chaos drill FAILED: {lost} lost, {wrong} wrong — minimal reproducers in the json artifact"
        )));
    }
    let _ = writeln!(text, "\nchaos drill passed: 0 lost, 0 wrong");
    Ok(Output { json: a.json, text })
}

/// Runs the deterministic overload drill from `eta-bench`: arrival-rate
/// multipliers over calibrated capacity crossed with fault plans, every
/// trace served qos-off and qos-on, every id accounted for exactly once.
/// `--full` runs the large sweep; `--out DIR` also writes the
/// `overload.txt` / `overload.json` artifact pair.
fn overload(args: &Args) -> Result<Output, ArgError> {
    let suite = if args.switch("full") {
        eta_bench::Suite::Full
    } else {
        eta_bench::Suite::Quick
    };
    let out_dir = args.get("out").map(String::from);
    args.ensure_consumed()?;

    let a = eta_bench::overload::overload(suite);
    let lost = a.json["verification"]["lost"].as_u64().unwrap_or(u64::MAX);
    let wrong = a.json["verification"]["wrong"].as_u64().unwrap_or(u64::MAX);
    let wins = a.json["saturated_qos_wins"].as_u64().unwrap_or(0);
    let cells = a.json["saturated_cells"].as_u64().unwrap_or(u64::MAX);
    let mut text = format!("{}\n\n{}", a.title, a.text);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| ArgError(format!("creating {dir}: {e}")))?;
        let txt = format!("{dir}/overload.txt");
        std::fs::write(&txt, format!("{}\n\n{}", a.title, a.text))
            .map_err(|e| ArgError(format!("writing {txt}: {e}")))?;
        let jsn = format!("{dir}/overload.json");
        std::fs::write(
            &jsn,
            serde_json::to_string_pretty(&a.json).unwrap_or_default(),
        )
        .map_err(|e| ArgError(format!("writing {jsn}: {e}")))?;
        let _ = writeln!(text, "\nwrote {txt} and {jsn}");
    }
    if lost > 0 || wrong > 0 {
        return Err(ArgError(format!(
            "overload drill FAILED: {lost} lost, {wrong} wrong — per-cell detail in the json artifact"
        )));
    }
    if wins < cells {
        return Err(ArgError(format!(
            "overload drill FAILED: qos beat the baseline in only {wins}/{cells} saturated cells"
        )));
    }
    let _ = writeln!(
        text,
        "\noverload drill passed: 0 lost, 0 wrong; qos won all {cells} saturated cells"
    );
    Ok(Output { json: a.json, text })
}

/// Runs the workspace static invariant checker (`crates/lint`): seven
/// token-pattern rules over every library source, minus the committed
/// `lint.allow` baseline. Any non-baselined finding — or any stale baseline
/// entry — fails the command, which is exactly what the ci.sh gate needs.
fn lint(args: &Args) -> Result<Output, ArgError> {
    let root = match args.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| ArgError(format!("reading current directory: {e}")))?;
            eta_lint::find_workspace_root(&cwd).ok_or_else(|| {
                ArgError(
                    "no workspace root (a directory holding crates/ and Cargo.toml) above \
                     the current directory; pass --root DIR"
                        .into(),
                )
            })?
        }
    };
    args.ensure_consumed()?;

    let report =
        eta_lint::lint_workspace(&root).map_err(|e| ArgError(format!("lint did not run: {e}")))?;
    let text = report.text();
    if !report.is_clean() {
        return Err(ArgError(text));
    }
    Ok(Output {
        json: eta_bench::lint_report::value(&report),
        text,
    })
}

fn datasets(_args: &Args) -> Result<Output, ArgError> {
    let mut text = String::from("scaled evaluation datasets (built in-memory by eta-bench):\n");
    let mut rows = Vec::new();
    for name in eta_graph::datasets::ALL {
        let _ = writeln!(text, "  {name}");
        rows.push(json!(name));
    }
    let _ = writeln!(
        text,
        "regenerate the paper's tables: cargo run --release -p eta-bench --bin report -- all"
    );
    Ok(Output {
        json: serde_json::Value::Array(rows),
        text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmpfile(name: &str) -> String {
        let dir = std::env::temp_dir().join("etagraph-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_info_run_pipeline() {
        let f = tmpfile("pipeline.etag");
        let out = dispatch(argv(&format!(
            "generate rmat --scale 9 --edges 4000 --seed 7 --max-weight 32 --out {f}"
        )))
        .unwrap();
        assert!(out.text.contains("weighted"));

        let info = dispatch(argv(&format!("info {f}"))).unwrap();
        assert_eq!(info.json["vertices"], 512);
        assert!(info.json["weighted"].as_bool().unwrap());

        let run = dispatch(argv(&format!("run {f} --alg sssp --source 3"))).unwrap();
        assert!(run.json["visited"].as_u64().unwrap() > 0);
        assert_eq!(run.json["algorithm"], "SSSP");

        // Baseline frameworks work through the same interface.
        let tigr = dispatch(argv(&format!("run {f} --alg bfs --framework tigr"))).unwrap();
        assert!(tigr.json["total_ms"].as_f64().unwrap() > 0.0);
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn sharded_run_matches_single_device_digest() {
        let f = tmpfile("sharded.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 9 --edges 4000 --seed 7 --max-weight 32 --out {f}"
        )))
        .unwrap();
        for alg in ["bfs", "sssp"] {
            let single = dispatch(argv(&format!("run {f} --alg {alg} --source 3"))).unwrap();
            let sharded =
                dispatch(argv(&format!("run {f} --alg {alg} --source 3 --devices 2"))).unwrap();
            assert_eq!(
                single.json["labels_digest"], sharded.json["labels_digest"],
                "{alg}: sharded answer must match the single-device one"
            );
            assert_eq!(sharded.json["devices"], 2);
            assert!(sharded.json["exchanged_bytes"].as_u64().unwrap() > 0);
            assert!(sharded.text.contains("labels digest"));
        }
        let pr1 = dispatch(argv(&format!("run {f} --alg pagerank --iterations 5"))).unwrap();
        let pr2 = dispatch(argv(&format!(
            "run {f} --alg pagerank --iterations 5 --devices 2"
        )))
        .unwrap();
        assert_eq!(pr1.json["ranks_digest"], pr2.json["ranks_digest"]);
        // Single-device-only flags are refused, not silently ignored.
        let err = dispatch(argv(&format!("run {f} --alg bfs --devices 2 --sanitize"))).unwrap_err();
        assert!(err.0.contains("single-device"), "{err}");
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn run_flags_map_to_config() {
        let a = Args::parse(argv("run g --no-smp --no-ump --out-of-core --pull --k 8"));
        let cfg = eta_config_from(&a).unwrap();
        assert!(!cfg.smp);
        assert_eq!(cfg.transfer, TransferMode::Unified);
        assert_eq!(cfg.udc, UdcMode::OutOfCore);
        assert!(cfg.direction_optimizing);
        assert_eq!(cfg.k, 8);
        let bad = Args::parse(argv("run g --k 0"));
        assert!(eta_config_from(&bad).is_err());
    }

    #[test]
    fn transfer_flag_selects_the_backend() {
        for (spelling, mode) in [
            ("demand", TransferMode::Unified),
            ("prefetch", TransferMode::UnifiedPrefetch),
            ("explicit", TransferMode::ExplicitCopy),
            ("zerocopy", TransferMode::ZeroCopy),
            ("adaptive", TransferMode::Adaptive),
        ] {
            let a = Args::parse(argv(&format!("run g --transfer {spelling}")));
            assert_eq!(eta_config_from(&a).unwrap().transfer, mode);
        }
        // Unknown value is a named error, not a silent default.
        let bad = Args::parse(argv("run g --transfer mapped"));
        let err = eta_config_from(&bad).unwrap_err();
        assert!(err.0.contains("mapped"), "{err}");
        // Mixing the direct spelling with an ablation switch is ambiguous.
        let both = Args::parse(argv("run g --transfer adaptive --no-um"));
        let err = eta_config_from(&both).unwrap_err();
        assert!(err.0.contains("conflicts"), "{err}");
        // The ablation switches still work on their own.
        let ab = Args::parse(argv("run g --no-um"));
        assert_eq!(
            eta_config_from(&ab).unwrap().transfer,
            TransferMode::ExplicitCopy
        );
    }

    #[test]
    fn helpful_errors() {
        assert!(dispatch(argv("frobnicate")).is_err());
        // Typo'd flags are named, not ignored.
        let f0 = tmpfile("typo.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 8 --edges 2000 --out {f0}"
        )))
        .unwrap();
        let err = dispatch(argv(&format!("run {f0} --alg bfs --sorces 0,1"))).unwrap_err();
        assert!(err.0.contains("--sorces"), "{err}");
        // A typo'd generate must fail *without* writing the file.
        let f1 = tmpfile("never-written.etag");
        let err = dispatch(argv(&format!(
            "generate rmat --scale 8 --edges 2000 --out {f1} --sede 7"
        )))
        .unwrap_err();
        assert!(err.0.contains("--sede"), "{err}");
        assert!(
            !std::path::Path::new(&f1).exists(),
            "no side effect on error"
        );
        std::fs::remove_file(&f0).ok();
        assert!(dispatch(argv("generate rmat --out /tmp/x.etag"))
            .unwrap_err()
            .0
            .contains("--scale"));
        let f = tmpfile("unweighted.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 8 --edges 2000 --out {f}"
        )))
        .unwrap();
        let err = dispatch(argv(&format!("run {f} --alg sssp"))).unwrap_err();
        assert!(err.0.contains("weighted"), "{err}");
        let err = dispatch(argv(&format!("run {f} --alg bfs --source 99999"))).unwrap_err();
        assert!(err.0.contains("out of range"));
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn web_generator_with_island() {
        let f = tmpfile("web.etag");
        let out = dispatch(argv(&format!(
            "generate web --vertices 5000 --edges 30000 --communities 8 --island 50 --out {f}"
        )))
        .unwrap();
        assert_eq!(out.json["source"], 0);
        let run = dispatch(argv(&format!("run {f} --alg bfs"))).unwrap();
        assert_eq!(run.json["visited"], 50, "island traversal");
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn connected_components_via_cli() {
        let f = tmpfile("cc.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 9 --edges 4000 --out {f}"
        )))
        .unwrap();
        let out = dispatch(argv(&format!("run {f} --alg cc"))).unwrap();
        assert_eq!(out.json["algorithm"], "CC");
        // Baselines reject the extension cleanly.
        let err = dispatch(argv(&format!("run {f} --alg cc --framework tigr"))).unwrap_err();
        assert!(err.0.contains("EtaGraph-only"), "{err}");
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn pagerank_via_cli() {
        let f = tmpfile("pr.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 9 --edges 4000 --out {f}"
        )))
        .unwrap();
        let out = dispatch(argv(&format!("run {f} --alg pagerank --iterations 5"))).unwrap();
        assert_eq!(out.json["algorithm"], "PageRank");
        assert_eq!(out.json["top10"].as_array().unwrap().len(), 10);
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn multi_bfs_and_trace_via_cli() {
        let f = tmpfile("multi.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 9 --edges 4000 --out {f}"
        )))
        .unwrap();
        let out = dispatch(argv(&format!("run {f} --sources 0,1,7"))).unwrap();
        assert_eq!(out.json["algorithm"], "multi-BFS");
        assert_eq!(out.json["sources"].as_array().unwrap().len(), 3);
        let bad = dispatch(argv(&format!("run {f} --sources 0,abc"))).unwrap_err();
        assert!(bad.0.contains("--sources"));

        let trace = tmpfile("run.trace.json");
        dispatch(argv(&format!("run {f} --alg bfs --trace {trace}"))).unwrap();
        let body = std::fs::read_to_string(&trace).unwrap();
        assert!(body.contains("\"ph\":\"X\""));
        assert!(body.trim_end().ends_with(']'));
        std::fs::remove_file(&f).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn profile_flag_writes_deterministic_chrome_trace() {
        let f = tmpfile("prof.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 10 --edges 16000 --out {f}"
        )))
        .unwrap();
        let trace = tmpfile("run.profile.json");
        let out = dispatch(argv(&format!("run {f} --alg bfs --profile {trace}"))).unwrap();
        assert!(out.text.contains("==eta-prof=="), "{}", out.text);
        assert!(
            out.text.contains("transfer/compute overlap"),
            "{}",
            out.text
        );
        assert!(out.json["profile"]["events"].as_u64().unwrap() > 0);
        let body = std::fs::read_to_string(&trace).unwrap();
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.contains("\"name\":\"kernels\""), "kernel track named");
        assert!(body.contains("\"name\":\"pcie transfers\""));
        assert!(body.contains("\"ph\":\"X\""));
        // Byte-identical on a repeated identical invocation.
        let trace2 = tmpfile("run.profile2.json");
        dispatch(argv(&format!("run {f} --alg bfs --profile {trace2}"))).unwrap();
        assert_eq!(body, std::fs::read_to_string(&trace2).unwrap());
        // Unprofiled runs attach nothing.
        let plain = dispatch(argv(&format!("run {f} --alg bfs"))).unwrap();
        assert!(plain.json["profile"].is_null());
        for p in [f, trace, trace2] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn profile_flag_covers_serve_and_secondary_run_paths() {
        let trace = tmpfile("serve.profile.json");
        let out = dispatch(argv(&format!(
            "serve --graph rmat10 --requests 20 --seed 7 --rate 5000 --profile {trace}"
        )))
        .unwrap();
        assert!(out.text.contains("==eta-prof=="), "{}", out.text);
        let body = std::fs::read_to_string(&trace).unwrap();
        assert!(body.contains("\"name\":\"scheduler\""), "scheduler process");
        assert!(body.contains("\"name\":\"device0\""), "device process");
        std::fs::remove_file(&trace).ok();

        let f = tmpfile("prof-multi.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 9 --edges 4000 --out {f}"
        )))
        .unwrap();
        let t1 = tmpfile("multi.profile.json");
        let multi = dispatch(argv(&format!("run {f} --sources 0,1 --profile {t1}"))).unwrap();
        assert!(multi.json["profile"]["events"].as_u64().unwrap() > 0);
        let t2 = tmpfile("pr.profile.json");
        let pr = dispatch(argv(&format!(
            "run {f} --alg pagerank --iterations 3 --profile {t2}"
        )))
        .unwrap();
        assert!(pr.json["profile"]["events"].as_u64().unwrap() > 0);
        for p in [f, t1, t2] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn sanitize_flag_reports_per_run_mode() {
        let f = tmpfile("sanitize.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 9 --edges 4000 --out {f}"
        )))
        .unwrap();
        // Sanitized EtaGraph run: report present and clean.
        let out = dispatch(argv(&format!("run {f} --alg bfs --sanitize"))).unwrap();
        assert!(out.text.contains("sanitizer (full)"), "{}", out.text);
        assert_eq!(out.json["sanitizer"]["errors"].as_array().unwrap().len(), 0);
        assert!(out.json["sanitizer"]["launches"].as_u64().unwrap() > 0);
        // Baselines run sanitized through the same flag.
        let tigr = dispatch(argv(&format!(
            "run {f} --alg bfs --framework tigr --sanitize"
        )))
        .unwrap();
        assert_eq!(
            tigr.json["sanitizer"]["errors"].as_array().unwrap().len(),
            0
        );
        // PageRank and multi-BFS paths carry the report too.
        let pr = dispatch(argv(&format!(
            "run {f} --alg pagerank --iterations 3 --sanitize"
        )))
        .unwrap();
        assert!(pr.json["sanitizer"]["launches"].as_u64().unwrap() > 0);
        let multi = dispatch(argv(&format!("run {f} --sources 0,1 --sanitize"))).unwrap();
        assert!(multi.json["sanitizer"]["launches"].as_u64().unwrap() > 0);
        // Without the flag, no report is attached.
        let plain = dispatch(argv(&format!("run {f} --alg bfs"))).unwrap();
        assert!(plain.json["sanitizer"].is_null());
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn serve_subcommand_end_to_end() {
        let out = dispatch(argv(
            "serve --graph rmat10 --requests 40 --seed 7 --rate 5000",
        ))
        .unwrap();
        assert_eq!(out.json["requests"], 40);
        let completed = out.json["report"]["completed"].as_u64().unwrap();
        let rejected = out.json["report"]["rejected"].as_u64().unwrap();
        assert_eq!(completed + rejected, 40);
        assert!(out.json["latency"]["all"]["p95"].as_u64().unwrap() > 0);
        assert!(out.text.contains("throughput"), "{}", out.text);
        // Same invocation, byte-identical JSON (the determinism contract).
        let again = dispatch(argv(
            "serve --graph rmat10 --requests 40 --seed 7 --rate 5000",
        ))
        .unwrap();
        assert_eq!(
            serde_json::to_string(&out.json).unwrap(),
            serde_json::to_string(&again.json).unwrap()
        );
        // A different seed produces a different trace.
        let other = dispatch(argv(
            "serve --graph rmat10 --requests 40 --seed 8 --rate 5000",
        ))
        .unwrap();
        assert_ne!(
            serde_json::to_string(&out.json["report"]).unwrap(),
            serde_json::to_string(&other.json["report"]).unwrap()
        );
    }

    #[test]
    fn serve_flags_are_validated() {
        assert!(dispatch(argv("serve --requests 10"))
            .unwrap_err()
            .0
            .contains("--graph"));
        assert!(dispatch(argv("serve --graph rmat10 --batch 99"))
            .unwrap_err()
            .0
            .contains("--batch"));
        assert!(dispatch(argv("serve --graph rmat10 --rate -1"))
            .unwrap_err()
            .0
            .contains("--rate"));
        // Typo'd flags are named, like every other subcommand.
        let err = dispatch(argv("serve --graph rmat10 --reqests 10")).unwrap_err();
        assert!(err.0.contains("--reqests"), "{err}");
    }

    #[test]
    fn serve_with_file_graph_sanitizer_and_no_batch() {
        let f = tmpfile("serve.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 9 --edges 4000 --out {f}"
        )))
        .unwrap();
        let out = dispatch(argv(&format!(
            "serve --graph {f} --requests 12 --no-batch --fifo --sanitize --devices 2"
        )))
        .unwrap();
        assert_eq!(out.json["report"]["completed"], 12u32);
        // Unbatched: every launch carries exactly one request.
        assert_eq!(out.json["mean_batch_size"].as_f64().unwrap(), 1.0);
        let sans = out.json["sanitizer"].as_array().unwrap();
        assert_eq!(sans.len(), 2, "one report per device");
        assert!(sans
            .iter()
            .all(|s| s["errors"].as_array().unwrap().is_empty()));
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn faults_flag_degrades_run_and_is_survived_by_serve() {
        let f = tmpfile("faults.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 9 --edges 4000 --out {f}"
        )))
        .unwrap();
        // A permanent hang window: the bare engine has no recovery ladder,
        // so `run` reports the typed fault as a named error.
        let plan = tmpfile("hang-plan.json");
        std::fs::write(
            &plan,
            r#"{"seed": 0, "ecc": [], "um": [],
                "hangs": [{"device": 0, "start_ns": 0, "end_ns": 99999999999, "budget_ns": 1000}],
                "pcie": []}"#,
        )
        .unwrap();
        let err = dispatch(argv(&format!("run {f} --alg bfs --faults {plan}"))).unwrap_err();
        assert!(err.0.contains("kernel_hang"), "{err}");
        // The serving layer survives the same plan: retries, quarantine,
        // then the CPU fallback keeps availability at 1.
        let out = dispatch(argv(&format!(
            "serve --graph {f} --requests 6 --rate 5000 --faults {plan}"
        )))
        .unwrap();
        assert!(out.text.contains("availability"), "{}", out.text);
        assert!(out.text.contains("quarantine"), "{}", out.text);
        let report = &out.json["report"];
        assert_eq!(report["completed"], 6u32);
        assert!(report["degraded"].as_u64().unwrap() > 0);
        assert_eq!(report["availability"].as_f64().unwrap(), 1.0);
        // An empty plan is inert: byte-identical output to no flag at all.
        let empty = tmpfile("empty-plan.json");
        std::fs::write(&empty, "{}").unwrap();
        let with = dispatch(argv(&format!(
            "serve --graph {f} --requests 6 --rate 5000 --faults {empty}"
        )))
        .unwrap();
        let without =
            dispatch(argv(&format!("serve --graph {f} --requests 6 --rate 5000"))).unwrap();
        assert_eq!(with.text, without.text);
        assert_eq!(
            serde_json::to_string(&with.json).unwrap(),
            serde_json::to_string(&without.json).unwrap()
        );
        // A malformed plan is a named error.
        let bad = tmpfile("bad-plan.json");
        std::fs::write(&bad, r#"{"bogus": 1}"#).unwrap();
        let err = dispatch(argv(&format!("run {f} --alg bfs --faults {bad}"))).unwrap_err();
        assert!(err.0.contains("fault plan"), "{err}");
        for p in [f, plan, empty, bad] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn ckpt_interval_flag_arms_rung_zero_of_the_ladder() {
        let f = tmpfile("ckpt.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 10 --edges 8000 --out {f}"
        )))
        .unwrap();
        // A permanent 50 µs hang budget on the single device: long enough
        // that early small-frontier kernels pass (snapshots get taken),
        // short enough to kill the peak-frontier iteration.
        let plan = tmpfile("ckpt-plan.json");
        std::fs::write(
            &plan,
            r#"{"seed": 0, "ecc": [], "um": [],
                "hangs": [{"device": 0, "start_ns": 0, "end_ns": 99999999999, "budget_ns": 50000}],
                "pcie": []}"#,
        )
        .unwrap();
        let out = dispatch(argv(&format!(
            "serve --graph {f} --requests 6 --rate 5000 --faults {plan} --ckpt-interval 2"
        )))
        .unwrap();
        let report = &out.json["report"];
        assert_eq!(
            report["completed"].as_u64().unwrap() + report["rejected"].as_u64().unwrap(),
            6
        );
        assert!(report["checkpoints"].as_u64().unwrap() > 0);
        assert!(out.text.contains("checkpoints:"), "{}", out.text);
        // Without the flag, the report carries no checkpoint traffic and
        // the summary line stays absent.
        let off = dispatch(argv(&format!(
            "serve --graph {f} --requests 6 --rate 5000 --faults {plan}"
        )))
        .unwrap();
        assert_eq!(off.json["report"]["checkpoints"], 0u32);
        assert!(!off.text.contains("checkpoints:"), "{}", off.text);
        for p in [f, plan] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn chaos_subcommand_runs_the_drill_and_writes_artifacts() {
        let dir = tmpfile("chaos-out");
        let out = dispatch(argv(&format!("chaos --out {dir}"))).unwrap();
        assert!(out.text.contains("chaos drill passed"), "{}", out.text);
        assert_eq!(out.json["verification"]["lost"], 0);
        assert_eq!(out.json["verification"]["wrong"], 0);
        let body = std::fs::read_to_string(format!("{dir}/chaos.json")).unwrap();
        assert!(body.contains("\"curve\""));
        assert!(std::path::Path::new(&format!("{dir}/chaos.txt")).exists());
        std::fs::remove_dir_all(&dir).ok();
        // Typo'd flags are named here too.
        let err = dispatch(argv("chaos --fulll")).unwrap_err();
        assert!(err.0.contains("--fulll"), "{err}");
    }

    #[test]
    fn lint_subcommand_is_clean_at_head() {
        // The test binary runs from the workspace (or a crate dir under
        // it), so root discovery finds the real tree.
        let out = dispatch(argv("lint")).unwrap();
        assert!(
            out.text.contains("clean: no non-baselined findings"),
            "{}",
            out.text
        );
        assert_eq!(out.json["clean"], true);
        assert_eq!(out.json["new"], 0u32);
        // A root with no workspace shape is a proper error, not a panic.
        let err = dispatch(argv("lint --root /nonexistent-root")).unwrap_err();
        assert!(err.0.contains("lint did not run"), "{err}");
        // Typo'd flags are named.
        let err = dispatch(argv("lint --rot .")).unwrap_err();
        assert!(err.0.contains("--rot"), "{err}");
    }

    #[test]
    fn datasets_lists_the_suite() {
        let out = dispatch(argv("datasets")).unwrap();
        assert_eq!(out.json.as_array().unwrap().len(), 7);
        assert!(out.text.contains("uk2006"));
    }

    #[test]
    fn device_oom_is_reported() {
        let f = tmpfile("oom.etag");
        dispatch(argv(&format!(
            "generate rmat --scale 12 --edges 80000 --out {f}"
        )))
        .unwrap();
        let err = dispatch(argv(&format!(
            "run {f} --alg bfs --framework cusha --device-mb 1"
        )))
        .unwrap_err();
        assert!(err.0.contains("O.O.M"), "{err}");
        std::fs::remove_file(&f).ok();
    }
}
