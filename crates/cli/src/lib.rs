//! `eta-cli` — command-line interface for the EtaGraph reproduction.
//!
//! The `etagraph` binary generates graphs, inspects them, and runs
//! traversals on the simulated GPU with any framework and ablation flags:
//!
//! ```text
//! etagraph generate rmat --scale 16 --edges 1000000 --max-weight 64 --out g.etag
//! etagraph info g.etag
//! etagraph run g.etag --alg sssp --source 0 --json
//! etagraph run g.etag --alg bfs --framework tigr --device-mb 32
//! etagraph run g.etag --alg bfs --device-mb 2 --profile trace.json
//! ```
//!
//! `--profile FILE` (on `run` and `serve`) enables `eta-prof`, prints the
//! nvprof-style summary, and writes a Chrome trace_event JSON loadable in
//! Perfetto; see PROFILING.md.

pub mod args;
pub mod commands;
