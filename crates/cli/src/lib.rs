//! `eta-cli` — command-line interface for the EtaGraph reproduction.
//!
//! The `etagraph` binary generates graphs, inspects them, and runs
//! traversals on the simulated GPU with any framework and ablation flags:
//!
//! ```text
//! etagraph generate rmat --scale 16 --edges 1000000 --max-weight 64 --out g.etag
//! etagraph info g.etag
//! etagraph run g.etag --alg sssp --source 0 --json
//! etagraph run g.etag --alg bfs --framework tigr --device-mb 32
//! ```

pub mod args;
pub mod commands;
