use eta_cli::commands;
use std::io::Write;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json = argv.iter().any(|a| a == "--json");
    match commands::dispatch(argv) {
        Ok(out) => {
            // Write errors (e.g. EPIPE when piped into `head`) are not our
            // caller's problem — exit quietly like a well-behaved CLI.
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let body = if json {
                serde_json::to_string_pretty(&out.json).expect("serializable output")
            } else {
                out.text.trim_end().to_string()
            };
            let _ = writeln!(lock, "{body}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
