//! Device-resident active set and virtual active set (§IV-A).
//!
//! The active set is "a simple device array" of vertex IDs with an atomic
//! append counter; the virtual active set records the `(ID, Start Index,
//! End Index)` 3-tuples of shadow vertices, stored as three parallel arrays
//! for coalesced access. Counts live in single-word device slots; reading
//! one back (to size the next launch) or resetting it costs a 4-byte PCIe
//! hop — the per-iteration overhead that makes EtaGraph slightly slower than
//! Tigr on the tiny Slashdot graph (Table III).

use eta_mem::system::{DSlice, MemError};
use eta_mem::Ns;
use eta_sim::Device;

/// A device array with an atomic append counter.
#[derive(Debug, Clone, Copy)]
pub struct DeviceQueue {
    pub items: DSlice,
    pub count: DSlice,
    pub capacity: u32,
}

impl DeviceQueue {
    pub fn alloc(dev: &mut Device, capacity: u32) -> Result<DeviceQueue, MemError> {
        let items = dev.mem.alloc_explicit(capacity.max(1) as u64)?;
        let count = dev.mem.alloc_explicit(1)?;
        Ok(DeviceQueue {
            items,
            count,
            capacity,
        })
    }

    /// Reads the count back to the host (4-byte device→host transfer).
    pub fn read_count(&self, dev: &mut Device, now: Ns) -> (u32, Ns) {
        let end = dev.mem.copy_d2h(self.count, 1, now);
        (dev.mem.host_read(self.count, 0, 1)[0], end)
    }

    /// Resets the counter to zero (4-byte host→device transfer).
    pub fn reset(&self, dev: &mut Device, now: Ns) -> Ns {
        dev.mem.copy_h2d(self.count, 0, &[0], now)
    }

    /// Host-side push during setup (seeding the source), free of charge —
    /// it rides along with the label initialization copy.
    pub fn host_seed(&self, dev: &mut Device, values: &[u32]) {
        assert!(values.len() as u32 <= self.capacity);
        dev.mem.host_write(self.items, 0, values);
        dev.mem.host_write(self.count, 0, &[values.len() as u32]);
    }

    /// Returns the queue's device capacity (registry eviction path).
    pub fn release(self, dev: &mut Device) {
        dev.mem.free_explicit(self.items);
        dev.mem.free_explicit(self.count);
    }
}

/// The virtual active set: shadow-vertex 3-tuples in structure-of-arrays
/// form, plus the append counter.
#[derive(Debug, Clone, Copy)]
pub struct VirtualQueue {
    pub ids: DSlice,
    pub starts: DSlice,
    pub ends: DSlice,
    pub count: DSlice,
    pub capacity: u32,
}

impl VirtualQueue {
    pub fn alloc(dev: &mut Device, capacity: u32) -> Result<VirtualQueue, MemError> {
        let cap = capacity.max(1) as u64;
        Ok(VirtualQueue {
            ids: dev.mem.alloc_explicit(cap)?,
            starts: dev.mem.alloc_explicit(cap)?,
            ends: dev.mem.alloc_explicit(cap)?,
            count: dev.mem.alloc_explicit(1)?,
            capacity,
        })
    }

    pub fn read_count(&self, dev: &mut Device, now: Ns) -> (u32, Ns) {
        let end = dev.mem.copy_d2h(self.count, 1, now);
        (dev.mem.host_read(self.count, 0, 1)[0], end)
    }

    pub fn reset(&self, dev: &mut Device, now: Ns) -> Ns {
        dev.mem.copy_h2d(self.count, 0, &[0], now)
    }

    /// Returns the queue's device capacity (registry eviction path).
    pub fn release(self, dev: &mut Device) {
        for s in [self.ids, self.starts, self.ends, self.count] {
            dev.mem.free_explicit(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_sim::GpuConfig;

    #[test]
    fn queue_roundtrip_and_costs() {
        let mut dev = Device::new(GpuConfig::default_preset());
        let q = DeviceQueue::alloc(&mut dev, 100).unwrap();
        q.host_seed(&mut dev, &[7, 8, 9]);
        let (count, t) = q.read_count(&mut dev, 0);
        assert_eq!(count, 3);
        assert!(t > 0, "readback crosses PCIe");
        let t2 = q.reset(&mut dev, t);
        assert!(t2 > t);
        let (count, _) = q.read_count(&mut dev, t2);
        assert_eq!(count, 0);
    }

    #[test]
    fn virtual_queue_allocates_three_arrays() {
        let mut dev = Device::new(GpuConfig::default_preset());
        let before = dev.mem.explicit_used_bytes();
        let q = VirtualQueue::alloc(&mut dev, 1000).unwrap();
        let used = dev.mem.explicit_used_bytes() - before;
        assert!(used >= 3 * 1000 * 4);
        assert_eq!(q.capacity, 1000);
    }

    #[test]
    fn queue_oom_propagates() {
        let mut dev = Device::new(GpuConfig::gtx1080ti_scaled(4096));
        assert!(DeviceQueue::alloc(&mut dev, 10_000).is_err());
    }
}
