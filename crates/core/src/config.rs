//! EtaGraph configuration: the paper's three ablation axes.

/// The traversal algorithms the paper evaluates (§VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Breadth-first search: `label = hops`, relax with `min`.
    Bfs,
    /// Single-source shortest path: `label = Σ weights`, relax with `min`.
    Sssp,
    /// Single-source widest path: `label = min edge weight on path`,
    /// relax with `max`.
    Sswp,
    /// Connected components by min-label propagation: every vertex starts
    /// active with its own ID; labels converge to each component's minimum
    /// vertex ID. Propagation follows out-edges, so run it on a
    /// symmetrized graph for weakly-connected components (an extension
    /// beyond the paper's three traversal algorithms).
    Cc,
}

impl Algorithm {
    pub fn needs_weights(self) -> bool {
        matches!(self, Algorithm::Sssp | Algorithm::Sswp)
    }

    /// Whether the traversal starts from every vertex rather than a source.
    pub fn all_active(self) -> bool {
        matches!(self, Algorithm::Cc)
    }

    /// Label every vertex starts with.
    pub fn init_label(self) -> u32 {
        match self {
            Algorithm::Bfs | Algorithm::Sssp => u32::MAX,
            Algorithm::Sswp => 0,
            // CC labels start at each vertex's own ID; this value is only
            // used for "visited" accounting, which CC never leaves.
            Algorithm::Cc => u32::MAX,
        }
    }

    /// Label of the source vertex.
    pub fn source_label(self) -> u32 {
        match self {
            Algorithm::Bfs | Algorithm::Sssp => 0,
            Algorithm::Sswp => u32::MAX, // the empty path is infinitely wide
            Algorithm::Cc => 0,          // unused: CC ignores the source
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Bfs => "BFS",
            Algorithm::Sssp => "SSSP",
            Algorithm::Sswp => "SSWP",
            Algorithm::Cc => "CC",
        }
    }

    /// The paper's three traversal algorithms (Table III rows).
    pub const ALL: [Algorithm; 3] = [Algorithm::Bfs, Algorithm::Sssp, Algorithm::Sswp];
}

/// How graph topology reaches the device (§IV-B and the Fig. 6 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// Unified Memory with demand paging ("EtaGraph w/o UMP").
    Unified,
    /// Unified Memory plus `cudaMemPrefetchAsync` at start ("EtaGraph").
    UnifiedPrefetch,
    /// `cudaMalloc` + upfront `cudaMemcpy` ("w/o UM"); can go out of memory.
    ExplicitCopy,
    /// Pinned host memory mapped into the device; every access crosses the
    /// interconnect (§IV-B discusses this alternative).
    ZeroCopy,
    /// HyTGraph-style hybrid: unified allocation whose 64 KiB page groups
    /// are each served by demand paging, prefetch, or zero-copy, re-decided
    /// every iteration from observed access density (see
    /// `eta_mem::adaptive`). Labels are byte-identical to every static mode
    /// — only timing differs.
    Adaptive,
}

impl TransferMode {
    /// CLI spelling (`--transfer {demand,prefetch,zerocopy,adaptive}`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "demand" => Some(TransferMode::Unified),
            "prefetch" => Some(TransferMode::UnifiedPrefetch),
            "explicit" => Some(TransferMode::ExplicitCopy),
            "zerocopy" => Some(TransferMode::ZeroCopy),
            "adaptive" => Some(TransferMode::Adaptive),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            TransferMode::Unified => "demand",
            TransferMode::UnifiedPrefetch => "prefetch",
            TransferMode::ExplicitCopy => "explicit",
            TransferMode::ZeroCopy => "zerocopy",
            TransferMode::Adaptive => "adaptive",
        }
    }

    /// Whether graph topology lives in explicit device allocations (the
    /// footprint accounting serve admission keys on). Every other mode keeps
    /// topology host-backed.
    pub fn topology_is_explicit(self) -> bool {
        matches!(self, TransferMode::ExplicitCopy)
    }
}

/// Where the Unified Degree Cut transformation runs (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdcMode {
    /// The paper's choice: shadow tuples are generated **on the GPU** each
    /// iteration, directly from the raw CSR offsets. No extra memory, no
    /// preprocessing, nothing extra to transfer.
    InCore,
    /// The alternative §III-A describes and rejects: materialize every
    /// vertex's shadow tuples in main memory upfront and ship them to the
    /// device — saving the on-the-fly division at the price of `3|N| + |V|`
    /// extra words of memory and transfer.
    OutOfCore,
}

/// Full EtaGraph configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtaConfig {
    /// The Unified Degree Cut limit `K` (shadow vertices have degree ≤ K).
    pub k: u32,
    /// Shared Memory Prefetch on/off (the "w/o SMP" ablation).
    pub smp: bool,
    pub transfer: TransferMode,
    /// In-core (on-the-fly) vs out-of-core (pre-materialized) UDC.
    pub udc: UdcMode,
    /// Direction-optimizing BFS: switch to pull-based iterations when the
    /// frontier covers a large share of the graph (Beamer et al.; listed by
    /// the paper as specialized related work, implemented here as an
    /// extension). Only affects [`Algorithm::Bfs`].
    pub direction_optimizing: bool,
    /// Threads per block for all kernels.
    pub threads_per_block: u32,
}

impl Default for EtaConfig {
    fn default() -> Self {
        EtaConfig {
            k: 16,
            smp: true,
            transfer: TransferMode::UnifiedPrefetch,
            udc: UdcMode::InCore,
            direction_optimizing: false,
            threads_per_block: 256,
        }
    }
}

impl EtaConfig {
    /// The paper's headline configuration ("EtaGraph").
    pub fn paper() -> Self {
        Self::default()
    }

    /// "EtaGraph w/o UMP": demand paging instead of prefetch.
    pub fn without_ump() -> Self {
        EtaConfig {
            transfer: TransferMode::Unified,
            ..Self::default()
        }
    }

    /// "w/o SMP" ablation of Fig. 6.
    pub fn without_smp() -> Self {
        EtaConfig {
            smp: false,
            ..Self::default()
        }
    }

    /// "w/o UM" ablation of Fig. 6 (plain device allocation + memcpy).
    pub fn without_um() -> Self {
        EtaConfig {
            transfer: TransferMode::ExplicitCopy,
            ..Self::default()
        }
    }

    /// The out-of-core UDC alternative §III-A rejects.
    pub fn out_of_core() -> Self {
        EtaConfig {
            udc: UdcMode::OutOfCore,
            ..Self::default()
        }
    }

    /// Direction-optimizing BFS extension enabled.
    pub fn direction_optimizing() -> Self {
        EtaConfig {
            direction_optimizing: true,
            ..Self::default()
        }
    }

    /// Zero-copy transfer backend (EMOGI-style direct host access).
    pub fn zero_copy() -> Self {
        EtaConfig {
            transfer: TransferMode::ZeroCopy,
            ..Self::default()
        }
    }

    /// Adaptive per-region transfer policy (HyTGraph-style).
    pub fn adaptive() -> Self {
        EtaConfig {
            transfer: TransferMode::Adaptive,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_label_conventions() {
        assert_eq!(Algorithm::Bfs.init_label(), u32::MAX);
        assert_eq!(Algorithm::Bfs.source_label(), 0);
        assert_eq!(Algorithm::Sswp.init_label(), 0);
        assert_eq!(Algorithm::Sswp.source_label(), u32::MAX);
        assert!(!Algorithm::Bfs.needs_weights());
        assert!(Algorithm::Sssp.needs_weights());
        assert!(Algorithm::Sswp.needs_weights());
    }

    #[test]
    fn config_variants() {
        assert_eq!(EtaConfig::paper().transfer, TransferMode::UnifiedPrefetch);
        assert_eq!(EtaConfig::without_ump().transfer, TransferMode::Unified);
        assert!(!EtaConfig::without_smp().smp);
        assert_eq!(EtaConfig::without_um().transfer, TransferMode::ExplicitCopy);
        assert_eq!(EtaConfig::adaptive().transfer, TransferMode::Adaptive);
        assert_eq!(EtaConfig::zero_copy().transfer, TransferMode::ZeroCopy);
        assert_eq!(EtaConfig::default().k, 16);
    }

    #[test]
    fn transfer_mode_parse_roundtrip() {
        for m in [
            TransferMode::Unified,
            TransferMode::UnifiedPrefetch,
            TransferMode::ExplicitCopy,
            TransferMode::ZeroCopy,
            TransferMode::Adaptive,
        ] {
            assert_eq!(TransferMode::parse(m.as_str()), Some(m));
            assert_eq!(m.topology_is_explicit(), m == TransferMode::ExplicitCopy);
        }
        assert_eq!(TransferMode::parse("um"), None);
        assert_eq!(TransferMode::parse(""), None);
    }
}
