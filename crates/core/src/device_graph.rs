//! Graph topology on the device, under one of the transfer policies.
//!
//! This is where the paper's data-management story lives: EtaGraph keeps the
//! CSR arrays (and weights) in Unified Memory so they migrate page by page
//! as the traversal touches them, while the baselines (and the "w/o UM"
//! ablation) must explicitly allocate and copy everything upfront —
//! potentially running out of device memory.

use crate::config::TransferMode;
use eta_graph::Csr;
use eta_mem::system::{DSlice, MemError};
use eta_mem::Ns;
use eta_sim::Device;

/// CSR topology resident (or residable) on the device.
#[derive(Debug, Clone, Copy)]
pub struct DeviceGraph {
    pub n: u32,
    pub m: u32,
    pub row_offsets: DSlice,
    pub col_idx: DSlice,
    pub weights: Option<DSlice>,
    pub mode: TransferMode,
}

impl DeviceGraph {
    /// Places `csr` on `dev` under `mode`, starting transfers at `now`.
    ///
    /// Returns the device graph and the time at which *synchronous* setup
    /// completes. Asynchronous work (UM prefetch) is scheduled but not
    /// waited for — kernels stall on page arrival instead, which is exactly
    /// the overlap the paper exploits.
    pub fn upload(
        dev: &mut Device,
        csr: &Csr,
        mode: TransferMode,
        now: Ns,
    ) -> Result<(DeviceGraph, Ns), MemError> {
        let n = csr.n() as u32;
        let m = csr.m() as u32;
        let ro_len = csr.row_offsets.len() as u64;
        let ci_len = csr.col_idx.len() as u64;

        let (row_offsets, col_idx, weights, end) = match mode {
            TransferMode::Unified | TransferMode::UnifiedPrefetch | TransferMode::Adaptive => {
                let ro = dev.mem.alloc_unified(ro_len);
                let ci = dev.mem.alloc_unified(ci_len.max(1));
                let w = csr
                    .weights
                    .as_ref()
                    .map(|_| dev.mem.alloc_unified(ci_len.max(1)));
                // Host-side writes: UM data starts on the host at no device
                // transfer cost (that is the whole point).
                dev.mem.host_write(ro, 0, &csr.row_offsets);
                dev.mem.host_write(ci, 0, &csr.col_idx);
                if let (Some(ws), Some(wdata)) = (w, &csr.weights) {
                    dev.mem.host_write(ws, 0, wdata);
                }
                // Adaptive: same unified allocations, with the per-group
                // policy manager observing them. Every group starts on demand
                // paging; the engine drives transitions via `adaptive_tick`.
                if mode == TransferMode::Adaptive {
                    dev.mem.enable_adaptive(ro);
                    dev.mem.enable_adaptive(ci);
                    if let Some(ws) = w {
                        dev.mem.enable_adaptive(ws);
                    }
                }
                // Note: `cudaMemPrefetchAsync` is issued by the engine after
                // the label initialization copies, matching Procedure 1's
                // statement order (see [`DeviceGraph::prefetch`]).
                (ro, ci, w, now)
            }
            TransferMode::ExplicitCopy => {
                let ro = dev.mem.alloc_explicit(ro_len)?;
                let ci = dev.mem.alloc_explicit(ci_len.max(1))?;
                let w = match &csr.weights {
                    Some(_) => Some(dev.mem.alloc_explicit(ci_len.max(1))?),
                    None => None,
                };
                let mut end = dev.mem.copy_h2d(ro, 0, &csr.row_offsets, now);
                end = dev.mem.copy_h2d(ci, 0, &csr.col_idx, end);
                if let (Some(ws), Some(wdata)) = (w, &csr.weights) {
                    end = dev.mem.copy_h2d(ws, 0, wdata, end);
                }
                (ro, ci, w, end)
            }
            TransferMode::ZeroCopy => {
                let ro = dev.mem.alloc_zero_copy(ro_len);
                let ci = dev.mem.alloc_zero_copy(ci_len.max(1));
                let w = csr
                    .weights
                    .as_ref()
                    .map(|_| dev.mem.alloc_zero_copy(ci_len.max(1)));
                dev.mem.host_write(ro, 0, &csr.row_offsets);
                dev.mem.host_write(ci, 0, &csr.col_idx);
                if let (Some(ws), Some(wdata)) = (w, &csr.weights) {
                    dev.mem.host_write(ws, 0, wdata);
                }
                (ro, ci, w, now)
            }
        };

        Ok((
            DeviceGraph {
                n,
                m,
                row_offsets,
                col_idx,
                weights,
                mode,
            },
            end,
        ))
    }

    /// Retires the topology from the device: explicit copies return their
    /// capacity, unified regions drop page residency back to the UM budget,
    /// zero-copy mappings never held device memory. Used by the serving
    /// layer's registry eviction.
    pub fn release(self, dev: &mut Device) {
        for s in [Some(self.row_offsets), Some(self.col_idx), self.weights]
            .into_iter()
            .flatten()
        {
            match self.mode {
                TransferMode::ExplicitCopy => dev.mem.free_explicit(s),
                TransferMode::Unified | TransferMode::UnifiedPrefetch | TransferMode::Adaptive => {
                    dev.mem.invalidate_unified(s)
                }
                TransferMode::ZeroCopy => {}
            }
        }
    }

    /// Issues `cudaMemPrefetchAsync` for the topology arrays (only in
    /// [`TransferMode::UnifiedPrefetch`]). Asynchronous: the chunks queue on
    /// the link and pages gain arrival times, but the call returns at `now`.
    pub fn prefetch(&self, dev: &mut Device, now: Ns) {
        if self.mode != TransferMode::UnifiedPrefetch {
            return;
        }
        dev.mem.prefetch(self.row_offsets, now);
        dev.mem.prefetch(self.col_idx, now);
        if let Some(ws) = self.weights {
            dev.mem.prefetch(ws, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_sim::GpuConfig;

    fn small_graph() -> Csr {
        rmat(&RmatConfig::paper(10, 8_000, 3)).with_random_weights(1, 32)
    }

    #[test]
    fn unified_upload_is_instant_and_never_oom() {
        let mut dev = Device::new(GpuConfig::gtx1080ti_scaled(1024)); // 1 KiB device!
        let g = small_graph();
        let (dg, end) = DeviceGraph::upload(&mut dev, &g, TransferMode::Unified, 0).unwrap();
        assert_eq!(end, 0, "UM upload costs nothing upfront");
        assert_eq!(dg.n as usize, g.n());
        assert!(dg.weights.is_some());
    }

    #[test]
    fn explicit_upload_charges_the_link_and_can_oom() {
        let mut dev = Device::new(GpuConfig::default_preset());
        let g = small_graph();
        let (_, end) = DeviceGraph::upload(&mut dev, &g, TransferMode::ExplicitCopy, 0).unwrap();
        assert!(end > 0, "memcpy takes time");
        assert!(dev.mem.pcie.bytes_moved() >= g.topology_bytes());

        let mut tiny = Device::new(GpuConfig::gtx1080ti_scaled(1024));
        let err = DeviceGraph::upload(&mut tiny, &g, TransferMode::ExplicitCopy, 0);
        assert!(matches!(err, Err(MemError::Oom { .. })));
    }

    #[test]
    fn prefetch_schedules_transfers() {
        let mut dev = Device::new(GpuConfig::default_preset());
        let g = small_graph();
        let (dg, end) =
            DeviceGraph::upload(&mut dev, &g, TransferMode::UnifiedPrefetch, 0).unwrap();
        assert_eq!(end, 0, "upload itself is free under UM");
        assert_eq!(dev.mem.pcie.bytes_moved(), 0);
        dg.prefetch(&mut dev, 0);
        assert!(
            dev.mem.pcie.bytes_moved() >= g.topology_bytes() / 2,
            "prefetch streams the topology"
        );
        // Prefetch in non-prefetch mode is a no-op.
        let mut dev2 = Device::new(GpuConfig::default_preset());
        let (dg2, _) = DeviceGraph::upload(&mut dev2, &g, TransferMode::Unified, 0).unwrap();
        dg2.prefetch(&mut dev2, 0);
        assert_eq!(dev2.mem.pcie.bytes_moved(), 0);
    }

    #[test]
    fn device_values_match_host() {
        let mut dev = Device::new(GpuConfig::default_preset());
        let g = small_graph();
        let (dg, _) = DeviceGraph::upload(&mut dev, &g, TransferMode::ExplicitCopy, 0).unwrap();
        assert_eq!(dev.mem.host_read(dg.row_offsets, 0, 5), &g.row_offsets[..5]);
        assert_eq!(dev.mem.host_read(dg.col_idx, 0, 5), &g.col_idx[..5]);
    }
}
