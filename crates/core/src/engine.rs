//! The EtaGraph iteration engine — Procedure 1 of the paper.
//!
//! ```text
//! Load data into UM allocation CSR;        (DeviceGraph::upload)
//! Init label and transfer to GPU;
//! Allocate actSet / virtActSet at GPU;
//! Init actSet;  cudaMemPrefetchAsync(CSR); (UnifiedPrefetch mode)
//! while actSet not empty:
//!     actSet2virtActSet();                 (ActToVirtKernel, on-device UDC)
//!     invokeKernel(alg, virtActSet.size)   (TraversalKernel × {full, tail})
//! ```
//!
//! Timing composition: each launch starts when its inputs are ready; the
//! iteration advances to `max(kernel end, latest UM page arrival)`, so
//! demand-paged transfers overlap compute exactly as Fig. 4 shows. Count
//! readbacks and counter resets are explicit 4-byte PCIe hops — the
//! per-iteration overhead that costs EtaGraph its lead on tiny graphs.
//!
//! Two optional variants branch off the main loop:
//!
//! * [`UdcMode::OutOfCore`] replaces the on-the-fly UDC with a
//!   pre-materialized shadow table (§III-A's rejected alternative);
//! * `direction_optimizing` switches BFS iterations whose frontier spans a
//!   large fraction of the edges to pull-based processing over the
//!   transposed graph.

use crate::active_set::{DeviceQueue, VirtualQueue};
use crate::config::{Algorithm, EtaConfig, TransferMode, UdcMode};
use crate::device_graph::DeviceGraph;
use crate::error::{check_source, QueryError};
use crate::kernels::{PullBfsKernel, TraversalKernel};
use crate::result::{IterationStats, RunResult};
use crate::udc::{ActToVirtKernel, ExpandFromTableKernel, ShadowTable};
use eta_ckpt::{Checkpoint, CkptCtl, CkptError, CkptState};
use eta_graph::Csr;
use eta_mem::system::{DSlice, MemError};
use eta_prof::Track;
use eta_sim::{Device, KernelMetrics, LaunchConfig};

/// Device-resident out-of-core shadow table.
pub(crate) struct DeviceShadowTable {
    ids: DSlice,
    starts: DSlice,
    ends: DSlice,
    vertex_range: DSlice,
}

/// Transposed topology for pull iterations.
pub(crate) struct PullGraph {
    row_offsets: DSlice,
    col_idx: DSlice,
}

/// Pull when `frontier_out_edges * PULL_ALPHA > |E|` (Beamer's alpha).
const PULL_ALPHA: u64 = 20;

/// Everything a traversal needs on the device besides per-query label
/// state: topology, work queues, and the optional out-of-core table /
/// transposed graph. Built once by [`prepare`], reusable across queries
/// (see [`crate::session::Session`]).
pub struct QueryResources {
    pub(crate) dg: DeviceGraph,
    pub(crate) pull: Option<PullGraph>,
    pub(crate) labels: DSlice,
    pub(crate) tags: DSlice,
    pub(crate) act: DeviceQueue,
    pub(crate) next: DeviceQueue,
    pub(crate) full: VirtualQueue,
    pub(crate) partial: VirtualQueue,
    pub(crate) shadow_table: Option<DeviceShadowTable>,
}

impl QueryResources {
    /// The resident topology these resources were prepared for.
    pub fn device_graph(&self) -> &DeviceGraph {
        &self.dg
    }

    /// Returns every explicit allocation's capacity to the device and drops
    /// unified residency, so another graph can take this one's place (the
    /// serving layer's eviction path). The bump storage itself is not
    /// reclaimed — see [`eta_mem::system::MemSystem::free_explicit`].
    pub fn release(self, dev: &mut Device) {
        self.dg.release(dev);
        if let Some(pg) = self.pull {
            dev.mem.invalidate_unified(pg.row_offsets);
            dev.mem.invalidate_unified(pg.col_idx);
            dev.mem.free_explicit(pg.row_offsets);
            dev.mem.free_explicit(pg.col_idx);
        }
        dev.mem.free_explicit(self.labels);
        dev.mem.free_explicit(self.tags);
        self.act.release(dev);
        self.next.release(dev);
        self.full.release(dev);
        self.partial.release(dev);
        if let Some(t) = self.shadow_table {
            for s in [t.ids, t.starts, t.ends, t.vertex_range] {
                dev.mem.free_explicit(s);
            }
        }
    }
}

/// Uploads the topology and allocates every reusable device structure.
/// Returns the resources and the time at which synchronous setup completed.
pub fn prepare(
    dev: &mut Device,
    csr: &Csr,
    cfg: &EtaConfig,
    enable_pull: bool,
) -> Result<(QueryResources, eta_mem::Ns), MemError> {
    let n = csr.n() as u32;
    let m = csr.m() as u64;
    let (dg, mut now) = DeviceGraph::upload(dev, csr, cfg.transfer, 0)?;

    // Direction-optimizing BFS additionally needs the transposed topology.
    let pull = if enable_pull && cfg.direction_optimizing && m > 0 {
        let transposed = csr.transpose();
        let (tg, end) = DeviceGraph::upload(dev, &transposed, cfg.transfer, now)?;
        now = end;
        tg.prefetch(dev, now);
        Some(PullGraph {
            row_offsets: tg.row_offsets,
            col_idx: tg.col_idx,
        })
    } else {
        None
    };

    let labels = dev.mem.alloc_explicit(n as u64)?;
    let tags = dev.mem.alloc_explicit(n as u64)?;
    let act = DeviceQueue::alloc(dev, n)?;
    let next = DeviceQueue::alloc(dev, n)?;

    // Virtual active sets. In-core UDC bounds the full queue by |E|/K and
    // the tail queue by |V|; the out-of-core table needs capacity for every
    // shadow of the graph at once — part of its extra-memory cost.
    let (full, partial, shadow_table) = match cfg.udc {
        UdcMode::InCore => {
            let full_cap = (csr.m() as u32 / cfg.k).max(1) + 1;
            (
                VirtualQueue::alloc(dev, full_cap)?,
                VirtualQueue::alloc(dev, n)?,
                None,
            )
        }
        UdcMode::OutOfCore => {
            let table = ShadowTable::build(csr, cfg.k);
            let n_shadows = table.len() as u32;
            let ids = dev.mem.alloc_explicit(n_shadows.max(1) as u64)?;
            let starts = dev.mem.alloc_explicit(n_shadows.max(1) as u64)?;
            let ends = dev.mem.alloc_explicit(n_shadows.max(1) as u64)?;
            let vertex_range = dev.mem.alloc_explicit(n as u64 + 1)?;
            // The table must be shipped to the device — the loading cost
            // §III-A says in-core UDC avoids.
            if n_shadows > 0 {
                now = dev.mem.copy_h2d(ids, 0, &table.ids, now);
                now = dev.mem.copy_h2d(starts, 0, &table.starts, now);
                now = dev.mem.copy_h2d(ends, 0, &table.ends, now);
            }
            now = dev.mem.copy_h2d(vertex_range, 0, &table.vertex_range, now);
            let queue = VirtualQueue::alloc(dev, n_shadows.max(1))?;
            (
                queue, // single mixed-degree queue
                VirtualQueue::alloc(dev, 1)?,
                Some(DeviceShadowTable {
                    ids,
                    starts,
                    ends,
                    vertex_range,
                }),
            )
        }
    };
    Ok((
        QueryResources {
            dg,
            pull,
            labels,
            tags,
            act,
            next,
            full,
            partial,
            shadow_table,
        },
        now,
    ))
}

/// Runs one traversal on a fresh device state.
///
/// `csr` must carry weights when `alg` needs them. Returns
/// [`QueryError::SourceOutOfRange`] for a source id that is not a vertex,
/// and [`QueryError::Mem`] when the configured transfer mode requires
/// explicit device allocations that do not fit (the "w/o UM" ablation on
/// uk-2006).
pub fn run(
    dev: &mut Device,
    csr: &Csr,
    source: u32,
    alg: Algorithm,
    cfg: &EtaConfig,
) -> Result<RunResult, QueryError> {
    check_source(source, csr.n())?;
    let (res, ready) = prepare(dev, csr, cfg, alg == Algorithm::Bfs)?;
    // Single-shot semantics: preparation (upload, table copies) is part of
    // the measured total, so the query "starts" at time zero.
    run_query(dev, &res, csr, source, alg, cfg, 0, ready)
}

/// Runs one query on already-prepared resources.
///
/// `query_start` anchors the measured total and the timeline filter;
/// `ready_ns` is when the resources become usable (per-query work begins at
/// the later of the two). Per-query state (labels, tags, frontier seed) is
/// re-initialized and charged; the topology and work queues of `res` are
/// reused, so a warm query on a [`crate::session::Session`] skips the
/// upload entirely.
#[allow(clippy::too_many_arguments)]
pub fn run_query(
    dev: &mut Device,
    res: &QueryResources,
    csr: &Csr,
    source: u32,
    alg: Algorithm,
    cfg: &EtaConfig,
    query_start: eta_mem::Ns,
    ready_ns: eta_mem::Ns,
) -> Result<RunResult, QueryError> {
    run_query_ckpt(
        dev,
        res,
        csr,
        source,
        alg,
        cfg,
        query_start,
        ready_ns,
        CkptCtl::off(),
    )
}

/// [`run_query`] with checkpoint/resume control (see eta-ckpt). With
/// `CkptCtl::off()` this is byte-identical to the plain path; with a due
/// sink it snapshots labels + tags + the frontier in queue order at
/// iteration boundaries (charged PCIe d2h traffic); with a resume snapshot
/// it restores that state instead of initializing, continuing the
/// uninterrupted run's remaining iterations byte-for-byte.
#[allow(clippy::too_many_arguments)]
pub fn run_query_ckpt(
    dev: &mut Device,
    res: &QueryResources,
    csr: &Csr,
    source: u32,
    alg: Algorithm,
    cfg: &EtaConfig,
    query_start: eta_mem::Ns,
    ready_ns: eta_mem::Ns,
    mut ckpt: CkptCtl<'_>,
) -> Result<RunResult, QueryError> {
    assert!(
        !alg.needs_weights() || csr.is_weighted(),
        "{} needs an edge-weighted graph",
        alg.name()
    );
    check_source(source, csr.n())?;
    let n = csr.n() as u32;
    let m = csr.m() as u64;
    let tpb = cfg.threads_per_block;
    let mut now = query_start.max(ready_ns);
    let QueryResources {
        dg,
        pull,
        labels,
        tags,
        act,
        next,
        full,
        partial,
        shadow_table,
    } = res;
    let (labels, tags) = (*labels, *tags);
    let (full, partial) = (*full, *partial);
    let pull = if alg == Algorithm::Bfs {
        pull.as_ref()
    } else {
        None
    };

    let (start_iter, start_len) = if let Some(ck) = ckpt.resume {
        // Resume: restore the snapshot instead of initializing. A stale or
        // mismatched snapshot is a typed error the serving layer downgrades
        // to restart-from-scratch.
        ck.validate(ckpt.graph_digest, n)?;
        let (ck_source, ck_labels, ck_tags, ck_frontier) = match &ck.state {
            CkptState::SingleSource {
                source: s,
                labels,
                tags,
                frontier,
            } => (*s, labels, tags, frontier),
            _ => return Err(CkptError::StateShape.into()),
        };
        if ck_source != source || ck_labels.len() != n as usize || ck_tags.len() != n as usize {
            return Err(CkptError::StateShape.into());
        }
        now = dev.mem.copy_h2d(labels, 0, ck_labels, now);
        now = dev.mem.copy_h2d(tags, 0, ck_tags, now);
        act.host_seed(dev, ck_frontier);
        now = dev
            .mem
            .copy_h2d(act.count, 0, &[ck_frontier.len() as u32], now);
        dg.prefetch(dev, now);
        if dev.mem.prof.is_enabled() {
            dev.mem.prof.record(
                Track::Ckpt,
                "resume",
                query_start.max(ready_ns),
                now,
                vec![
                    ("iteration", ck.iteration.into()),
                    ("words", ck.payload_words().into()),
                    ("kind", ck.state.kind().into()),
                ],
            );
        }
        (ck.iteration, ck_frontier.len() as u32)
    } else {
        // "Init label and transfer to GPU": one |V|-word copy each for labels
        // and tags. Connected components is all-active: every vertex seeds the
        // first frontier carrying its own ID.
        let init: Vec<u32> = if alg.all_active() {
            (0..n).collect()
        } else {
            let mut v = vec![alg.init_label(); n as usize];
            v[source as usize] = alg.source_label();
            v
        };
        now = dev.mem.copy_h2d(labels, 0, &init, now);
        now = dev.mem.copy_h2d(tags, 0, &vec![0u32; n as usize], now);
        let seeds: Vec<u32> = if alg.all_active() {
            (0..n).collect()
        } else {
            vec![source]
        };
        act.host_seed(dev, &seeds);
        now = dev.mem.copy_h2d(act.count, 0, &[seeds.len() as u32], now);

        // Procedure 1: `cudaMemPrefetchAsync(CSR)` after the label transfer.
        // Idempotent on warm sessions: already-resident pages move nothing.
        dg.prefetch(dev, now);
        (0, if alg.all_active() { n } else { 1 })
    };

    // --- iterate until the active set drains --------------------------------
    let mut queues = (*act, *next);
    let mut act_len = start_len;
    let mut iter = start_iter;
    let mut per_iteration = Vec::new();
    let mut metrics = KernelMetrics::default();
    let mut kernel_ns = 0u64;
    let init_label = alg.init_label();

    while act_len > 0 {
        iter += 1;
        // Adaptive transfer policy: fold last iteration's access density
        // into per-group backend decisions before this iteration's kernels
        // touch memory, announcing the coming frontier's edge volume so a
        // dense wave escalates regions to streaming *before* it breaks
        // (observer-side degree sum, like the pull check below).
        // Fire-and-forget like `dg.prefetch` — transitions queue on the
        // link and kernels stall on page arrival.
        if cfg.transfer == TransferMode::Adaptive {
            let frontier = dev.mem.host_read(queues.0.items, 0, act_len as u64);
            let out_edges: u64 = frontier
                .iter()
                .map(|&v| (csr.row_offsets[v as usize + 1] - csr.row_offsets[v as usize]) as u64)
                .sum();
            dev.mem.adaptive_tick(now, out_edges * 4);
        }
        let start_ns = now;
        let (act, next) = (&queues.0, &queues.1);
        now = next.reset(dev, now);

        // Direction decision (observer-side; real implementations track
        // frontier edge counts while building the frontier).
        let use_pull = pull.is_some() && {
            let frontier = dev.mem.host_read(act.items, 0, act_len as u64);
            let out_edges: u64 = frontier
                .iter()
                .map(|&v| (csr.row_offsets[v as usize + 1] - csr.row_offsets[v as usize]) as u64)
                .sum();
            out_edges * PULL_ALPHA > m
        };

        let (nf, np) = if use_pull {
            let pg = pull.expect("checked above");
            let kern = PullBfsKernel {
                n,
                t_row_offsets: pg.row_offsets,
                t_col_idx: pg.col_idx,
                labels,
                next: *next,
                iter,
            };
            let r = dev.launch(&kern, LaunchConfig::for_items(n, tpb), now);
            now = r.end_ns.max(r.metrics.data_ready_ns);
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;
            if let Some(f) = dev.take_fault() {
                return Err(f.into());
            }
            (0, 0)
        } else {
            // Reset the virtual active sets ("reset when shadow vertices
            // are processed").
            now = full.reset(dev, now);
            if shadow_table.is_none() {
                now = partial.reset(dev, now);
            }

            // UDC: on-the-fly cut or table expansion.
            let r = match &shadow_table {
                None => {
                    let a2v =
                        ActToVirtKernel::new(act, act_len, dg.row_offsets, &full, &partial, cfg.k);
                    dev.launch(&a2v, LaunchConfig::for_items(act_len, tpb), now)
                }
                Some(t) => {
                    let expand = ExpandFromTableKernel {
                        act_items: act.items,
                        act_len,
                        table_ids: t.ids,
                        table_starts: t.starts,
                        table_ends: t.ends,
                        vertex_range: t.vertex_range,
                        out: full,
                    };
                    dev.launch(&expand, LaunchConfig::for_items(act_len, tpb), now)
                }
            };
            now = r.end_ns.max(r.metrics.data_ready_ns);
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;
            if let Some(f) = dev.take_fault() {
                return Err(f.into());
            }

            let (nf, t) = full.read_count(dev, now);
            now = t;
            let np = if shadow_table.is_none() {
                let (np, t) = partial.read_count(dev, now);
                now = t;
                np
            } else {
                0
            };

            // Traverse the uniform-K queue, then the tails (out-of-core mode
            // runs everything through the mixed queue in the "full" slot).
            for (queue, len) in [(full, nf), (partial, np)] {
                if len == 0 {
                    continue;
                }
                let kern = TraversalKernel {
                    alg,
                    smp: cfg.smp,
                    k: cfg.k,
                    queue,
                    len,
                    col_idx: dg.col_idx,
                    // BFS ignores weights even on a weighted graph.
                    weights: if alg.needs_weights() {
                        dg.weights
                    } else {
                        None
                    },
                    labels,
                    tags,
                    next: *next,
                    iter,
                    threads_per_block: tpb,
                };
                let r = dev.launch(&kern, LaunchConfig::for_items(len, tpb), now);
                now = r.end_ns.max(r.metrics.data_ready_ns);
                metrics.merge(&r.metrics);
                kernel_ns += r.metrics.time_ns;
                if let Some(f) = dev.take_fault() {
                    return Err(f.into());
                }
            }
            (nf, np)
        };

        // Observer-only statistics (no simulated cost): cumulative visits.
        let visited_total = dev
            .mem
            .host_read(labels, 0, n as u64)
            .iter()
            .filter(|&&l| l != init_label)
            .count() as u64;
        if dev.mem.prof.is_enabled() {
            dev.mem.prof.record(
                Track::Iteration,
                alg.name(),
                start_ns,
                now,
                vec![
                    ("iteration", iter.into()),
                    ("active", act_len.into()),
                    ("shadow_full", nf.into()),
                    ("shadow_partial", np.into()),
                    ("pulled", use_pull.into()),
                    ("visited_total", visited_total.into()),
                ],
            );
        }
        per_iteration.push(IterationStats {
            iteration: iter,
            active: act_len,
            shadow_full: nf,
            shadow_partial: np,
            pulled: use_pull,
            visited_total,
            start_ns,
            end_ns: now,
        });

        // Swap frontiers and read the new size.
        queues = (queues.1, queues.0);
        let (len, t) = queues.0.read_count(dev, now);
        act_len = len;
        now = t;

        // Iteration boundary: labels + tags + the frontier in queue order
        // are the complete per-query state (the virtual queues are rebuilt
        // from the frontier every iteration).
        if act_len > 0 {
            if let Some(sink) = ckpt.sink.as_deref_mut() {
                if sink.policy.due(iter) {
                    let ck_start = now;
                    now = dev.mem.copy_d2h(labels, n as u64, now);
                    now = dev.mem.copy_d2h(tags, n as u64, now);
                    now = dev.mem.copy_d2h(queues.0.items, act_len as u64, now);
                    if let Some(f) = dev.take_fault() {
                        return Err(f.into());
                    }
                    let ck = Checkpoint {
                        graph_digest: ckpt.graph_digest,
                        n,
                        iteration: iter,
                        taken_at_ns: now,
                        state: CkptState::SingleSource {
                            source,
                            labels: dev.mem.host_read(labels, 0, n as u64).to_vec(),
                            tags: dev.mem.host_read(tags, 0, n as u64).to_vec(),
                            frontier: dev
                                .mem
                                .host_read(queues.0.items, 0, act_len as u64)
                                .to_vec(),
                        },
                    };
                    if dev.mem.prof.is_enabled() {
                        dev.mem.prof.record(
                            Track::Ckpt,
                            "checkpoint",
                            ck_start,
                            now,
                            vec![
                                ("iteration", iter.into()),
                                ("words", ck.payload_words().into()),
                                ("frontier", act_len.into()),
                            ],
                        );
                    }
                    sink.store(ck);
                }
            }
        }
    }

    // --- results back to the host -------------------------------------------
    now = dev.mem.copy_d2h(labels, n as u64, now);
    if let Some(f) = dev.take_fault() {
        return Err(f.into());
    }
    let labels_host = dev.mem.host_read(labels, 0, n as u64).to_vec();

    // Only this query's spans (warm sessions accumulate earlier queries').
    let mut timeline = eta_mem::Timeline::new();
    for span in dev.merged_timeline().spans() {
        if span.start >= query_start {
            timeline.push(*span);
        }
    }
    Ok(RunResult {
        algorithm: alg,
        labels: labels_host,
        iterations: iter,
        kernel_ns,
        total_ns: now - query_start,
        per_iteration,
        metrics,
        um_stats: dev.mem.um.stats.clone(),
        overlap_fraction: timeline.overlap_fraction(),
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransferMode;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::{reference, INF};
    use eta_sim::GpuConfig;

    fn device() -> Device {
        Device::new(GpuConfig::default_preset())
    }

    fn test_graph() -> Csr {
        rmat(&RmatConfig::paper(11, 30_000, 17)).with_random_weights(9, 32)
    }

    #[test]
    fn bfs_matches_reference_all_modes() {
        let g = test_graph();
        let expect = reference::bfs(&g, 0);
        for transfer in [
            TransferMode::UnifiedPrefetch,
            TransferMode::Unified,
            TransferMode::ExplicitCopy,
            TransferMode::ZeroCopy,
            TransferMode::Adaptive,
        ] {
            let cfg = EtaConfig {
                transfer,
                ..EtaConfig::default()
            };
            let mut dev = device();
            let r = run(&mut dev, &g, 0, Algorithm::Bfs, &cfg).unwrap();
            assert_eq!(r.labels, expect, "mode {transfer:?}");
            assert!(r.iterations > 2);
            assert!(r.total_ns >= r.kernel_ns);
        }
    }

    #[test]
    fn bfs_matches_reference_without_smp() {
        let g = test_graph();
        let expect = reference::bfs(&g, 3);
        let mut dev = device();
        let r = run(&mut dev, &g, 3, Algorithm::Bfs, &EtaConfig::without_smp()).unwrap();
        assert_eq!(r.labels, expect);
    }

    #[test]
    fn resumed_query_matches_uninterrupted_run() {
        let g = test_graph();
        let digest = g.digest();
        let cfg = EtaConfig::paper();
        let expect = reference::sssp(&g, 0);

        let mut dev = device();
        let (res, ready) = prepare(&mut dev, &g, &cfg, false).unwrap();
        let mut sink = eta_ckpt::CkptSink::every(2);
        let r = run_query_ckpt(
            &mut dev,
            &res,
            &g,
            0,
            Algorithm::Sssp,
            &cfg,
            0,
            ready,
            eta_ckpt::CkptCtl::with_sink(&mut sink, digest),
        )
        .unwrap();
        assert_eq!(r.labels, expect, "checkpointing is result-inert");
        let ck = sink.take().unwrap();
        assert!(ck.iteration >= 2);

        let mut dev2 = device();
        let (res2, ready2) = prepare(&mut dev2, &g, &cfg, false).unwrap();
        let mut sink2 = eta_ckpt::CkptSink::default();
        let r2 = run_query_ckpt(
            &mut dev2,
            &res2,
            &g,
            0,
            Algorithm::Sssp,
            &cfg,
            0,
            ready2,
            eta_ckpt::CkptCtl::resuming(&mut sink2, &ck, digest),
        )
        .unwrap();
        assert_eq!(r2.labels, expect, "resume is byte-identical");
        assert_eq!(r2.iterations, r.iterations);
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = test_graph();
        let expect = reference::sssp(&g, 0);
        let mut dev = device();
        let r = run(&mut dev, &g, 0, Algorithm::Sssp, &EtaConfig::paper()).unwrap();
        assert_eq!(r.labels, expect);
    }

    #[test]
    fn sswp_matches_reference() {
        let g = test_graph();
        let expect = reference::sswp(&g, 0);
        let mut dev = device();
        let r = run(&mut dev, &g, 0, Algorithm::Sswp, &EtaConfig::paper()).unwrap();
        assert_eq!(r.labels, expect);
    }

    #[test]
    fn out_of_core_udc_matches_in_core() {
        let g = test_graph();
        for alg in [Algorithm::Bfs, Algorithm::Sssp, Algorithm::Sswp] {
            let mut dev = device();
            let in_core = run(&mut dev, &g, 0, alg, &EtaConfig::paper()).unwrap();
            let mut dev = device();
            let out_core = run(&mut dev, &g, 0, alg, &EtaConfig::out_of_core()).unwrap();
            assert_eq!(in_core.labels, out_core.labels, "{}", alg.name());
            // The rejected variant always ships the shadow table (§III-A's
            // extra loading cost), visible as additional explicit copies.
            let h2d = |r: &crate::result::RunResult| -> u64 {
                r.timeline
                    .spans()
                    .iter()
                    .filter(|s| matches!(s.kind, eta_mem::timeline::SpanKind::CopyH2D))
                    .map(|s| s.bytes)
                    .sum()
            };
            assert!(
                h2d(&out_core) > h2d(&in_core),
                "{}: out-of-core must transfer the table",
                alg.name()
            );
        }
    }

    #[test]
    fn out_of_core_udc_loses_at_scale() {
        // On a large graph the table transfer and memory dominate the
        // per-iteration savings — the reason §III-A picks in-core.
        let g = rmat(&RmatConfig::paper(15, 3_000_000, 71));
        let mut dev = device();
        let in_core = run(&mut dev, &g, 0, Algorithm::Bfs, &EtaConfig::paper()).unwrap();
        let mut dev = device();
        let out_core = run(&mut dev, &g, 0, Algorithm::Bfs, &EtaConfig::out_of_core()).unwrap();
        assert_eq!(in_core.labels, out_core.labels);
        assert!(
            out_core.total_ns > in_core.total_ns,
            "out-of-core at scale: {} vs {}",
            out_core.total_ns,
            in_core.total_ns
        );
    }

    #[test]
    fn direction_optimizing_bfs_matches_reference() {
        let g = test_graph();
        let expect = reference::bfs(&g, 0);
        let mut dev = device();
        let r = run(
            &mut dev,
            &g,
            0,
            Algorithm::Bfs,
            &EtaConfig::direction_optimizing(),
        )
        .unwrap();
        assert_eq!(r.labels, expect);
        // A power-law graph's peak iterations must actually pull.
        assert!(
            r.per_iteration.iter().any(|s| s.pulled),
            "no iteration pulled on a dense-frontier graph"
        );
        assert!(
            !r.per_iteration[0].pulled,
            "the single-source first iteration must push"
        );
    }

    #[test]
    fn direction_optimizing_is_ignored_for_weighted_algorithms() {
        let g = test_graph();
        let mut dev = device();
        let r = run(
            &mut dev,
            &g,
            0,
            Algorithm::Sssp,
            &EtaConfig::direction_optimizing(),
        )
        .unwrap();
        assert_eq!(r.labels, reference::sssp(&g, 0));
        assert!(r.per_iteration.iter().all(|s| !s.pulled));
    }

    #[test]
    fn connected_components_match_union_find() {
        // CC propagates along out-edges, so symmetrize first (WCC).
        let base = rmat(&RmatConfig::paper(11, 18_000, 41));
        let mut edges = base.edge_tuples();
        edges.extend(base.edge_tuples().iter().map(|&(a, b)| (b, a)));
        let g = Csr::from_edges(base.n(), &edges);

        let mut dev = device();
        let r = run(&mut dev, &g, 0, Algorithm::Cc, &EtaConfig::paper()).unwrap();

        // Oracle: min vertex ID per union-find component.
        let mut uf = eta_graph::analysis::UnionFind::new(g.n());
        for (a, b) in g.edge_tuples() {
            uf.union(a, b);
        }
        let mut min_of_root = std::collections::HashMap::new();
        for v in 0..g.n() as u32 {
            let root = uf.find(v);
            let slot = min_of_root.entry(root).or_insert(v);
            *slot = (*slot).min(v);
        }
        for v in 0..g.n() as u32 {
            let expect = min_of_root[&uf.find(v)];
            assert_eq!(r.labels[v as usize], expect, "vertex {v}");
        }
        // All-active: activation is total by construction.
        assert_eq!(r.visited(), g.n());
    }

    #[test]
    fn cc_on_disconnected_islands() {
        // Two islands plus an isolated vertex; labels converge to each
        // island's minimum ID.
        let g = Csr::from_edges(7, &[(0, 1), (1, 0), (1, 2), (2, 1), (4, 5), (5, 4)]);
        let mut dev = device();
        let r = run(&mut dev, &g, 0, Algorithm::Cc, &EtaConfig::paper()).unwrap();
        assert_eq!(r.labels, vec![0, 0, 0, 3, 4, 4, 6]);
    }

    #[test]
    fn per_iteration_stats_are_consistent() {
        let g = test_graph();
        let mut dev = device();
        let r = run(&mut dev, &g, 0, Algorithm::Bfs, &EtaConfig::paper()).unwrap();
        assert_eq!(r.per_iteration.len(), r.iterations as usize);
        // Visits are cumulative and non-decreasing; times are monotone.
        for w in r.per_iteration.windows(2) {
            assert!(w[0].visited_total <= w[1].visited_total);
            assert!(w[0].end_ns <= w[1].start_ns);
        }
        // Active counts match Fig. 2's grow-then-shrink shape: the peak is
        // strictly inside the run for a power-law graph.
        let peak = r.per_iteration.iter().map(|s| s.active).max().unwrap();
        assert!(peak > r.per_iteration[0].active);
        assert!(peak > r.per_iteration.last().unwrap().active);
        // Final visited equals the labels' count.
        assert_eq!(
            r.per_iteration.last().unwrap().visited_total as usize,
            r.visited()
        );
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let mut dev = device();
        let r = run(&mut dev, &g, 0, Algorithm::Bfs, &EtaConfig::paper()).unwrap();
        assert_eq!(r.labels, vec![0, 1, INF, INF]);
        assert_eq!(r.visited(), 2);
    }

    #[test]
    fn single_vertex_graph_terminates() {
        let g = Csr::from_edges(1, &[]);
        let mut dev = device();
        let r = run(&mut dev, &g, 0, Algorithm::Bfs, &EtaConfig::paper()).unwrap();
        assert_eq!(r.labels, vec![0]);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn explicit_mode_ooms_on_tiny_device() {
        let g = test_graph();
        let mut dev = Device::new(GpuConfig::gtx1080ti_scaled(64 * 1024));
        let err = run(&mut dev, &g, 0, Algorithm::Bfs, &EtaConfig::without_um());
        assert!(matches!(err, Err(QueryError::Mem(MemError::Oom { .. }))));
    }

    #[test]
    fn out_of_range_source_is_a_typed_error_not_a_panic() {
        let g = Csr::from_edges(4, &[(0, 1)]);
        let mut dev = device();
        let err = run(&mut dev, &g, 4, Algorithm::Bfs, &EtaConfig::paper()).unwrap_err();
        assert_eq!(
            err,
            QueryError::SourceOutOfRange {
                source: 4,
                vertices: 4
            }
        );
        // The boundary vertex itself is valid and traverses normally.
        let r = run(&mut dev, &g, 3, Algorithm::Bfs, &EtaConfig::paper()).unwrap();
        assert_eq!(r.labels[3], 0);
    }

    #[test]
    fn released_resources_return_their_explicit_capacity() {
        let g = test_graph();
        let mut dev = device();
        let before = dev.mem.explicit_used_bytes();
        let (res, _) = prepare(&mut dev, &g, &EtaConfig::out_of_core(), true).unwrap();
        assert!(dev.mem.explicit_used_bytes() > before);
        res.release(&mut dev);
        assert_eq!(dev.mem.explicit_used_bytes(), before);
    }

    #[test]
    fn smp_reduces_dram_transactions() {
        // The headline Fig. 7 effect, end to end. Needs a graph whose edge
        // array exceeds the 2.75 MiB L2 and enough frontier width for high
        // occupancy — on tiny graphs everything is compulsory misses and SMP
        // can't help (which is also why the paper measures on LiveJournal).
        let g = rmat(&RmatConfig::paper(15, 3_000_000, 17));
        let mut dev = device();
        let with = run(&mut dev, &g, 0, Algorithm::Bfs, &EtaConfig::paper()).unwrap();
        let mut dev = device();
        let without = run(&mut dev, &g, 0, Algorithm::Bfs, &EtaConfig::without_smp()).unwrap();
        assert_eq!(with.labels, without.labels);
        // nvprof's gld_transactions analog: vectorized bursts need far
        // fewer global load transactions (paper Fig. 7: 0.48x).
        assert!(
            (with.metrics.l1_requests as f64) < 0.8 * without.metrics.l1_requests as f64,
            "SMP: {} vs w/o: {}",
            with.metrics.l1_requests,
            without.metrics.l1_requests
        );
        // And the kernel is faster end to end.
        assert!(with.metrics.cycles < without.metrics.cycles);
    }

    #[test]
    fn prefetch_beats_demand_paging_on_full_traversal() {
        // Large enough that demand paging pays many per-batch latencies
        // while prefetch streams a few 2 MiB chunks.
        let g = rmat(&RmatConfig::paper(14, 400_000, 23)).with_random_weights(5, 32);
        let mut dev = device();
        let ump = run(&mut dev, &g, 0, Algorithm::Sssp, &EtaConfig::paper()).unwrap();
        let mut dev = device();
        let no_ump = run(&mut dev, &g, 0, Algorithm::Sssp, &EtaConfig::without_ump()).unwrap();
        assert_eq!(ump.labels, no_ump.labels);
        assert!(
            ump.total_ns < no_ump.total_ns,
            "UMP {} vs w/o UMP {}",
            ump.total_ns,
            no_ump.total_ns
        );
        // Demand paging migrates in small batches; prefetch in 2 MiB chunks.
        assert!(no_ump.um_stats.migration_batches.len() > ump.um_stats.migration_batches.len());
        assert!(!ump.um_stats.prefetch_chunks.is_empty());
    }
}
