//! Typed query-boundary errors.
//!
//! A traversal request can fail for two reasons: the caller asked about a
//! vertex that does not exist, or the device could not hold the working
//! set. Both used to be a mix of panics and raw [`MemError`]s; a serving
//! layer that admits untrusted request streams needs them as values it can
//! turn into per-request rejections instead of process aborts.

use eta_mem::system::MemError;

/// Why a query could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The requested source vertex id is not a vertex of the graph.
    SourceOutOfRange { source: u32, vertices: usize },
    /// Device memory management failed (the paper's "O.O.M").
    Mem(MemError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::SourceOutOfRange { source, vertices } => write!(
                f,
                "source {source} out of range (graph has {vertices} vertices)"
            ),
            QueryError::Mem(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<MemError> for QueryError {
    fn from(e: MemError) -> Self {
        QueryError::Mem(e)
    }
}

/// Validates a source vertex id against a graph's vertex count.
pub fn check_source(source: u32, vertices: usize) -> Result<(), QueryError> {
    if (source as usize) < vertices {
        Ok(())
    } else {
        Err(QueryError::SourceOutOfRange { source, vertices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_boundaries() {
        assert!(check_source(0, 1).is_ok());
        assert!(check_source(9, 10).is_ok());
        let err = check_source(10, 10).unwrap_err();
        assert_eq!(
            err,
            QueryError::SourceOutOfRange {
                source: 10,
                vertices: 10
            }
        );
        assert!(err.to_string().contains("source 10 out of range"));
    }

    #[test]
    fn mem_errors_convert_and_format() {
        let e: QueryError = MemError::Oom {
            requested_bytes: 8,
            free_bytes: 4,
        }
        .into();
        assert!(e.to_string().contains("out of device memory"));
    }
}
