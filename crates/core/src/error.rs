//! Typed query-boundary errors.
//!
//! A traversal request can fail for two reasons: the caller asked about a
//! vertex that does not exist, or the device could not hold the working
//! set. Both used to be a mix of panics and raw [`MemError`]s; a serving
//! layer that admits untrusted request streams needs them as values it can
//! turn into per-request rejections instead of process aborts.

use eta_ckpt::CkptError;
use eta_fault::DeviceFault;
use eta_mem::system::MemError;

/// Why a query could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The requested source vertex id is not a vertex of the graph.
    SourceOutOfRange { source: u32, vertices: usize },
    /// Device memory management failed (the paper's "O.O.M").
    Mem(MemError),
    /// The device failed mid-query (injected ECC error, kernel hang, UM
    /// migration failure — see eta-fault). Unlike the other variants this is
    /// retryable: the serving layer's recovery ladder re-queues, quarantines
    /// the device, and falls back to the CPU reference as a last resort.
    DeviceFault(DeviceFault),
    /// A checkpoint could not be resumed (graph epoch or shape mismatch —
    /// see eta-ckpt). The serving layer treats this as "no usable
    /// checkpoint" and falls back to restart-from-scratch.
    Checkpoint(CkptError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::SourceOutOfRange { source, vertices } => write!(
                f,
                "source {source} out of range (graph has {vertices} vertices)"
            ),
            QueryError::Mem(e) => write!(f, "{e}"),
            QueryError::DeviceFault(fault) => write!(f, "{fault}"),
            QueryError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<MemError> for QueryError {
    fn from(e: MemError) -> Self {
        QueryError::Mem(e)
    }
}

impl From<DeviceFault> for QueryError {
    fn from(f: DeviceFault) -> Self {
        QueryError::DeviceFault(f)
    }
}

impl From<CkptError> for QueryError {
    fn from(e: CkptError) -> Self {
        QueryError::Checkpoint(e)
    }
}

/// Validates a source vertex id against a graph's vertex count.
pub fn check_source(source: u32, vertices: usize) -> Result<(), QueryError> {
    if (source as usize) < vertices {
        Ok(())
    } else {
        Err(QueryError::SourceOutOfRange { source, vertices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_boundaries() {
        assert!(check_source(0, 1).is_ok());
        assert!(check_source(9, 10).is_ok());
        let err = check_source(10, 10).unwrap_err();
        assert_eq!(
            err,
            QueryError::SourceOutOfRange {
                source: 10,
                vertices: 10
            }
        );
        assert!(err.to_string().contains("source 10 out of range"));
    }

    #[test]
    fn device_faults_convert_and_format() {
        let e: QueryError = DeviceFault {
            kind: eta_fault::FaultKind::KernelHang,
            device: 1,
            at_ns: 42,
        }
        .into();
        assert_eq!(
            e.to_string(),
            "device 1 fault kernel_hang at 42 ns",
            "typed fault keeps its provenance through the error"
        );
    }

    #[test]
    fn checkpoint_errors_convert_and_format() {
        let e: QueryError = CkptError::VertexCount {
            expected: 4,
            actual: 5,
        }
        .into();
        assert!(e.to_string().contains("vertex count mismatch"));
    }

    #[test]
    fn mem_errors_convert_and_format() {
        let e: QueryError = MemError::Oom {
            requested_bytes: 8,
            free_bytes: 4,
        }
        .into();
        assert!(e.to_string().contains("out of device memory"));
    }
}
