//! The traversal kernel (Procedure 1's `Kernel BFS()` generalized to the
//! three algorithms), with and without Shared Memory Prefetch.
//!
//! One thread processes one shadow vertex: load its `(ID, Start, End)`
//! tuple, load its source label, then relax each of its ≤K out-edges into
//! the destination labels with an atomic min (max for SSWP). Destinations
//! whose label improves are appended — once per iteration, deduplicated with
//! an iteration-tag array — to the next active set.
//!
//! With SMP enabled (§V-B) the kernel first *bursts* all K neighbor IDs
//! (and weights, when the algorithm needs them) into shared memory with
//! unrolled back-to-back loads, then processes them from shared memory.
//! Because the burst issues its loads consecutively, sectors holding
//! adjacent neighbor IDs are reused before the interleaved traffic of other
//! warps can evict them — fewer global transactions, higher cache hit rate,
//! better ILP (the paper's Fig. 7). The uniform-K queue even skips the
//! degree check: every lane loads exactly K values, which is what lets the
//! compiler (here: the code) fully unroll.

use crate::active_set::{DeviceQueue, VirtualQueue};
use crate::config::Algorithm;
use eta_mem::system::DSlice;
use eta_sim::{Kernel, Lanes, WarpCtx, WARP_SIZE};

/// Parameters of one traversal launch over one virtual active set.
pub struct TraversalKernel {
    pub alg: Algorithm,
    /// Shared Memory Prefetch on/off.
    pub smp: bool,
    /// Degree limit; shadow degrees are ≤ k (== k for the uniform queue).
    pub k: u32,
    /// The virtual active set being processed.
    pub queue: VirtualQueue,
    /// Shadow tuples to process (host-read count).
    pub len: u32,
    pub col_idx: DSlice,
    pub weights: Option<DSlice>,
    pub labels: DSlice,
    /// Iteration tags for O(1) deduplication of active-set appends.
    pub tags: DSlice,
    /// Next iteration's active set.
    pub next: DeviceQueue,
    /// Current iteration number (tags smaller than this are stale).
    pub iter: u32,
    pub threads_per_block: u32,
}

impl TraversalKernel {
    fn weighted(&self) -> bool {
        self.alg.needs_weights()
    }

    /// Relaxed label for a lane: BFS counts hops, SSSP sums weights, SSWP
    /// takes the bottleneck min.
    #[inline]
    fn relax_value(&self, my: u32, w: u32) -> u32 {
        match self.alg {
            Algorithm::Bfs => my.saturating_add(1),
            Algorithm::Sssp => my.saturating_add(w),
            Algorithm::Sswp => my.min(w),
            // Connected components: propagate the component's min label.
            Algorithm::Cc => my,
        }
    }

    /// Processes one batch of per-lane neighbors (and weights), relaxing
    /// labels and pushing improved vertices.
    fn relax_row(&self, w: &mut WarpCtx<'_>, dst: &Lanes, wt: &Lanes, my: &Lanes, row_mask: u32) {
        let mut new = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (row_mask >> lane) & 1 == 1 {
                new[lane] = self.relax_value(my[lane], wt[lane]);
            }
        }
        w.alu(1);
        let old = if self.alg == Algorithm::Sswp {
            w.atomic_max(self.labels, dst, &new, row_mask)
        } else {
            w.atomic_min(self.labels, dst, &new, row_mask)
        };
        let mut improved = 0u32;
        for lane in 0..WARP_SIZE {
            if (row_mask >> lane) & 1 == 1 {
                let better = if self.alg == Algorithm::Sswp {
                    new[lane] > old[lane]
                } else {
                    new[lane] < old[lane]
                };
                if better {
                    improved |= 1 << lane;
                }
            }
        }
        if improved == 0 {
            return;
        }
        // Claim the per-iteration tag; only the first improver enqueues.
        let iters = [self.iter; WARP_SIZE];
        let old_tag = w.atomic_max(self.tags, dst, &iters, improved);
        let mut push = 0u32;
        for lane in 0..WARP_SIZE {
            if (improved >> lane) & 1 == 1 && old_tag[lane] < self.iter {
                push |= 1 << lane;
            }
        }
        if push == 0 {
            return;
        }
        let pos = w.atomic_add(self.next.count, &[0; WARP_SIZE], &[1; WARP_SIZE], push);
        w.store(self.next.items, &pos, dst, push);
    }
}

impl Kernel for TraversalKernel {
    fn name(&self) -> &'static str {
        match self.alg {
            Algorithm::Bfs => "traverse_bfs",
            Algorithm::Sssp => "traverse_sssp",
            Algorithm::Sswp => "traverse_sswp",
            Algorithm::Cc => "traverse_cc",
        }
    }

    fn shared_words_per_block(&self, threads_per_block: u32) -> u64 {
        if !self.smp {
            return 0;
        }
        let per_thread = self.k as u64 * if self.weighted() { 2 } else { 1 };
        threads_per_block as u64 * per_thread
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.len);
        if mask == 0 {
            return;
        }
        let vid = w.load(self.queue.ids, &tids, mask);
        let start = w.load(self.queue.starts, &tids, mask);
        let end = w.load(self.queue.ends, &tids, mask);
        let my = w.load(self.labels, &vid, mask);
        w.alu(1);

        let mut deg = [0u32; WARP_SIZE];
        let mut max_deg = 0u32;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                deg[lane] = end[lane] - start[lane];
                max_deg = max_deg.max(deg[lane]);
            }
        }
        if max_deg == 0 {
            return;
        }

        if self.smp {
            // --- SMP: burst all neighbors (and weights) into shared memory.
            let tpb = self.threads_per_block;
            let per_thread = self.k;
            let mut slot_base = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                let tid_in_block = tids[lane] % tpb;
                slot_base[lane] = tid_in_block * per_thread;
            }

            let rows = w.load_burst(self.col_idx, &start, &deg, mask);
            for (j, row) in rows.iter().enumerate() {
                let mut row_mask = 0u32;
                let mut slots = [0u32; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    if (mask >> lane) & 1 == 1 && (j as u32) < deg[lane] {
                        row_mask |= 1 << lane;
                        slots[lane] = slot_base[lane] + j as u32;
                    }
                }
                w.store_shared(&slots, row, row_mask);
            }
            let weight_shared_off = tpb * per_thread;
            if let Some(ws) = self.weights {
                let wrows = w.load_burst(ws, &start, &deg, mask);
                for (j, row) in wrows.iter().enumerate() {
                    let mut row_mask = 0u32;
                    let mut slots = [0u32; WARP_SIZE];
                    for lane in 0..WARP_SIZE {
                        if (mask >> lane) & 1 == 1 && (j as u32) < deg[lane] {
                            row_mask |= 1 << lane;
                            slots[lane] = weight_shared_off + slot_base[lane] + j as u32;
                        }
                    }
                    w.store_shared(&slots, row, row_mask);
                }
            }

            // --- process from shared memory.
            for j in 0..max_deg {
                let mut row_mask = 0u32;
                let mut slots = [0u32; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    if (mask >> lane) & 1 == 1 && j < deg[lane] {
                        row_mask |= 1 << lane;
                        slots[lane] = slot_base[lane] + j;
                    }
                }
                if row_mask == 0 {
                    continue;
                }
                let dst = w.load_shared(&slots, row_mask);
                let wt = if self.weights.is_some() {
                    let mut wslots = slots;
                    for s in wslots.iter_mut() {
                        *s += weight_shared_off;
                    }
                    w.load_shared(&wslots, row_mask)
                } else {
                    [1; WARP_SIZE]
                };
                self.relax_row(w, &dst, &wt, &my, row_mask);
            }
        } else {
            // --- no SMP: one global load per neighbor step, the classic
            // "load and process neighbor vertices one by one" pattern.
            for j in 0..max_deg {
                let mut row_mask = 0u32;
                let mut idx = [0u32; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    if (mask >> lane) & 1 == 1 && j < deg[lane] {
                        row_mask |= 1 << lane;
                        idx[lane] = start[lane] + j;
                    }
                }
                if row_mask == 0 {
                    continue;
                }
                let dst = w.load(self.col_idx, &idx, row_mask);
                let wt = match self.weights {
                    Some(ws) => w.load(ws, &idx, row_mask),
                    None => [1; WARP_SIZE],
                };
                self.relax_row(w, &dst, &wt, &my, row_mask);
            }
        }
    }
}

/// Pull-based BFS iteration (the direction-optimizing extension).
///
/// One thread per **unvisited** vertex scans its in-neighbors (transposed
/// CSR) and stops at the first parent labelled `iter - 1`. When the
/// frontier covers a large share of the graph this touches far fewer edges
/// than pushing from every frontier vertex (Beamer et al.'s
/// direction-optimizing BFS, which the paper cites as algorithm-specific
/// related work). No atomics on labels: each vertex is written only by its
/// own thread.
pub struct PullBfsKernel {
    pub n: u32,
    /// Transposed row offsets (in-edge index).
    pub t_row_offsets: DSlice,
    /// In-neighbor array.
    pub t_col_idx: DSlice,
    pub labels: DSlice,
    pub next: DeviceQueue,
    pub iter: u32,
}

impl Kernel for PullBfsKernel {
    fn name(&self) -> &'static str {
        "bfs_pull"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        if mask == 0 {
            return;
        }
        let my = w.load(self.labels, &tids, mask);
        w.alu(1);
        let mut unvisited = 0u32;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 && my[lane] == u32::MAX {
                unvisited |= 1 << lane;
            }
        }
        if unvisited == 0 {
            return;
        }
        let lo = w.load(self.t_row_offsets, &tids, unvisited);
        let mut v1 = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            v1[lane] = tids[lane].wrapping_add(1);
        }
        let hi = w.load(self.t_row_offsets, &v1, unvisited);
        let mut deg = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (unvisited >> lane) & 1 == 1 {
                deg[lane] = hi[lane] - lo[lane];
            }
        }

        let parent_level = self.iter - 1;
        let mut found = 0u32;
        let mut j = 0u32;
        loop {
            let mut row = 0u32;
            let mut idx = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (unvisited >> lane) & 1 == 1 && (found >> lane) & 1 == 0 && j < deg[lane] {
                    row |= 1 << lane;
                    idx[lane] = lo[lane] + j;
                }
            }
            if row == 0 {
                break; // every lane found a parent or exhausted its in-edges
            }
            let parent = w.load(self.t_col_idx, &idx, row);
            let pl = w.load(self.labels, &parent, row);
            w.alu(1);
            for lane in 0..WARP_SIZE {
                if (row >> lane) & 1 == 1 && pl[lane] == parent_level {
                    found |= 1 << lane;
                }
            }
            j += 1;
        }
        if found == 0 {
            return;
        }
        let levels = [self.iter; WARP_SIZE];
        // Other warps of this launch concurrently read `labels` looking for
        // parents, so the update must be atomic to be race-free. min is the
        // identity store here: a found lane's label is still u32::MAX, and
        // no other writer touches it this iteration (tids are disjoint).
        w.atomic_min(self.labels, &tids, &levels, found);
        let pos = w.atomic_add(self.next.count, &[0; WARP_SIZE], &[1; WARP_SIZE], found);
        w.store(self.next.items, &pos, &tids, found);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udc::ActToVirtKernel;
    use eta_graph::Csr;
    use eta_sim::{Device, GpuConfig, LaunchConfig};

    /// Runs one full manual iteration on a tiny graph and checks labels.
    fn run_one_iteration(smp: bool) {
        let g = Csr::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 4)]);
        let mut dev = Device::new(GpuConfig::default_preset());
        let ro = dev.mem.alloc_explicit(g.row_offsets.len() as u64).unwrap();
        let ci = dev.mem.alloc_explicit(g.col_idx.len() as u64).unwrap();
        dev.mem.host_write(ro, 0, &g.row_offsets);
        dev.mem.host_write(ci, 0, &g.col_idx);
        let labels = dev.mem.alloc_explicit(5).unwrap();
        dev.mem.host_fill(labels, u32::MAX);
        dev.mem.host_write(labels, 0, &[0]);
        let tags = dev.mem.alloc_explicit(5).unwrap();
        dev.mem.host_fill(tags, 0);

        let act = DeviceQueue::alloc(&mut dev, 5).unwrap();
        act.host_seed(&mut dev, &[0]);
        let next = DeviceQueue::alloc(&mut dev, 5).unwrap();
        next.host_seed(&mut dev, &[]);
        let full = VirtualQueue::alloc(&mut dev, 8).unwrap();
        let partial = VirtualQueue::alloc(&mut dev, 8).unwrap();

        let k = 2u32;
        let a2v = ActToVirtKernel::new(&act, 1, ro, &full, &partial, k);
        dev.launch(&a2v, LaunchConfig::for_items(1, 256), 0);
        let (nf, _) = full.read_count(&mut dev, 0);
        let (np, _) = partial.read_count(&mut dev, 0);
        assert_eq!((nf, np), (1, 1), "degree 3 with k=2 → one full, one tail");

        for (q, len) in [(full, nf), (partial, np)] {
            let kern = TraversalKernel {
                alg: Algorithm::Bfs,
                smp,
                k,
                queue: q,
                len,
                col_idx: ci,
                weights: None,
                labels,
                tags,
                next,
                iter: 1,
                threads_per_block: 256,
            };
            dev.launch(&kern, LaunchConfig::for_items(len, 256), 0);
        }

        assert_eq!(dev.mem.host_read(labels, 0, 5), &[0, 1, 1, 1, u32::MAX]);
        let (next_n, _) = next.read_count(&mut dev, 0);
        assert_eq!(next_n, 3);
        let mut pushed = dev.mem.host_read(next.items, 0, 3).to_vec();
        pushed.sort_unstable();
        assert_eq!(pushed, vec![1, 2, 3]);
    }

    #[test]
    fn one_bfs_iteration_without_smp() {
        run_one_iteration(false);
    }

    #[test]
    fn one_bfs_iteration_with_smp() {
        run_one_iteration(true);
    }

    #[test]
    fn duplicate_pushes_are_deduplicated() {
        // Two active vertices both point at vertex 3; it must be enqueued once.
        let g = Csr::from_edges(4, &[(0, 3), (1, 3)]);
        let mut dev = Device::new(GpuConfig::default_preset());
        let ci = dev.mem.alloc_explicit(g.col_idx.len() as u64).unwrap();
        dev.mem.host_write(ci, 0, &g.col_idx);
        let labels = dev.mem.alloc_explicit(4).unwrap();
        dev.mem.host_fill(labels, u32::MAX);
        dev.mem.host_write(labels, 0, &[0, 0]);
        let tags = dev.mem.alloc_explicit(4).unwrap();
        dev.mem.host_fill(tags, 0);
        let next = DeviceQueue::alloc(&mut dev, 4).unwrap();
        next.host_seed(&mut dev, &[]);

        // Hand-build the virtual queue: shadows of vertices 0 and 1.
        let q = VirtualQueue::alloc(&mut dev, 4).unwrap();
        dev.mem.host_write(q.ids, 0, &[0, 1]);
        dev.mem.host_write(q.starts, 0, &[0, 1]);
        dev.mem.host_write(q.ends, 0, &[1, 2]);

        let kern = TraversalKernel {
            alg: Algorithm::Bfs,
            smp: false,
            k: 4,
            queue: q,
            len: 2,
            col_idx: ci,
            weights: None,
            labels,
            tags,
            next,
            iter: 1,
            threads_per_block: 256,
        };
        dev.launch(&kern, LaunchConfig::for_items(2, 256), 0);
        let (n, _) = next.read_count(&mut dev, 0);
        assert_eq!(n, 1, "vertex 3 must be enqueued exactly once");
        assert_eq!(dev.mem.host_read(next.items, 0, 1), &[3]);
    }

    #[test]
    fn sswp_relaxes_with_max() {
        let g = Csr::from_weighted_edges(3, &[(0, 1, 7), (0, 2, 3)]);
        let mut dev = Device::new(GpuConfig::default_preset());
        let ci = dev.mem.alloc_explicit(2).unwrap();
        dev.mem.host_write(ci, 0, &g.col_idx);
        let ws = dev.mem.alloc_explicit(2).unwrap();
        dev.mem.host_write(ws, 0, g.weights.as_ref().unwrap());
        let labels = dev.mem.alloc_explicit(3).unwrap();
        dev.mem.host_fill(labels, 0);
        dev.mem.host_write(labels, 0, &[u32::MAX]);
        let tags = dev.mem.alloc_explicit(3).unwrap();
        dev.mem.host_fill(tags, 0);
        let next = DeviceQueue::alloc(&mut dev, 3).unwrap();
        next.host_seed(&mut dev, &[]);
        let q = VirtualQueue::alloc(&mut dev, 2).unwrap();
        dev.mem.host_write(q.ids, 0, &[0]);
        dev.mem.host_write(q.starts, 0, &[0]);
        dev.mem.host_write(q.ends, 0, &[2]);

        let kern = TraversalKernel {
            alg: Algorithm::Sswp,
            smp: true,
            k: 4,
            queue: q,
            len: 1,
            col_idx: ci,
            weights: Some(ws),
            labels,
            tags,
            next,
            iter: 1,
            threads_per_block: 256,
        };
        dev.launch(&kern, LaunchConfig::for_items(1, 256), 0);
        assert_eq!(dev.mem.host_read(labels, 0, 3), &[u32::MAX, 7, 3]);
    }

    #[test]
    fn smp_asks_for_shared_memory() {
        let dummy = |smp: bool, alg: Algorithm| {
            let mut dev = Device::new(GpuConfig::default_preset());
            let d = dev.mem.alloc_explicit(4).unwrap();
            let q = VirtualQueue::alloc(&mut dev, 1).unwrap();
            let next = DeviceQueue::alloc(&mut dev, 1).unwrap();
            TraversalKernel {
                alg,
                smp,
                k: 16,
                queue: q,
                len: 0,
                col_idx: d,
                weights: None,
                labels: d,
                tags: d,
                next,
                iter: 1,
                threads_per_block: 256,
            }
            .shared_words_per_block(256)
        };
        assert_eq!(dummy(false, Algorithm::Bfs), 0);
        assert_eq!(dummy(true, Algorithm::Bfs), 256 * 16);
        assert_eq!(dummy(true, Algorithm::Sssp), 256 * 16 * 2);
    }
}
