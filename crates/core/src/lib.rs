//! `etagraph` — the paper's contribution: a GPU graph-traversal framework
//! built on Unified Degree Cut, selective (frontier-like) kernel execution,
//! fine-grained transfer/compute overlap via Unified Memory, and Shared
//! Memory Prefetch.
//!
//! # Quickstart
//!
//! ```
//! use etagraph::{Algorithm, EtaConfig, EtaGraph};
//! use eta_graph::generate::{rmat, RmatConfig};
//!
//! let graph = rmat(&RmatConfig::paper(10, 8_000, 1));
//! let eta = EtaGraph::new(&graph, EtaConfig::paper());
//! let result = eta.run(Algorithm::Bfs, 0).unwrap();
//! println!("visited {} vertices in {} iterations ({:.3} ms simulated)",
//!          result.visited(), result.iterations, result.total_ms());
//! ```
//!
//! The modules follow the paper's structure: [`udc`] (§III), [`active_set`]
//! and [`engine`] (§IV), [`kernels`] with SMP (§V), [`device_graph`] for the
//! transfer policies (§IV-B), and [`config`] for the ablation axes.
//!
//! With profiling enabled (`GpuConfig::with_profiling`), the engine records
//! one `eta-prof` event per iteration — frontier size, shadowing counts, and
//! the push/pull decision — alongside the simulator's kernel and transfer
//! events; see PROFILING.md and [`session::Session::profile`].

// Kernels address per-lane register arrays by explicit lane index under an
// active mask — the SIMT idiom this simulator exists to model. Iterator
// rewrites of those loops obscure the lane structure.
#![allow(clippy::needless_range_loop)]
pub mod active_set;
pub mod config;
pub mod device_graph;
pub mod engine;
pub mod error;
pub mod kernels;
pub mod multi_bfs;
pub mod pagerank;
pub mod result;
pub mod session;
pub mod sharded;
pub mod udc;

pub use config::{Algorithm, EtaConfig, TransferMode, UdcMode};
pub use device_graph::DeviceGraph;
pub use error::QueryError;
pub use result::{IterationStats, RunResult};

use eta_graph::Csr;
use eta_sim::{Device, GpuConfig};

/// High-level facade: an EtaGraph instance bound to a host graph.
///
/// Each [`EtaGraph::run`] call simulates a complete session on a fresh
/// device (upload → iterate → read back), so timings are independent.
pub struct EtaGraph<'g> {
    graph: &'g Csr,
    cfg: EtaConfig,
    gpu: GpuConfig,
}

impl<'g> EtaGraph<'g> {
    pub fn new(graph: &'g Csr, cfg: EtaConfig) -> Self {
        EtaGraph {
            graph,
            cfg,
            gpu: GpuConfig::default_preset(),
        }
    }

    /// Overrides the GPU model (device memory capacity, cache sizes, ...).
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    pub fn config(&self) -> &EtaConfig {
        &self.cfg
    }

    /// Runs `alg` from `source` and returns labels plus measurements.
    pub fn run(&self, alg: Algorithm, source: u32) -> Result<RunResult, QueryError> {
        let mut dev = Device::new(self.gpu);
        engine::run(&mut dev, self.graph, source, alg, &self.cfg)
    }

    /// Runs and also hands back the device for metric inspection.
    pub fn run_on(
        &self,
        dev: &mut Device,
        alg: Algorithm,
        source: u32,
    ) -> Result<RunResult, QueryError> {
        engine::run(dev, self.graph, source, alg, &self.cfg)
    }
}
