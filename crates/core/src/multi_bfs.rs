//! Concurrent multi-source BFS — the iBFS idea (Liu, Huang & Hu,
//! SIGMOD'16), which the paper cites among the coalescing-oriented related
//! work. Up to 32 independent BFS queries share one traversal: each vertex
//! carries a 32-bit *reach mask* (bit `s` = "search `s` reached me"), the
//! joint frontier is the set of vertices whose mask grew last iteration,
//! and one topology read serves every concurrent query — precisely the
//! memory-bandwidth sharing that makes batched traversal attractive on
//! GPUs.
//!
//! Runs on the same UDC machinery as single-source traversal: the joint
//! frontier goes through `actSet2virtActSet`, shadow vertices propagate
//! their *fresh* bits to neighbors with `atomicOr`, and per-source levels
//! are recorded the iteration a bit first appears.

use crate::active_set::{DeviceQueue, VirtualQueue};
use crate::config::EtaConfig;
use crate::device_graph::DeviceGraph;
use crate::error::{check_source, QueryError};
use crate::udc::ActToVirtKernel;
use eta_ckpt::{Checkpoint, CkptCtl, CkptError, CkptState};
use eta_graph::Csr;
use eta_mem::system::{DSlice, MemError};
use eta_mem::Ns;
use eta_prof::Track;
use eta_sim::{Device, Kernel, KernelMetrics, LaunchConfig, WarpCtx, WARP_SIZE};

/// Maximum concurrent sources per batch (one bit per source in a word).
pub const MAX_BATCH: usize = 32;

/// Device state a batched BFS needs besides the topology: reach masks,
/// per-source levels (sized for a full 32-wide batch), and work queues.
/// Built once, reusable across batches — the serving layer keeps one per
/// resident graph so repeated batch launches pay no allocation.
pub struct MultiBfsResources {
    fresh: DSlice,
    joint: DSlice,
    next_fresh: DSlice,
    /// `n * MAX_BATCH` words; a batch of `b` sources uses the first `n*b`.
    levels: DSlice,
    act: DeviceQueue,
    next: DeviceQueue,
    full: VirtualQueue,
    partial: VirtualQueue,
    n: u32,
}

impl MultiBfsResources {
    /// Allocates batch state for `csr` on `dev` (explicit device memory).
    /// All-or-nothing: a footprint that does not fit fails upfront without
    /// committing any allocation, so callers' admission accounting stays
    /// exact.
    pub fn alloc(dev: &mut Device, csr: &Csr, cfg: &EtaConfig) -> Result<Self, MemError> {
        let need = Self::footprint_bytes(csr, cfg);
        if dev.mem.free_bytes() < need {
            return Err(MemError::Oom {
                requested_bytes: need,
                free_bytes: dev.mem.free_bytes(),
            });
        }
        let n = csr.n() as u32;
        Ok(MultiBfsResources {
            fresh: dev.mem.alloc_explicit(n as u64)?,
            joint: dev.mem.alloc_explicit(n as u64)?,
            next_fresh: dev.mem.alloc_explicit(n as u64)?,
            levels: dev.mem.alloc_explicit(n as u64 * MAX_BATCH as u64)?,
            act: DeviceQueue::alloc(dev, n)?,
            next: DeviceQueue::alloc(dev, n)?,
            full: VirtualQueue::alloc(dev, Self::full_cap(csr, cfg))?,
            partial: VirtualQueue::alloc(dev, n)?,
            n,
        })
    }

    fn full_cap(csr: &Csr, cfg: &EtaConfig) -> u32 {
        (csr.m() as u32 / cfg.k).max(1) + 1
    }

    /// Explicit device bytes [`MultiBfsResources::alloc`] will request —
    /// kept in sync with it so admission control can test a footprint
    /// before committing device memory.
    pub fn footprint_bytes(csr: &Csr, cfg: &EtaConfig) -> u64 {
        let n = csr.n() as u64;
        let queue = |cap: u64| cap.max(1) + 1; // items + count
        let vqueue = |cap: u64| 3 * cap.max(1) + 1; // ids/starts/ends + count
        let words = 3 * n
            + n * MAX_BATCH as u64
            + queue(n)
            + queue(n)
            + vqueue(Self::full_cap(csr, cfg) as u64)
            + vqueue(n);
        words * 4
    }

    /// Returns every allocation's capacity to the device (eviction path).
    pub fn release(self, dev: &mut Device) {
        for s in [self.fresh, self.joint, self.next_fresh, self.levels] {
            dev.mem.free_explicit(s);
        }
        self.act.release(dev);
        self.next.release(dev);
        self.full.release(dev);
        self.partial.release(dev);
    }
}

/// Result of one batched multi-source BFS.
#[derive(Debug, Clone)]
pub struct MultiBfsResult {
    /// `levels[s][v]` = BFS level of vertex `v` from source `s`
    /// (`u32::MAX` when unreachable).
    pub levels: Vec<Vec<u32>>,
    pub iterations: u32,
    pub kernel_ns: Ns,
    pub total_ns: Ns,
    pub metrics: KernelMetrics,
}

/// Propagates each shadow vertex's fresh bits to its neighbors; vertices
/// whose reach mask grows are appended to the next joint frontier (their
/// growth is deduplicated by the atomicOr's old value) and their new bits'
/// levels are recorded.
struct MultiPropagateKernel {
    queue: VirtualQueue,
    len: u32,
    col_idx: DSlice,
    /// Bits that reached each vertex in the previous iteration.
    fresh: DSlice,
    /// All bits that ever reached each vertex.
    joint: DSlice,
    /// Accumulates next iteration's fresh bits.
    next_fresh: DSlice,
    next: DeviceQueue,
    /// `levels[s * n + v]`, written when bit `s` first reaches `v`.
    levels: DSlice,
    n: u32,
    iter: u32,
}

impl Kernel for MultiPropagateKernel {
    fn name(&self) -> &'static str {
        "multi_bfs_propagate"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.len);
        if mask == 0 {
            return;
        }
        let vid = w.load(self.queue.ids, &tids, mask);
        let start = w.load(self.queue.starts, &tids, mask);
        let end = w.load(self.queue.ends, &tids, mask);
        let my_fresh = w.load(self.fresh, &vid, mask);
        w.alu(1);

        let mut deg = [0u32; WARP_SIZE];
        let mut max_deg = 0;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                deg[lane] = end[lane] - start[lane];
                max_deg = max_deg.max(deg[lane]);
            }
        }
        for j in 0..max_deg {
            let mut row = 0u32;
            let mut idx = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (mask >> lane) & 1 == 1 && j < deg[lane] && my_fresh[lane] != 0 {
                    row |= 1 << lane;
                    idx[lane] = start[lane] + j;
                }
            }
            if row == 0 {
                continue;
            }
            let dst = w.load(self.col_idx, &idx, row);
            // Merge our fresh bits into the neighbor's joint mask; the old
            // value tells us which bits are genuinely new there.
            let old_joint = w.atomic_or(self.joint, &dst, &my_fresh, row);
            let mut grew = 0u32;
            let mut new_bits = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (row >> lane) & 1 == 1 {
                    new_bits[lane] = my_fresh[lane] & !old_joint[lane];
                    if new_bits[lane] != 0 {
                        grew |= 1 << lane;
                    }
                }
            }
            w.alu(1);
            if grew == 0 {
                continue;
            }
            // Stage the new bits for the next iteration; first grower of a
            // vertex (old next_fresh == 0 under this OR) enqueues it.
            let old_nf = w.atomic_or(self.next_fresh, &dst, &new_bits, grew);
            let mut push = 0u32;
            for lane in 0..WARP_SIZE {
                if (grew >> lane) & 1 == 1 && old_nf[lane] == 0 {
                    push |= 1 << lane;
                }
            }
            // Record levels for each newly-set bit (divergent over bits —
            // bounded by the batch width).
            for s in 0..MAX_BATCH as u32 {
                let mut bit_row = 0u32;
                let mut slot = [0u32; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    if (grew >> lane) & 1 == 1 && (new_bits[lane] >> s) & 1 == 1 {
                        bit_row |= 1 << lane;
                        slot[lane] = s * self.n + dst[lane];
                    }
                }
                if bit_row != 0 {
                    w.store(self.levels, &slot, &[self.iter; WARP_SIZE], bit_row);
                }
            }
            if push != 0 {
                let pos = w.atomic_add(self.next.count, &[0; WARP_SIZE], &[1; WARP_SIZE], push);
                w.store(self.next.items, &pos, &dst, push);
            }
        }
    }
}

/// Swaps fresh masks between iterations: `fresh[v] = next_fresh[v];
/// next_fresh[v] = 0` for every vertex in the new frontier.
struct SwapFreshKernel {
    frontier: DSlice,
    len: u32,
    fresh: DSlice,
    next_fresh: DSlice,
}

impl Kernel for SwapFreshKernel {
    fn name(&self) -> &'static str {
        "multi_bfs_swap_fresh"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.len);
        if mask == 0 {
            return;
        }
        let v = w.load(self.frontier, &tids, mask);
        let bits = w.load(self.next_fresh, &v, mask);
        w.store(self.fresh, &v, &bits, mask);
        w.store(self.next_fresh, &v, &[0; WARP_SIZE], mask);
    }
}

/// Runs up to 32 BFS queries in one batched traversal on a fresh device
/// (upload + allocate + traverse; total time includes the upload).
pub fn run(
    dev: &mut Device,
    csr: &Csr,
    sources: &[u32],
    cfg: &EtaConfig,
) -> Result<MultiBfsResult, QueryError> {
    let (dg, t_up) = DeviceGraph::upload(dev, csr, cfg.transfer, 0)?;
    let res = MultiBfsResources::alloc(dev, csr, cfg)?;
    let mut r = run_on(dev, &dg, &res, sources, cfg, t_up)?;
    r.total_ns += t_up;
    Ok(r)
}

/// Runs one batch on already-prepared resources, starting at `start` on the
/// session clock. [`MultiBfsResult::total_ns`] is the batch's duration from
/// `start`; per-query state (masks, levels, seeds) is re-initialized and
/// charged, so the resources are immediately reusable for the next batch.
pub fn run_on(
    dev: &mut Device,
    dg: &DeviceGraph,
    res: &MultiBfsResources,
    sources: &[u32],
    cfg: &EtaConfig,
    start: Ns,
) -> Result<MultiBfsResult, QueryError> {
    run_on_ckpt(dev, dg, res, sources, cfg, start, CkptCtl::off())
}

/// [`run_on`] with checkpoint/resume control. With `CkptCtl::off()` this is
/// byte-identical to the plain path. With a sink whose policy is due, the
/// batch state (reach masks, levels, frontier in queue order) is copied
/// back to the host at iteration boundaries — charged PCIe traffic on the
/// simulated clock, visible on the profiler's checkpoint track. With a
/// resume snapshot, initialization is replaced by restoring that state, so
/// the continued run replays the uninterrupted run's remaining iterations
/// byte-for-byte (the frontier is restored in queue order, which pins the
/// propagation order and therefore every atomic outcome).
pub fn run_on_ckpt(
    dev: &mut Device,
    dg: &DeviceGraph,
    res: &MultiBfsResources,
    sources: &[u32],
    cfg: &EtaConfig,
    start: Ns,
    mut ckpt: CkptCtl<'_>,
) -> Result<MultiBfsResult, QueryError> {
    assert!(
        !sources.is_empty() && sources.len() <= MAX_BATCH,
        "1..={MAX_BATCH} sources per batch"
    );
    for &s in sources {
        check_source(s, res.n as usize)?;
    }
    let n = res.n;
    let b = sources.len();
    let tpb = cfg.threads_per_block;
    let mut now = start;

    let fresh = res.fresh;
    let joint = res.joint;
    let next_fresh = res.next_fresh;
    let levels = res.levels.slice(0, n as u64 * b as u64);
    let act = res.act;
    let next = res.next;
    let full = res.full;
    let partial = res.partial;

    let (start_iter, start_len) = if let Some(ck) = ckpt.resume {
        // Resume: restore the snapshot instead of initializing. Validation
        // is a typed error, not an assert — the serving layer downgrades a
        // stale snapshot to restart-from-scratch.
        ck.validate(ckpt.graph_digest, n)?;
        let (ck_sources, ck_fresh, ck_joint, ck_levels, ck_frontier) = match &ck.state {
            CkptState::MultiBfs {
                sources: s,
                fresh,
                joint,
                levels,
                frontier,
            } => (s, fresh, joint, levels, frontier),
            _ => return Err(CkptError::StateShape.into()),
        };
        if ck_sources != sources
            || ck_fresh.len() != n as usize
            || ck_levels.len() != n as usize * b
        {
            return Err(CkptError::StateShape.into());
        }
        now = dev.mem.copy_h2d(fresh, 0, ck_fresh, now);
        now = dev.mem.copy_h2d(joint, 0, ck_joint, now);
        now = dev
            .mem
            .copy_h2d(next_fresh, 0, &vec![0u32; n as usize], now);
        now = dev.mem.copy_h2d(levels, 0, ck_levels, now);
        act.host_seed(dev, ck_frontier);
        now = dev
            .mem
            .copy_h2d(act.count, 0, &[ck_frontier.len() as u32], now);
        dg.prefetch(dev, now);
        if dev.mem.prof.is_enabled() {
            dev.mem.prof.record(
                Track::Ckpt,
                "resume",
                start,
                now,
                vec![
                    ("iteration", ck.iteration.into()),
                    ("words", ck.payload_words().into()),
                    ("kind", ck.state.kind().into()),
                ],
            );
        }
        (ck.iteration, ck_frontier.len() as u32)
    } else {
        // Initial state: each source carries its own bit at level 0. Sources
        // may repeat or collide on a vertex; bits just merge.
        let mut fresh_init = vec![0u32; n as usize];
        let mut level_init = vec![u32::MAX; n as usize * b];
        let mut seed_vertices: Vec<u32> = Vec::new();
        for (s, &v) in sources.iter().enumerate() {
            fresh_init[v as usize] |= 1 << s;
            level_init[s * n as usize + v as usize] = 0;
            if !seed_vertices.contains(&v) {
                seed_vertices.push(v);
            }
        }
        now = dev.mem.copy_h2d(fresh, 0, &fresh_init, now);
        now = dev.mem.copy_h2d(joint, 0, &fresh_init, now);
        now = dev
            .mem
            .copy_h2d(next_fresh, 0, &vec![0u32; n as usize], now);
        now = dev.mem.copy_h2d(levels, 0, &level_init, now);
        act.host_seed(dev, &seed_vertices);
        now = dev
            .mem
            .copy_h2d(act.count, 0, &[seed_vertices.len() as u32], now);
        dg.prefetch(dev, now);
        (0, seed_vertices.len() as u32)
    };

    let mut queues = (act, next);
    let mut act_len = start_len;
    let mut iter = start_iter;
    let mut metrics = KernelMetrics::default();
    let mut kernel_ns = 0u64;

    while act_len > 0 {
        iter += 1;
        let (act, nxt) = (&queues.0, &queues.1);
        now = full.reset(dev, now);
        now = partial.reset(dev, now);
        now = nxt.reset(dev, now);

        let a2v = ActToVirtKernel::new(act, act_len, dg.row_offsets, &full, &partial, cfg.k);
        let r = dev.launch(&a2v, LaunchConfig::for_items(act_len, tpb), now);
        now = r.end_ns.max(r.metrics.data_ready_ns);
        metrics.merge(&r.metrics);
        kernel_ns += r.metrics.time_ns;
        if let Some(f) = dev.take_fault() {
            return Err(f.into());
        }

        let (nf, t) = full.read_count(dev, now);
        let (np, t2) = partial.read_count(dev, t);
        now = t2;

        for (queue, len) in [(full, nf), (partial, np)] {
            if len == 0 {
                continue;
            }
            let kern = MultiPropagateKernel {
                queue,
                len,
                col_idx: dg.col_idx,
                fresh,
                joint,
                next_fresh,
                next: *nxt,
                levels,
                n,
                iter,
            };
            let r = dev.launch(&kern, LaunchConfig::for_items(len, tpb), now);
            now = r.end_ns.max(r.metrics.data_ready_ns);
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;
            if let Some(f) = dev.take_fault() {
                return Err(f.into());
            }
        }

        // New frontier: swap its fresh masks in, then continue.
        let (len, t) = nxt.read_count(dev, now);
        now = t;
        if len > 0 {
            let swap = SwapFreshKernel {
                frontier: nxt.items,
                len,
                fresh,
                next_fresh,
            };
            let r = dev.launch(&swap, LaunchConfig::for_items(len, tpb), now);
            now = r.end_ns;
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;
            if let Some(f) = dev.take_fault() {
                return Err(f.into());
            }
        }
        queues = (queues.1, queues.0);
        act_len = len;

        // Iteration boundary: SwapFresh zeroed next_fresh for exactly the
        // vertices that were enqueued (each was pushed once, on its first
        // grower), so next_fresh is globally zero again and fresh + joint +
        // levels + the frontier *in queue order* are the complete state.
        if act_len > 0 {
            if let Some(sink) = ckpt.sink.as_deref_mut() {
                if sink.policy.due(iter) {
                    let ck_start = now;
                    now = dev.mem.copy_d2h(fresh, n as u64, now);
                    now = dev.mem.copy_d2h(joint, n as u64, now);
                    now = dev.mem.copy_d2h(levels, n as u64 * b as u64, now);
                    now = dev.mem.copy_d2h(queues.0.items, act_len as u64, now);
                    if let Some(f) = dev.take_fault() {
                        return Err(f.into());
                    }
                    let ck = Checkpoint {
                        graph_digest: ckpt.graph_digest,
                        n,
                        iteration: iter,
                        taken_at_ns: now,
                        state: CkptState::MultiBfs {
                            sources: sources.to_vec(),
                            fresh: dev.mem.host_read(fresh, 0, n as u64).to_vec(),
                            joint: dev.mem.host_read(joint, 0, n as u64).to_vec(),
                            levels: dev.mem.host_read(levels, 0, n as u64 * b as u64).to_vec(),
                            frontier: dev
                                .mem
                                .host_read(queues.0.items, 0, act_len as u64)
                                .to_vec(),
                        },
                    };
                    if dev.mem.prof.is_enabled() {
                        dev.mem.prof.record(
                            Track::Ckpt,
                            "checkpoint",
                            ck_start,
                            now,
                            vec![
                                ("iteration", iter.into()),
                                ("words", ck.payload_words().into()),
                                ("frontier", act_len.into()),
                            ],
                        );
                    }
                    sink.store(ck);
                }
            }
        }
    }

    now = dev.mem.copy_d2h(levels, n as u64 * b as u64, now);
    if let Some(f) = dev.take_fault() {
        return Err(f.into());
    }
    let flat = dev.mem.host_read(levels, 0, n as u64 * b as u64);
    let out = (0..b)
        .map(|s| flat[s * n as usize..(s + 1) * n as usize].to_vec())
        .collect();
    Ok(MultiBfsResult {
        levels: out,
        iterations: iter,
        kernel_ns,
        total_ns: now - start,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;
    use eta_sim::GpuConfig;

    fn device() -> Device {
        Device::new(GpuConfig::default_preset())
    }

    fn graph() -> Csr {
        rmat(&RmatConfig::paper(12, 70_000, 66))
    }

    #[test]
    fn batched_levels_match_individual_bfs() {
        let g = graph();
        let sources: Vec<u32> = vec![0, 1, 17, 999, 2048, 4000];
        let mut dev = device();
        let r = run(&mut dev, &g, &sources, &EtaConfig::paper()).unwrap();
        assert_eq!(r.levels.len(), sources.len());
        for (s, &src) in sources.iter().enumerate() {
            assert_eq!(r.levels[s], reference::bfs(&g, src), "source {src}");
        }
    }

    #[test]
    fn full_batch_of_32_sources() {
        let g = graph();
        let sources: Vec<u32> = (0..32u32).map(|i| i * 97 % g.n() as u32).collect();
        let mut dev = device();
        let r = run(&mut dev, &g, &sources, &EtaConfig::paper()).unwrap();
        for (s, &src) in sources.iter().enumerate() {
            assert_eq!(r.levels[s], reference::bfs(&g, src), "source {src}");
        }
    }

    #[test]
    fn duplicate_and_colliding_sources() {
        let g = graph();
        let sources = vec![5u32, 5, 5];
        let mut dev = device();
        let r = run(&mut dev, &g, &sources, &EtaConfig::paper()).unwrap();
        let expect = reference::bfs(&g, 5);
        for lv in &r.levels {
            assert_eq!(lv, &expect);
        }
    }

    #[test]
    fn batching_shares_topology_reads() {
        // The iBFS claim: B batched searches read the topology far less
        // than B sequential searches.
        let g = graph();
        let sources: Vec<u32> = (0..16u32).map(|i| i * 131 % g.n() as u32).collect();
        let mut dev = device();
        let batched = run(&mut dev, &g, &sources, &EtaConfig::paper()).unwrap();

        let mut sequential_gld = 0u64;
        let mut sequential_kernel_ns = 0u64;
        for &src in &sources {
            let mut dev = device();
            let r = crate::engine::run(
                &mut dev,
                &g,
                src,
                crate::Algorithm::Bfs,
                &EtaConfig::paper(),
            )
            .unwrap();
            sequential_gld += r.metrics.l1_requests;
            sequential_kernel_ns += r.kernel_ns;
        }
        // iBFS reports sharing factors well below the batch width because
        // sources expand at misaligned levels; 2x on 16 sources matches that.
        assert!(
            batched.metrics.l1_requests * 2 < sequential_gld,
            "batched {} vs sequential {} global loads",
            batched.metrics.l1_requests,
            sequential_gld
        );
        assert!(
            (batched.kernel_ns as f64) < 0.75 * sequential_kernel_ns as f64,
            "batched {} vs sequential {} kernel ns",
            batched.kernel_ns,
            sequential_kernel_ns
        );
    }

    #[test]
    fn resources_reuse_across_batches_and_footprint_is_exact() {
        let g = graph();
        let mut dev = device();
        let cfg = EtaConfig::paper();
        let before = dev.mem.explicit_used_bytes();
        let (dg, _) = DeviceGraph::upload(&mut dev, &g, cfg.transfer, 0).unwrap();
        let res = MultiBfsResources::alloc(&mut dev, &g, &cfg).unwrap();
        assert_eq!(
            dev.mem.explicit_used_bytes() - before,
            MultiBfsResources::footprint_bytes(&g, &cfg),
            "footprint estimator must match what alloc actually takes"
        );
        // Two batches back-to-back on the same resources, clock advancing.
        let r1 = run_on(&mut dev, &dg, &res, &[0, 7], &cfg, 0).unwrap();
        let r2 = run_on(&mut dev, &dg, &res, &[3], &cfg, r1.total_ns).unwrap();
        assert_eq!(r1.levels[0], reference::bfs(&g, 0));
        assert_eq!(r1.levels[1], reference::bfs(&g, 7));
        assert_eq!(r2.levels[0], reference::bfs(&g, 3));
        // Eviction path: everything explicit comes back.
        res.release(&mut dev);
        dg.release(&mut dev);
        assert_eq!(dev.mem.explicit_used_bytes(), before);
    }

    #[test]
    fn resumed_batch_matches_uninterrupted_run() {
        let g = graph();
        let cfg = EtaConfig::paper();
        let digest = g.digest();
        let sources = vec![0u32, 17, 999];
        let mut dev = device();
        let clean = run(&mut dev, &g, &sources, &cfg).unwrap();

        // Checkpointed run: results must be unchanged, snapshots taken.
        let mut dev2 = device();
        let (dg2, t2) = DeviceGraph::upload(&mut dev2, &g, cfg.transfer, 0).unwrap();
        let res2 = MultiBfsResources::alloc(&mut dev2, &g, &cfg).unwrap();
        let mut sink = eta_ckpt::CkptSink::every(2);
        let ckd = run_on_ckpt(
            &mut dev2,
            &dg2,
            &res2,
            &sources,
            &cfg,
            t2,
            CkptCtl::with_sink(&mut sink, digest),
        )
        .unwrap();
        assert_eq!(ckd.levels, clean.levels, "checkpointing is result-inert");
        assert!(sink.taken >= 1, "the policy fired at least once");
        assert!(
            ckd.total_ns > clean.total_ns,
            "snapshot PCIe traffic is charged on the simulated clock"
        );
        let ck = sink.take().unwrap();
        assert!(ck.iteration >= 2 && ck.iteration < ckd.iterations);

        // Resume on a *different, fresh* device — the migration path.
        let mut dev3 = device();
        let (dg3, t3) = DeviceGraph::upload(&mut dev3, &g, cfg.transfer, 0).unwrap();
        let res3 = MultiBfsResources::alloc(&mut dev3, &g, &cfg).unwrap();
        let mut sink3 = eta_ckpt::CkptSink::default();
        let resumed = run_on_ckpt(
            &mut dev3,
            &dg3,
            &res3,
            &sources,
            &cfg,
            t3,
            CkptCtl::resuming(&mut sink3, &ck, digest),
        )
        .unwrap();
        assert_eq!(
            resumed.levels, clean.levels,
            "a resumed run is byte-identical to the uninterrupted run"
        );
        assert_eq!(resumed.iterations, clean.iterations);

        // A snapshot from another graph epoch is a typed error, not
        // silent corruption.
        let err = run_on_ckpt(
            &mut dev3,
            &dg3,
            &res3,
            &sources,
            &cfg,
            0,
            CkptCtl::resuming(&mut sink3, &ck, digest ^ 1),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            QueryError::Checkpoint(CkptError::GraphDigest { .. })
        ));

        // A snapshot for a different batch shape is rejected too.
        let err = run_on_ckpt(
            &mut dev3,
            &dg3,
            &res3,
            &[0u32, 17],
            &cfg,
            0,
            CkptCtl::resuming(&mut sink3, &ck, digest),
        )
        .unwrap_err();
        assert_eq!(err, QueryError::Checkpoint(CkptError::StateShape));
    }

    #[test]
    fn out_of_range_batch_source_is_a_typed_error() {
        let g = graph();
        let mut dev = device();
        let bad = g.n() as u32;
        let err = run(&mut dev, &g, &[0, bad], &EtaConfig::paper()).unwrap_err();
        assert_eq!(
            err,
            crate::error::QueryError::SourceOutOfRange {
                source: bad,
                vertices: g.n()
            }
        );
    }

    #[test]
    #[should_panic(expected = "sources per batch")]
    fn oversized_batch_is_rejected() {
        let g = graph();
        let sources: Vec<u32> = (0..33u32).collect();
        let mut dev = device();
        let _ = run(&mut dev, &g, &sources, &EtaConfig::paper());
    }
}
