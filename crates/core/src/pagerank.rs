//! PageRank on the EtaGraph machinery — the generality demonstration.
//!
//! §II-C of the paper contrasts traversal algorithms with "PageRank-like
//! algorithms" that update every vertex every iteration, and §VIII claims
//! "SMP can be easily applied to other vertex-centric frameworks". This
//! module backs that claim: PageRank runs on the same Unified Degree Cut
//! shadow vertices and the same Shared-Memory-Prefetch access shape, with
//! one difference that actually *simplifies* things — because all vertices
//! are active every iteration, the UDC transformation runs **once** and the
//! virtual active set is reused for the whole computation.
//!
//! Ranks are IEEE-754 `f32` stored in device words; scatter-accumulation
//! uses the simulator's `atomicAdd(float)` analog. Results are validated
//! against the `f64` host reference within a tolerance.

use crate::active_set::VirtualQueue;
use crate::config::{EtaConfig, TransferMode};
use crate::device_graph::DeviceGraph;
use crate::error::QueryError;
use crate::udc::shadow_count_graph;
use eta_ckpt::{Checkpoint, CkptCtl, CkptError, CkptState};
use eta_graph::Csr;
use eta_mem::system::{DSlice, MemError};
use eta_mem::Ns;
use eta_prof::Track;
use eta_sim::{Device, Kernel, KernelMetrics, LaunchConfig, WarpCtx, WARP_SIZE};

/// PageRank configuration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (0.85 in the original formulation).
    pub damping: f32,
    /// Fixed Jacobi iteration count (PageRank-like algorithms iterate to
    /// value convergence; a fixed count keeps runs comparable).
    pub iterations: u32,
    /// EtaGraph machinery knobs (K, SMP, transfer mode).
    pub eta: EtaConfig,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            iterations: 20,
            eta: EtaConfig::paper(),
        }
    }
}

/// Outcome of a PageRank run.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    pub ranks: Vec<f32>,
    pub iterations: u32,
    pub kernel_ns: Ns,
    pub total_ns: Ns,
    pub metrics: KernelMetrics,
}

/// One-time kernel: cut ALL vertices into shadow tuples (static UDC).
pub(crate) struct StaticUdcKernel {
    pub(crate) n: u32,
    pub(crate) row_offsets: DSlice,
    pub(crate) out: VirtualQueue,
    pub(crate) k: u32,
}

impl Kernel for StaticUdcKernel {
    fn name(&self) -> &'static str {
        "pagerank_static_udc"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        if mask == 0 {
            return;
        }
        let start = w.load(self.row_offsets, &tids, mask);
        let mut v1 = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            v1[lane] = tids[lane].wrapping_add(1);
        }
        let end = w.load(self.row_offsets, &v1, mask);
        w.alu(2);
        let mut parts = [0u32; WARP_SIZE];
        let mut any = 0u32;
        let mut max_p = 0u32;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                let deg = end[lane] - start[lane];
                parts[lane] = deg.div_ceil(self.k);
                if parts[lane] > 0 {
                    any |= 1 << lane;
                    max_p = max_p.max(parts[lane]);
                }
            }
        }
        if any == 0 {
            return;
        }
        let base = w.atomic_add(self.out.count, &[0; WARP_SIZE], &parts, any);
        for p in 0..max_p {
            let mut row = 0u32;
            let mut pos = [0u32; WARP_SIZE];
            let mut s = [0u32; WARP_SIZE];
            let mut e = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (any >> lane) & 1 == 1 && p < parts[lane] {
                    row |= 1 << lane;
                    pos[lane] = base[lane] + p;
                    s[lane] = start[lane] + p * self.k;
                    e[lane] = (s[lane] + self.k).min(end[lane]);
                }
            }
            w.alu(1);
            w.store(self.out.ids, &pos, &tids, row);
            w.store(self.out.starts, &pos, &s, row);
            w.store(self.out.ends, &pos, &e, row);
        }
    }
}

/// Per-iteration pass 1: `contrib[v] = rank[v] / out_degree(v)` (dangling
/// vertices contribute 0 here; their mass is redistributed on the host-side
/// base term, matching the reference).
pub(crate) struct ContribKernel {
    pub(crate) n: u32,
    pub(crate) row_offsets: DSlice,
    pub(crate) ranks: DSlice,
    pub(crate) contrib: DSlice,
}

impl Kernel for ContribKernel {
    fn name(&self) -> &'static str {
        "pagerank_contrib"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        if mask == 0 {
            return;
        }
        let lo = w.load(self.row_offsets, &tids, mask);
        let mut v1 = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            v1[lane] = tids[lane].wrapping_add(1);
        }
        let hi = w.load(self.row_offsets, &v1, mask);
        let rank = w.load(self.ranks, &tids, mask);
        w.alu(2);
        let mut out = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                let deg = hi[lane] - lo[lane];
                let share = if deg == 0 {
                    0.0
                } else {
                    f32::from_bits(rank[lane]) / deg as f32
                };
                out[lane] = share.to_bits();
            }
        }
        w.store(self.contrib, &tids, &out, mask);
    }
}

/// Per-iteration pass 2: scatter each shadow's contribution to its
/// neighbors with float atomics. SMP stages the neighbor IDs exactly as the
/// traversal kernel does.
pub(crate) struct ScatterKernel {
    pub(crate) smp: bool,
    pub(crate) k: u32,
    pub(crate) queue: VirtualQueue,
    pub(crate) len: u32,
    pub(crate) col_idx: DSlice,
    pub(crate) contrib: DSlice,
    pub(crate) next_ranks: DSlice,
    pub(crate) threads_per_block: u32,
}

impl Kernel for ScatterKernel {
    fn name(&self) -> &'static str {
        "pagerank_scatter"
    }

    fn shared_words_per_block(&self, threads_per_block: u32) -> u64 {
        if self.smp {
            threads_per_block as u64 * self.k as u64
        } else {
            0
        }
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.len);
        if mask == 0 {
            return;
        }
        let vid = w.load(self.queue.ids, &tids, mask);
        let start = w.load(self.queue.starts, &tids, mask);
        let end = w.load(self.queue.ends, &tids, mask);
        let share_bits = w.load(self.contrib, &vid, mask);
        w.alu(1);
        let mut deg = [0u32; WARP_SIZE];
        let mut max_deg = 0u32;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                deg[lane] = end[lane] - start[lane];
                max_deg = max_deg.max(deg[lane]);
            }
        }
        if max_deg == 0 {
            return;
        }

        let scatter = |w: &mut WarpCtx<'_>, dst: &[u32; WARP_SIZE], row: u32| {
            let mut val = [0f32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (row >> lane) & 1 == 1 {
                    val[lane] = f32::from_bits(share_bits[lane]);
                }
            }
            w.atomic_add_f32(self.next_ranks, dst, &val, row);
        };

        if self.smp {
            let tpb = self.threads_per_block;
            let mut slot_base = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                slot_base[lane] = (tids[lane] % tpb) * self.k;
            }
            let rows = w.load_burst(self.col_idx, &start, &deg, mask);
            for (j, row_vals) in rows.iter().enumerate() {
                let mut row = 0u32;
                let mut slots = [0u32; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    if (mask >> lane) & 1 == 1 && (j as u32) < deg[lane] {
                        row |= 1 << lane;
                        slots[lane] = slot_base[lane] + j as u32;
                    }
                }
                w.store_shared(&slots, row_vals, row);
            }
            for j in 0..max_deg {
                let mut row = 0u32;
                let mut slots = [0u32; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    if (mask >> lane) & 1 == 1 && j < deg[lane] {
                        row |= 1 << lane;
                        slots[lane] = slot_base[lane] + j;
                    }
                }
                if row == 0 {
                    continue;
                }
                let dst = w.load_shared(&slots, row);
                scatter(w, &dst, row);
            }
        } else {
            for j in 0..max_deg {
                let mut row = 0u32;
                let mut idx = [0u32; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    if (mask >> lane) & 1 == 1 && j < deg[lane] {
                        row |= 1 << lane;
                        idx[lane] = start[lane] + j;
                    }
                }
                if row == 0 {
                    continue;
                }
                let dst = w.load(self.col_idx, &idx, row);
                scatter(w, &dst, row);
            }
        }
    }
}

/// Per-iteration pass 3: `rank[v] = base + d * next[v]; next[v] = 0`.
pub(crate) struct ApplyKernel {
    pub(crate) n: u32,
    pub(crate) ranks: DSlice,
    pub(crate) next_ranks: DSlice,
    pub(crate) base: f32,
    pub(crate) damping: f32,
}

impl Kernel for ApplyKernel {
    fn name(&self) -> &'static str {
        "pagerank_apply"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.n);
        if mask == 0 {
            return;
        }
        let nx = w.load(self.next_ranks, &tids, mask);
        w.alu(2);
        let mut new = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                new[lane] = (self.base + self.damping * f32::from_bits(nx[lane])).to_bits();
            }
        }
        w.store(self.ranks, &tids, &new, mask);
        w.store(self.next_ranks, &tids, &[0f32.to_bits(); WARP_SIZE], mask);
    }
}

/// Runs PageRank on the simulated device.
pub fn run(dev: &mut Device, csr: &Csr, cfg: &PageRankConfig) -> Result<PageRankResult, MemError> {
    let n = csr.n() as u32;
    if n == 0 {
        return Ok(PageRankResult {
            ranks: Vec::new(),
            iterations: 0,
            kernel_ns: 0,
            total_ns: 0,
            metrics: KernelMetrics::default(),
        });
    }
    let tpb = cfg.eta.threads_per_block;
    let (dg, mut now) = DeviceGraph::upload(dev, csr, cfg.eta.transfer, 0)?;

    let ranks = dev.mem.alloc_explicit(n as u64)?;
    let next_ranks = dev.mem.alloc_explicit(n as u64)?;
    let contrib = dev.mem.alloc_explicit(n as u64)?;
    let n_shadows = shadow_count_graph(csr, cfg.eta.k) as u32;
    let queue = VirtualQueue::alloc(dev, n_shadows.max(1))?;

    let init = vec![(1.0f32 / n as f32).to_bits(); n as usize];
    now = dev.mem.copy_h2d(ranks, 0, &init, now);
    now = dev
        .mem
        .copy_h2d(next_ranks, 0, &vec![0f32.to_bits(); n as usize], now);
    now = queue.reset(dev, now);
    dg.prefetch(dev, now);

    let mut metrics = KernelMetrics::default();
    let mut kernel_ns = 0u64;
    let launch = |dev: &mut Device,
                  kern: &dyn Kernel,
                  items: u32,
                  now: Ns,
                  metrics: &mut KernelMetrics,
                  kernel_ns: &mut u64|
     -> Ns {
        let r = dev.launch(kern, LaunchConfig::for_items(items, tpb), now);
        metrics.merge(&r.metrics);
        *kernel_ns += r.metrics.time_ns;
        r.end_ns.max(r.metrics.data_ready_ns)
    };

    // Static UDC: all vertices cut once, the queue reused every iteration.
    let udc = StaticUdcKernel {
        n,
        row_offsets: dg.row_offsets,
        out: queue,
        k: cfg.eta.k,
    };
    now = launch(dev, &udc, n, now, &mut metrics, &mut kernel_ns);
    let (len, t) = queue.read_count(dev, now);
    now = t;
    debug_assert_eq!(len, n_shadows);

    // Dangling mass is constant per iteration only if recomputed; track it
    // host-side from the rank snapshot (observer arithmetic, the base-term
    // scalar a real implementation computes with a tiny reduction kernel).
    for _ in 0..cfg.iterations {
        // Adaptive transfer policy: fold last iteration's access density into
        // per-group routing decisions before this iteration's kernels run.
        // PageRank is all-active — every iteration sweeps every edge — so
        // the announced volume is the full edge array and regions escalate
        // to streaming from the first boundary (prefetch is provably the
        // right backend for a dense sweep).
        // Fire-and-forget like `dg.prefetch` — kernels stall on page arrival.
        if cfg.eta.transfer == TransferMode::Adaptive {
            dev.mem.adaptive_tick(now, csr.m() as u64 * 4);
        }
        let rank_words = dev.mem.host_read(ranks, 0, n as u64);
        let dangling: f32 = (0..n as usize)
            .filter(|&v| csr.degree(v as u32) == 0)
            .map(|v| f32::from_bits(rank_words[v]))
            .sum();
        let base = (1.0 - cfg.damping) / n as f32 + cfg.damping * dangling / n as f32;

        let contrib_k = ContribKernel {
            n,
            row_offsets: dg.row_offsets,
            ranks,
            contrib,
        };
        now = launch(dev, &contrib_k, n, now, &mut metrics, &mut kernel_ns);

        let scatter = ScatterKernel {
            smp: cfg.eta.smp,
            k: cfg.eta.k,
            queue,
            len,
            col_idx: dg.col_idx,
            contrib,
            next_ranks,
            threads_per_block: tpb,
        };
        now = launch(dev, &scatter, len, now, &mut metrics, &mut kernel_ns);

        let apply = ApplyKernel {
            n,
            ranks,
            next_ranks,
            base,
            damping: cfg.damping,
        };
        now = launch(dev, &apply, n, now, &mut metrics, &mut kernel_ns);
    }

    now = dev.mem.copy_d2h(ranks, n as u64, now);
    let ranks_host: Vec<f32> = dev
        .mem
        .host_read(ranks, 0, n as u64)
        .iter()
        .map(|&b| f32::from_bits(b))
        .collect();
    Ok(PageRankResult {
        ranks: ranks_host,
        iterations: cfg.iterations,
        kernel_ns,
        total_ns: now,
        metrics,
    })
}

/// Fault-aware [`run`] with checkpoint/resume control (see eta-ckpt).
///
/// Unlike the legacy path this polls the injected-fault watchdog after
/// every launch and copy, returning [`QueryError::DeviceFault`] instead of
/// silently completing. The iteration boundary is after the apply step,
/// where `next_ranks` is zero by construction, so the rank words plus the
/// completed-iteration count are the complete state; the static UDC queue
/// is recomputed deterministically on resume rather than snapshotted.
pub fn run_ckpt(
    dev: &mut Device,
    csr: &Csr,
    cfg: &PageRankConfig,
    mut ckpt: CkptCtl<'_>,
) -> Result<PageRankResult, QueryError> {
    let n = csr.n() as u32;
    if n == 0 {
        return Ok(PageRankResult {
            ranks: Vec::new(),
            iterations: 0,
            kernel_ns: 0,
            total_ns: 0,
            metrics: KernelMetrics::default(),
        });
    }
    let tpb = cfg.eta.threads_per_block;
    let (dg, mut now) = DeviceGraph::upload(dev, csr, cfg.eta.transfer, 0)?;

    let ranks = dev.mem.alloc_explicit(n as u64)?;
    let next_ranks = dev.mem.alloc_explicit(n as u64)?;
    let contrib = dev.mem.alloc_explicit(n as u64)?;
    let n_shadows = shadow_count_graph(csr, cfg.eta.k) as u32;
    let queue = VirtualQueue::alloc(dev, n_shadows.max(1))?;

    let done = if let Some(ck) = ckpt.resume {
        ck.validate(ckpt.graph_digest, n)?;
        let ranks_bits = match &ck.state {
            CkptState::PageRank { ranks_bits } => ranks_bits,
            _ => return Err(CkptError::StateShape.into()),
        };
        if ranks_bits.len() != n as usize || ck.iteration > cfg.iterations {
            return Err(CkptError::StateShape.into());
        }
        now = dev.mem.copy_h2d(ranks, 0, ranks_bits, now);
        if dev.mem.prof.is_enabled() {
            dev.mem.prof.record(
                Track::Ckpt,
                "resume",
                0,
                now,
                vec![
                    ("iteration", ck.iteration.into()),
                    ("words", ck.payload_words().into()),
                    ("kind", ck.state.kind().into()),
                ],
            );
        }
        ck.iteration
    } else {
        let init = vec![(1.0f32 / n as f32).to_bits(); n as usize];
        now = dev.mem.copy_h2d(ranks, 0, &init, now);
        0
    };
    now = dev
        .mem
        .copy_h2d(next_ranks, 0, &vec![0f32.to_bits(); n as usize], now);
    now = queue.reset(dev, now);
    dg.prefetch(dev, now);

    let mut metrics = KernelMetrics::default();
    let mut kernel_ns = 0u64;
    let launch = |dev: &mut Device,
                  kern: &dyn Kernel,
                  items: u32,
                  now: Ns,
                  metrics: &mut KernelMetrics,
                  kernel_ns: &mut u64|
     -> Result<Ns, QueryError> {
        let r = dev.launch(kern, LaunchConfig::for_items(items, tpb), now);
        metrics.merge(&r.metrics);
        *kernel_ns += r.metrics.time_ns;
        if let Some(f) = dev.take_fault() {
            return Err(f.into());
        }
        Ok(r.end_ns.max(r.metrics.data_ready_ns))
    };

    // Static UDC: recomputed identically whether fresh or resumed, so the
    // snapshot never needs to carry the queue.
    let udc = StaticUdcKernel {
        n,
        row_offsets: dg.row_offsets,
        out: queue,
        k: cfg.eta.k,
    };
    now = launch(dev, &udc, n, now, &mut metrics, &mut kernel_ns)?;
    let (len, t) = queue.read_count(dev, now);
    now = t;
    debug_assert_eq!(len, n_shadows);

    for it in done..cfg.iterations {
        let rank_words = dev.mem.host_read(ranks, 0, n as u64);
        let dangling: f32 = (0..n as usize)
            .filter(|&v| csr.degree(v as u32) == 0)
            .map(|v| f32::from_bits(rank_words[v]))
            .sum();
        let base = (1.0 - cfg.damping) / n as f32 + cfg.damping * dangling / n as f32;

        let contrib_k = ContribKernel {
            n,
            row_offsets: dg.row_offsets,
            ranks,
            contrib,
        };
        now = launch(dev, &contrib_k, n, now, &mut metrics, &mut kernel_ns)?;

        let scatter = ScatterKernel {
            smp: cfg.eta.smp,
            k: cfg.eta.k,
            queue,
            len,
            col_idx: dg.col_idx,
            contrib,
            next_ranks,
            threads_per_block: tpb,
        };
        now = launch(dev, &scatter, len, now, &mut metrics, &mut kernel_ns)?;

        let apply = ApplyKernel {
            n,
            ranks,
            next_ranks,
            base,
            damping: cfg.damping,
        };
        now = launch(dev, &apply, n, now, &mut metrics, &mut kernel_ns)?;

        // Iteration boundary: apply zeroed next_ranks, so the rank words
        // are the whole state.
        let completed = it + 1;
        if completed < cfg.iterations {
            if let Some(sink) = ckpt.sink.as_deref_mut() {
                if sink.policy.due(completed) {
                    let ck_start = now;
                    now = dev.mem.copy_d2h(ranks, n as u64, now);
                    if let Some(f) = dev.take_fault() {
                        return Err(f.into());
                    }
                    let ck = Checkpoint {
                        graph_digest: ckpt.graph_digest,
                        n,
                        iteration: completed,
                        taken_at_ns: now,
                        state: CkptState::PageRank {
                            ranks_bits: dev.mem.host_read(ranks, 0, n as u64).to_vec(),
                        },
                    };
                    if dev.mem.prof.is_enabled() {
                        dev.mem.prof.record(
                            Track::Ckpt,
                            "checkpoint",
                            ck_start,
                            now,
                            vec![
                                ("iteration", completed.into()),
                                ("words", ck.payload_words().into()),
                            ],
                        );
                    }
                    sink.store(ck);
                }
            }
        }
    }

    now = dev.mem.copy_d2h(ranks, n as u64, now);
    if let Some(f) = dev.take_fault() {
        return Err(f.into());
    }
    let ranks_host: Vec<f32> = dev
        .mem
        .host_read(ranks, 0, n as u64)
        .iter()
        .map(|&b| f32::from_bits(b))
        .collect();
    Ok(PageRankResult {
        ranks: ranks_host,
        iterations: cfg.iterations,
        kernel_ns,
        total_ns: now,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransferMode;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;
    use eta_sim::GpuConfig;

    fn device() -> Device {
        Device::new(GpuConfig::default_preset())
    }

    fn max_abs_diff(a: &[f32], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x as f64 - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn pagerank_matches_f64_reference() {
        let g = rmat(&RmatConfig::paper(10, 15_000, 31));
        let cfg = PageRankConfig::default();
        let mut dev = device();
        let r = run(&mut dev, &g, &cfg).unwrap();
        let expect = reference::pagerank(&g, 0.85, 20);
        let err = max_abs_diff(&r.ranks, &expect);
        assert!(err < 1e-5, "f32 GPU vs f64 host diverged: {err}");
        let total: f32 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "mass {total}");
    }

    #[test]
    fn smp_does_not_change_ranks_but_cuts_transactions() {
        let g = rmat(&RmatConfig::paper(12, 120_000, 8));
        let with_cfg = PageRankConfig {
            iterations: 5,
            ..Default::default()
        };
        let mut without_cfg = with_cfg;
        without_cfg.eta.smp = false;

        let mut dev = device();
        let with = run(&mut dev, &g, &with_cfg).unwrap();
        let mut dev = device();
        let without = run(&mut dev, &g, &without_cfg).unwrap();
        let drift = with
            .ranks
            .iter()
            .zip(&without.ranks)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(drift < 1e-6, "SMP changed ranks by {drift}");
        assert!(
            (with.metrics.l1_requests as f64) < 0.9 * without.metrics.l1_requests as f64,
            "SMP applies to PageRank too: {} vs {}",
            with.metrics.l1_requests,
            without.metrics.l1_requests
        );
    }

    #[test]
    fn resumed_pagerank_is_bit_identical() {
        let g = rmat(&RmatConfig::paper(10, 15_000, 31));
        let cfg = PageRankConfig::default();
        let digest = g.digest();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        let mut dev = device();
        let clean = run(&mut dev, &g, &cfg).unwrap();

        let mut dev2 = device();
        let mut sink = eta_ckpt::CkptSink::every(7);
        let ckd = run_ckpt(&mut dev2, &g, &cfg, CkptCtl::with_sink(&mut sink, digest)).unwrap();
        assert_eq!(
            bits(&ckd.ranks),
            bits(&clean.ranks),
            "checkpointing is result-inert"
        );
        let ck = sink.take().unwrap();
        assert_eq!(ck.iteration, 14, "snapshots at 7 and 14 of 20, keep last");

        let mut dev3 = device();
        let mut sink3 = eta_ckpt::CkptSink::default();
        let resumed = run_ckpt(
            &mut dev3,
            &g,
            &cfg,
            CkptCtl::resuming(&mut sink3, &ck, digest),
        )
        .unwrap();
        assert_eq!(
            bits(&resumed.ranks),
            bits(&clean.ranks),
            "resume replays the remaining iterations bit-for-bit"
        );
        assert_eq!(resumed.iterations, clean.iterations);
    }

    #[test]
    fn uniform_cycle_ranks_uniformly() {
        let n = 64u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Csr::from_edges(n as usize, &edges);
        let mut dev = device();
        let r = run(&mut dev, &g, &PageRankConfig::default()).unwrap();
        for &rank in &r.ranks {
            assert!((rank - 1.0 / n as f32).abs() < 1e-6);
        }
    }

    #[test]
    fn dangling_vertices_keep_mass_conserved() {
        // Half the vertices have no out-edges.
        let edges: Vec<(u32, u32)> = (0..32u32).map(|i| (i, 32 + i)).collect();
        let g = Csr::from_edges(64, &edges);
        let mut dev = device();
        let r = run(&mut dev, &g, &PageRankConfig::default()).unwrap();
        let total: f32 = r.ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "mass {total}");
        let expect = reference::pagerank(&g, 0.85, 20);
        assert!(max_abs_diff(&r.ranks, &expect) < 1e-5);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        let mut dev = device();
        let r = run(&mut dev, &g, &PageRankConfig::default()).unwrap();
        assert!(r.ranks.is_empty());
    }

    #[test]
    fn unified_memory_modes_agree() {
        let g = rmat(&RmatConfig::paper(9, 6_000, 3));
        let mut results = Vec::new();
        for transfer in [
            TransferMode::UnifiedPrefetch,
            TransferMode::Unified,
            TransferMode::ExplicitCopy,
        ] {
            let mut cfg = PageRankConfig::default();
            cfg.eta.transfer = transfer;
            cfg.iterations = 8;
            let mut dev = device();
            results.push(run(&mut dev, &g, &cfg).unwrap().ranks);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }
}
