//! Results of a traversal run: labels + the measurements every experiment
//! consumes. Shared by EtaGraph and the baseline frameworks so Table III can
//! compare them uniformly.

use crate::config::Algorithm;
use eta_mem::timeline::Timeline;
use eta_mem::um::UmStats;
use eta_mem::Ns;
use eta_sim::KernelMetrics;

/// Per-iteration measurements (Tables IV, Figs. 2/4/5).
#[derive(Debug, Clone, Copy)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: u32,
    /// Vertices in the active set at the start of the iteration.
    pub active: u32,
    /// Shadow vertices of exactly degree K processed.
    pub shadow_full: u32,
    /// Shadow vertices of degree < K processed.
    pub shadow_partial: u32,
    /// Whether this iteration ran the pull-based (direction-optimizing)
    /// kernel instead of push-based UDC traversal.
    pub pulled: bool,
    /// Cumulative vertices with a non-initial label after the iteration.
    pub visited_total: u64,
    pub start_ns: Ns,
    pub end_ns: Ns,
}

/// Outcome of a full traversal on a device.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub algorithm: Algorithm,
    pub labels: Vec<u32>,
    pub iterations: u32,
    /// Sum of kernel execution times (the paper's `t_kernel`).
    pub kernel_ns: Ns,
    /// End-to-end time including transfers (the paper's `t_total`).
    pub total_ns: Ns,
    pub per_iteration: Vec<IterationStats>,
    /// Aggregated kernel counters across all launches.
    pub metrics: KernelMetrics,
    /// Unified Memory migration statistics (empty when UM is unused).
    pub um_stats: UmStats,
    /// Fraction of transfer time hidden under compute (Fig. 4).
    pub overlap_fraction: f64,
    /// The merged transfer+compute timeline of the run.
    pub timeline: Timeline,
}

impl RunResult {
    /// Vertices that ended with a non-initial label.
    pub fn visited(&self) -> usize {
        let init = self.algorithm.init_label();
        self.labels.iter().filter(|&&l| l != init).count()
    }

    /// Activation percentage (Table IV's "Act. %").
    pub fn activation_percent(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        100.0 * self.visited() as f64 / self.labels.len() as f64
    }

    pub fn kernel_ms(&self) -> f64 {
        self.kernel_ns as f64 / 1e6
    }

    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visited_counts_non_initial_labels() {
        let r = RunResult {
            algorithm: Algorithm::Bfs,
            labels: vec![0, 1, u32::MAX, 2],
            iterations: 3,
            kernel_ns: 1_000_000,
            total_ns: 2_000_000,
            per_iteration: vec![],
            metrics: KernelMetrics::default(),
            um_stats: UmStats::default(),
            overlap_fraction: 0.5,
            timeline: Timeline::new(),
        };
        assert_eq!(r.visited(), 3);
        assert!((r.activation_percent() - 75.0).abs() < 1e-9);
        assert!((r.kernel_ms() - 1.0).abs() < 1e-12);
        assert!((r.total_ms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sswp_visited_uses_zero_as_unvisited() {
        let r = RunResult {
            algorithm: Algorithm::Sswp,
            labels: vec![u32::MAX, 5, 0, 0],
            iterations: 1,
            kernel_ns: 0,
            total_ns: 0,
            per_iteration: vec![],
            metrics: KernelMetrics::default(),
            um_stats: UmStats::default(),
            overlap_fraction: 0.0,
            timeline: Timeline::new(),
        };
        assert_eq!(r.visited(), 2);
    }
}
