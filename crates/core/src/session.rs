//! Warm multi-query sessions: upload once, query many times.
//!
//! The paper's total-time measurements pay the topology transfer on every
//! run, but real deployments — the concurrent-query workloads of Pan et
//! al.'s Congra, which the paper cites — issue many traversals against one
//! resident graph. A [`Session`] keeps the device alive between queries:
//! the CSR (and any out-of-core table or transposed pull graph) stays on
//! the device, so every query after the first pays only its label
//! initialization and kernels.
//!
//! ```
//! use etagraph::{Algorithm, EtaConfig, session::Session};
//! use eta_graph::generate::{rmat, RmatConfig};
//!
//! let graph = rmat(&RmatConfig::paper(10, 8_000, 1));
//! let mut session = Session::new(&graph, EtaConfig::paper()).unwrap();
//! let cold = session.query(Algorithm::Bfs, 0).unwrap();
//! let warm = session.query(Algorithm::Bfs, 1).unwrap();
//! assert!(warm.total_ns < cold.total_ns);
//! ```

use crate::config::{Algorithm, EtaConfig};
use crate::engine::{self, QueryResources};
use crate::error::QueryError;
use crate::multi_bfs::{self, MultiBfsResources, MultiBfsResult};
use crate::result::RunResult;
use eta_graph::Csr;
use eta_mem::system::MemError;
use eta_mem::Ns;
use eta_sim::{Device, GpuConfig};

/// A device with resident topology, ready to answer traversal queries.
pub struct Session<'g> {
    dev: Device,
    csr: &'g Csr,
    cfg: EtaConfig,
    res: QueryResources,
    /// Batched-BFS state, allocated on the first [`Session::query_batch`].
    multi: Option<MultiBfsResources>,
    /// Simulated wall clock: advances across queries.
    clock_ns: Ns,
    queries: u32,
}

impl<'g> Session<'g> {
    /// Uploads `csr` to a default-preset device and prepares query state.
    pub fn new(csr: &'g Csr, cfg: EtaConfig) -> Result<Self, MemError> {
        Self::with_gpu(csr, cfg, GpuConfig::default_preset())
    }

    /// Same, with an explicit GPU model.
    pub fn with_gpu(csr: &'g Csr, cfg: EtaConfig, gpu: GpuConfig) -> Result<Self, MemError> {
        let mut dev = Device::new(gpu);
        // Pull resources are prepared when the config asks for them; they
        // are only used by BFS queries.
        let (res, ready) = engine::prepare(&mut dev, csr, &cfg, true)?;
        Ok(Session {
            dev,
            csr,
            cfg,
            res,
            multi: None,
            clock_ns: ready,
            queries: 0,
        })
    }

    /// Runs one query. The first query pays the topology transfer (or its
    /// demand migrations); later ones find the pages resident.
    ///
    /// The returned [`RunResult::total_ns`] is this query's duration;
    /// `um_stats` accumulates across the session's lifetime.
    pub fn query(&mut self, alg: Algorithm, source: u32) -> Result<RunResult, QueryError> {
        let start = self.clock_ns;
        let r = engine::run_query(
            &mut self.dev,
            &self.res,
            self.csr,
            source,
            alg,
            &self.cfg,
            start,
            start,
        )?;
        self.clock_ns = start + r.total_ns;
        self.queries += 1;
        Ok(r)
    }

    /// Answers up to 32 BFS queries in one batched traversal (the iBFS
    /// sharing of [`crate::multi_bfs`]): one topology read serves every
    /// source in the batch. Batch state is allocated lazily on first use
    /// and reused afterwards; each source counts as one query.
    pub fn query_batch(&mut self, sources: &[u32]) -> Result<MultiBfsResult, QueryError> {
        if self.multi.is_none() {
            self.multi = Some(MultiBfsResources::alloc(
                &mut self.dev,
                self.csr,
                &self.cfg,
            )?);
        }
        let res = self.multi.as_ref().expect("just allocated");
        let start = self.clock_ns;
        let r = multi_bfs::run_on(
            &mut self.dev,
            self.res.device_graph(),
            res,
            sources,
            &self.cfg,
            start,
        )?;
        self.clock_ns = start + r.total_ns;
        self.queries += sources.len() as u32;
        Ok(r)
    }

    /// Queries answered so far.
    pub fn queries_run(&self) -> u32 {
        self.queries
    }

    /// Simulated time consumed by the session so far.
    pub fn elapsed_ns(&self) -> Ns {
        self.clock_ns
    }

    /// The device, for metric inspection between queries.
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// The `eta-prof` profile accumulated across every query so far.
    ///
    /// Empty unless the session was built over
    /// [`GpuConfig::with_profiling`] (see [`Session::with_gpu`]).
    pub fn profile(&self) -> eta_prof::Profile {
        self.dev.profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::reference;

    fn graph() -> Csr {
        rmat(&RmatConfig::paper(12, 80_000, 44)).with_random_weights(2, 32)
    }

    #[test]
    fn warm_queries_match_reference_and_amortize_transfer() {
        let g = graph();
        let mut s = Session::new(&g, EtaConfig::paper()).unwrap();
        let cold = s.query(Algorithm::Bfs, 0).unwrap();
        assert_eq!(cold.labels, reference::bfs(&g, 0));

        let warm = s.query(Algorithm::Bfs, 0).unwrap();
        assert_eq!(warm.labels, cold.labels);
        // Prefetch already hides most of the cold transfer, so the time win
        // is modest on a small graph; the sharp assertion is on transferred
        // bytes (see per_query_timelines_do_not_leak_between_queries).
        assert!(
            (warm.total_ns as f64) < 0.9 * cold.total_ns as f64,
            "warm {} vs cold {} — resident topology must amortize",
            warm.total_ns,
            cold.total_ns
        );
        assert_eq!(s.queries_run(), 2);
    }

    #[test]
    fn mixed_algorithms_share_one_session() {
        let g = graph();
        let mut s = Session::new(&g, EtaConfig::paper()).unwrap();
        for (alg, expect) in [
            (Algorithm::Bfs, reference::bfs(&g, 5)),
            (Algorithm::Sssp, reference::sssp(&g, 5)),
            (Algorithm::Sswp, reference::sswp(&g, 5)),
        ] {
            let r = s.query(alg, 5).unwrap();
            assert_eq!(r.labels, expect, "{}", alg.name());
        }
    }

    #[test]
    fn many_sources_stay_consistent_and_monotone() {
        let g = graph();
        let mut s = Session::new(&g, EtaConfig::paper()).unwrap();
        let mut last_end = 0;
        for src in [0u32, 9, 77, 1234] {
            let r = s.query(Algorithm::Bfs, src).unwrap();
            assert_eq!(r.labels, reference::bfs(&g, src), "src {src}");
            assert!(s.elapsed_ns() > last_end);
            last_end = s.elapsed_ns();
        }
    }

    #[test]
    fn session_respects_out_of_core_and_pull_configs() {
        let g = graph();
        let mut s = Session::new(&g, EtaConfig::out_of_core()).unwrap();
        let r = s.query(Algorithm::Bfs, 0).unwrap();
        assert_eq!(r.labels, reference::bfs(&g, 0));

        let mut s = Session::new(&g, EtaConfig::direction_optimizing()).unwrap();
        let r = s.query(Algorithm::Bfs, 0).unwrap();
        assert_eq!(r.labels, reference::bfs(&g, 0));
        assert!(r.per_iteration.iter().any(|st| st.pulled));
        // A weighted query on the same session ignores the pull machinery.
        let r = s.query(Algorithm::Sssp, 0).unwrap();
        assert_eq!(r.labels, reference::sssp(&g, 0));
    }

    #[test]
    fn batched_queries_share_the_session_clock_and_match_reference() {
        let g = graph();
        let mut s = Session::new(&g, EtaConfig::paper()).unwrap();
        let r = s.query_batch(&[0, 9, 77]).unwrap();
        for (i, &src) in [0u32, 9, 77].iter().enumerate() {
            assert_eq!(r.levels[i], reference::bfs(&g, src), "source {src}");
        }
        assert_eq!(s.queries_run(), 3);
        let t1 = s.elapsed_ns();
        assert!(t1 > 0);
        // Second batch reuses the lazily-allocated resources and advances
        // the clock from where the first left off.
        let r2 = s.query_batch(&[5]).unwrap();
        assert_eq!(r2.levels[0], reference::bfs(&g, 5));
        assert!(s.elapsed_ns() > t1);
        assert_eq!(s.queries_run(), 4);
        // Single-source queries interleave with batches on one session.
        let single = s.query(Algorithm::Bfs, 5).unwrap();
        assert_eq!(single.labels, reference::bfs(&g, 5));
    }

    #[test]
    fn invalid_sources_are_typed_errors_on_a_live_session() {
        let g = graph();
        let n = g.n() as u32;
        let mut s = Session::new(&g, EtaConfig::paper()).unwrap();
        let err = s.query(Algorithm::Bfs, n).unwrap_err();
        assert!(matches!(
            err,
            crate::error::QueryError::SourceOutOfRange { source, vertices }
                if source == n && vertices == g.n()
        ));
        let err = s.query_batch(&[0, n + 7]).unwrap_err();
        assert!(matches!(
            err,
            crate::error::QueryError::SourceOutOfRange { source, .. } if source == n + 7
        ));
        // The session stays usable after a rejected request.
        let r = s.query(Algorithm::Bfs, 0).unwrap();
        assert_eq!(r.labels, reference::bfs(&g, 0));
    }

    #[test]
    fn profiled_session_records_kernels_iterations_and_transfers() {
        let g = graph();
        let gpu = eta_sim::GpuConfig::default_preset().with_profiling();
        let mut s = Session::with_gpu(&g, EtaConfig::paper(), gpu).unwrap();
        let r = s.query(Algorithm::Bfs, 0).unwrap();
        let p = s.profile();
        assert!(p.kernel_busy_ns() > 0, "kernel events missing");
        assert!(p.transfer_busy_ns() > 0, "transfer events missing");
        let iters = p.processes[0]
            .events
            .iter()
            .filter(|e| e.track == eta_prof::Track::Iteration)
            .count() as u32;
        assert_eq!(iters, r.iterations, "one span per BFS iteration");
        // The unprofiled default records nothing.
        let mut quiet = Session::new(&g, EtaConfig::paper()).unwrap();
        quiet.query(Algorithm::Bfs, 0).unwrap();
        assert_eq!(quiet.profile().event_count(), 0);
    }

    #[test]
    fn per_query_timelines_do_not_leak_between_queries() {
        let g = graph();
        let mut s = Session::new(&g, EtaConfig::without_ump()).unwrap();
        let first = s.query(Algorithm::Bfs, 0).unwrap();
        let second = s.query(Algorithm::Bfs, 0).unwrap();
        let bytes = |r: &RunResult| -> u64 {
            r.timeline
                .spans()
                .iter()
                .filter(|sp| sp.kind.is_transfer())
                .map(|sp| sp.bytes)
                .sum()
        };
        assert!(
            bytes(&second) < bytes(&first) / 2,
            "warm query must not re-migrate the topology: {} vs {}",
            bytes(&second),
            bytes(&first)
        );
    }
}
