//! Multi-device BSP sharded traversal over modeled NVLink peer links.
//!
//! The single-device engine ([`crate::engine`]) is bounded by one GPU's
//! memory and SMs. This module runs the same iteration on a device *group*:
//! the graph is split by [`eta_shard::GraphPartition`] into vertex-range
//! shards (each owning its range's out-edges plus zero-degree halo rows for
//! cross-range destinations), every superstep runs the unchanged UDC +
//! traversal kernels on all shards, and the improved halo labels are then
//! exchanged over an [`eta_mem::PeerFabric`] and merged at their owners in
//! **(device id, vertex id) order** — a fixed total order that makes the
//! whole computation deterministic, byte for byte.
//!
//! # Timing model
//!
//! Each shard advances its own simulated clock through its kernel launches
//! and 4-byte count hops, exactly as the single-device engine does. A
//! superstep ends at the *barrier* — the latest shard clock — after which
//! each sender's message batches are charged to the per-pair peer links
//! (batches on the same link serialize; that is the fabric contention).
//! A receiver's next superstep starts at `max(barrier, last incoming
//! transfer end)`. Applying the received values and rebuilding the frontier
//! is host-observer work, free except for the 4-byte frontier-count update
//! — the same charging the engine's resume path uses. Every peer transfer
//! is mirrored into the sender device's profiler on [`Track::Peer`].
//!
//! # Determinism and equivalence
//!
//! For the monotone label algorithms (BFS/SSSP/SSWP/CC) the label arrays
//! converge to the algorithm's unique fixpoint, so `merge(run_sharded(N))`
//! is byte-identical to the single-device labels for every `N` — iteration
//! *counts* may differ (a cross-shard relaxation lands one superstep later
//! than the same intra-device relaxation), the *labels* cannot. PageRank is
//! not monotone — float addition does not commute — so
//! [`run_sharded_pagerank`] replays every scatter message at its owner in
//! the exact global warp-serial order the single-device kernel would have
//! applied them (see the function docs), preserving bit-identical ranks.
//!
//! The sharded path always runs the in-core UDC and never direction
//! optimizes: pull iterations need the global transposed topology, which no
//! shard holds.

use crate::active_set::VirtualQueue;
use crate::config::{Algorithm, EtaConfig, TransferMode, UdcMode};
use crate::device_graph::DeviceGraph;
use crate::engine::{self, QueryResources};
use crate::error::{check_source, QueryError};
use crate::kernels::TraversalKernel;
use crate::pagerank::{ApplyKernel, ContribKernel, PageRankConfig, ScatterKernel, StaticUdcKernel};
use crate::udc::{shadow_count_graph, ActToVirtKernel};
use eta_ckpt::{Checkpoint, CkptCtl, CkptError, CkptState};
use eta_graph::Csr;
use eta_mem::{Ns, PeerFabric};
use eta_prof::Track;
use eta_shard::GraphPartition;
use eta_sim::{Device, KernelMetrics, LaunchConfig};

/// Wire bytes per halo message: a global vertex id plus a label word.
pub const MSG_BYTES: u64 = 8;

/// A query error bound to the group member that raised it, so the serving
/// layer can quarantine the right device and regroup around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedError {
    /// Group slot (partition device index) of the failing shard.
    pub shard: u32,
    pub error: QueryError,
}

impl std::fmt::Display for ShardedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {}: {}", self.shard, self.error)
    }
}

impl std::error::Error for ShardedError {}

fn fail(shard: usize, error: QueryError) -> ShardedError {
    ShardedError {
        shard: shard as u32,
        error,
    }
}

/// Per-superstep measurements of one sharded run.
#[derive(Debug, Clone, Copy)]
pub struct SuperstepStats {
    pub superstep: u32,
    /// Total frontier entries (over all shards) entering the superstep.
    pub active: u32,
    /// Halo messages exchanged at this superstep's boundary.
    pub messages: u32,
    /// Bytes those messages moved over the peer fabric.
    pub exchanged_bytes: u64,
    pub start_ns: Ns,
    pub end_ns: Ns,
}

/// Outcome of a sharded traversal.
#[derive(Debug, Clone)]
pub struct ShardedRunResult {
    pub algorithm: Algorithm,
    /// Global per-vertex labels, merged from the shards' owned ranges.
    pub labels: Vec<u32>,
    pub supersteps: u32,
    /// Kernel time summed over all shards.
    pub kernel_ns: Ns,
    /// End-to-end simulated time: the latest shard clock at completion.
    pub total_ns: Ns,
    /// Total bytes moved over the peer fabric by this run.
    pub exchanged_bytes: u64,
    pub metrics: KernelMetrics,
    pub per_superstep: Vec<SuperstepStats>,
}

impl ShardedRunResult {
    /// Average exchanged bytes per superstep (the Table-V-style scaling
    /// report's exchange-volume column).
    pub fn bytes_per_superstep(&self) -> u64 {
        self.exchanged_bytes
            .checked_div(self.supersteps as u64)
            .unwrap_or(0)
    }
}

/// What the owner initialized (or would initialize) global vertex `v` to —
/// also the right initial value for every halo replica, so senders never
/// ship a label the owner already has.
fn global_init_label(alg: Algorithm, source: u32, v: u32) -> u32 {
    if alg.all_active() {
        v
    } else if v == source {
        alg.source_label()
    } else {
        alg.init_label()
    }
}

/// Whether `new` beats `old` under the algorithm's merge order.
fn improves(alg: Algorithm, new: u32, old: u32) -> bool {
    if alg == Algorithm::Sswp {
        new > old
    } else {
        new < old
    }
}

struct ShardState {
    res: QueryResources,
    /// `(act, next)` — swapped every superstep like the engine's pair.
    queues: (
        crate::active_set::DeviceQueue,
        crate::active_set::DeviceQueue,
    ),
    act_len: u32,
    clock: Ns,
    /// Last label shipped per halo slot; suppresses unimproved resends.
    last_sent: Vec<u32>,
}

/// Runs one traversal across the whole device group. See the module docs
/// for the execution and timing model.
pub fn run_sharded(
    devs: &mut [Device],
    fabric: &mut PeerFabric,
    part: &GraphPartition,
    source: u32,
    alg: Algorithm,
    cfg: &EtaConfig,
) -> Result<ShardedRunResult, ShardedError> {
    run_sharded_ckpt(devs, fabric, part, source, alg, cfg, CkptCtl::off())
}

/// [`run_sharded`] with checkpoint/resume control. Checkpoints are taken at
/// superstep boundaries and are **global**: owned labels, tags and frontier
/// are merged into one [`CkptState::SingleSource`] over the global vertex
/// space (`n = part.n`, `graph_digest` = the *global* CSR digest), so a
/// snapshot taken on one group shape resumes on any other — including a
/// single device via the plain engine.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_ckpt(
    devs: &mut [Device],
    fabric: &mut PeerFabric,
    part: &GraphPartition,
    source: u32,
    alg: Algorithm,
    cfg: &EtaConfig,
    ckpt: CkptCtl<'_>,
) -> Result<ShardedRunResult, ShardedError> {
    assert_eq!(devs.len(), part.shards.len(), "one device per shard");
    assert!(
        fabric.devices() as usize >= devs.len(),
        "fabric must span the group"
    );
    assert!(
        !alg.needs_weights() || part.shards.iter().all(|s| s.csr.is_weighted()),
        "{} needs an edge-weighted partition",
        alg.name()
    );
    check_source(source, part.n as usize).map_err(|e| fail(0, e))?;
    // Pull needs the global transpose; out-of-core UDC would ship one table
    // per shard. Both are single-device experiments — normalize them away.
    let cfg = EtaConfig {
        udc: UdcMode::InCore,
        direction_optimizing: false,
        ..*cfg
    };

    let mut states = Vec::with_capacity(devs.len());
    for (s, shard) in part.shards.iter().enumerate() {
        let (res, ready) = engine::prepare(&mut devs[s], &shard.csr, &cfg, false)
            .map_err(|e| fail(s, e.into()))?;
        let queues = (res.act, res.next);
        states.push(ShardState {
            res,
            queues,
            act_len: 0,
            clock: ready,
            last_sent: Vec::new(),
        });
    }

    let result = drive(devs, fabric, part, source, alg, &cfg, ckpt, &mut states);
    for (s, st) in states.into_iter().enumerate() {
        st.res.release(&mut devs[s]);
    }
    result
}

/// Everything between prepare and release, separated so resources are
/// returned to the devices on both the success and the fault path (the
/// serving layer reuses group members after a fault elsewhere in the group).
#[allow(clippy::too_many_arguments)]
fn drive(
    devs: &mut [Device],
    fabric: &mut PeerFabric,
    part: &GraphPartition,
    source: u32,
    alg: Algorithm,
    cfg: &EtaConfig,
    mut ckpt: CkptCtl<'_>,
    states: &mut [ShardState],
) -> Result<ShardedRunResult, ShardedError> {
    let nshards = states.len();
    let mut metrics = KernelMetrics::default();
    let mut kernel_ns = 0u64;
    let mut per_superstep = Vec::new();
    let mut exchanged_bytes = 0u64;

    // --- initialize labels, tags and frontiers ------------------------------
    let start_step = if let Some(ck) = ckpt.resume {
        ck.validate(ckpt.graph_digest, part.n)
            .map_err(|e| fail(0, e.into()))?;
        let (ck_source, ck_labels, ck_tags, ck_frontier) = match &ck.state {
            CkptState::SingleSource {
                source: s,
                labels,
                tags,
                frontier,
            } => (*s, labels, tags, frontier),
            _ => return Err(fail(0, CkptError::StateShape.into())),
        };
        if ck_source != source
            || ck_labels.len() != part.n as usize
            || ck_tags.len() != part.n as usize
        {
            return Err(fail(0, CkptError::StateShape.into()));
        }
        for (s, shard) in part.shards.iter().enumerate() {
            let own = shard.own_len() as usize;
            let mut labels: Vec<u32> = ck_labels[shard.lo as usize..shard.hi as usize].to_vec();
            labels.extend(shard.halo.iter().map(|&g| ck_labels[g as usize]));
            let mut tags: Vec<u32> = ck_tags[shard.lo as usize..shard.hi as usize].to_vec();
            tags.resize(shard.local_n() as usize, 0);
            let frontier: Vec<u32> = ck_frontier
                .iter()
                .filter(|&&g| part.owner(g) as usize == s)
                .map(|&g| g - shard.lo)
                .collect();
            let st = &mut states[s];
            let dev = &mut devs[s];
            let resume_start = st.clock;
            let mut now = dev.mem.copy_h2d(st.res.labels, 0, &labels, st.clock);
            now = dev.mem.copy_h2d(st.res.tags, 0, &tags, now);
            st.queues.0.host_seed(dev, &frontier);
            now = dev
                .mem
                // lint: allow(L-CAST-TRUNC): frontier entries live in the u32 vertex space
                .copy_h2d(st.queues.0.count, 0, &[frontier.len() as u32], now);
            st.res.dg.prefetch(dev, now);
            if dev.mem.prof.is_enabled() {
                dev.mem.prof.record(
                    Track::Ckpt,
                    "resume",
                    resume_start,
                    now,
                    vec![
                        ("iteration", ck.iteration.into()),
                        ("shard", (s as u32).into()),
                        // lint: allow(L-CAST-TRUNC): frontier entries live in the u32 vertex space
                        ("frontier", (frontier.len() as u32).into()),
                    ],
                );
            }
            st.last_sent = labels[own..].to_vec();
            // lint: allow(L-CAST-TRUNC): frontier entries live in the u32 vertex space
            st.act_len = frontier.len() as u32;
            st.clock = now;
        }
        ck.iteration
    } else {
        for (s, shard) in part.shards.iter().enumerate() {
            let own = shard.own_len() as usize;
            let mut labels: Vec<u32> = (shard.lo..shard.hi)
                .map(|g| global_init_label(alg, source, g))
                .collect();
            labels.extend(
                shard
                    .halo
                    .iter()
                    .map(|&g| global_init_label(alg, source, g)),
            );
            let seeds: Vec<u32> = if alg.all_active() {
                (0..shard.own_len()).collect()
            } else if part.owner(source) as usize == s {
                vec![source - shard.lo]
            } else {
                Vec::new()
            };
            let st = &mut states[s];
            let dev = &mut devs[s];
            let mut now = dev.mem.copy_h2d(st.res.labels, 0, &labels, st.clock);
            now = dev
                .mem
                .copy_h2d(st.res.tags, 0, &vec![0u32; shard.local_n() as usize], now);
            st.queues.0.host_seed(dev, &seeds);
            now = dev
                .mem
                // lint: allow(L-CAST-TRUNC): seeds are vertices in the u32 vertex space
                .copy_h2d(st.queues.0.count, 0, &[seeds.len() as u32], now);
            st.res.dg.prefetch(dev, now);
            st.last_sent = labels[own..].to_vec();
            // lint: allow(L-CAST-TRUNC): seeds are vertices in the u32 vertex space
            st.act_len = seeds.len() as u32;
            st.clock = now;
        }
        0
    };

    // --- BSP superstep loop -------------------------------------------------
    let mut step = start_step;
    while states.iter().any(|st| st.act_len > 0) {
        step += 1;
        let active_entering: u32 = states.iter().map(|st| st.act_len).sum();
        let start_ns = states
            .iter()
            .filter(|st| st.act_len > 0)
            .map(|st| st.clock)
            .min()
            .unwrap_or(0);

        // 1. One local engine iteration per shard with a non-empty frontier.
        for s in 0..nshards {
            if states[s].act_len == 0 {
                continue;
            }
            shard_iteration(
                &mut devs[s],
                &mut states[s],
                &part.shards[s].csr,
                alg,
                cfg,
                step,
                s as u32,
                &mut metrics,
                &mut kernel_ns,
            )
            .map_err(|e| fail(s, e))?;
        }

        // 2. Superstep barrier, then collect the improved halo labels.
        //    Collection is host-observer work over the pre-merge state of
        //    every shard (BSP: messages reflect the superstep just run).
        // lint: allow(L-PANIC): devs is non-empty (asserted against part.shards at entry)
        let barrier = states.iter().map(|st| st.clock).max().expect("non-empty");
        let mut msgs: Vec<Vec<Vec<(u32, u32)>>> = vec![vec![Vec::new(); nshards]; nshards];
        for s in 0..nshards {
            let shard = &part.shards[s];
            if shard.halo.is_empty() {
                continue;
            }
            let own = shard.own_len() as usize;
            let labels_now = devs[s]
                .mem
                .host_read(states[s].res.labels, 0, shard.local_n() as u64)
                .to_vec();
            for (h, &gv) in shard.halo.iter().enumerate() {
                let cur = labels_now[own + h];
                if improves(alg, cur, states[s].last_sent[h]) {
                    states[s].last_sent[h] = cur;
                    msgs[s][part.owner(gv) as usize].push((gv, cur));
                }
            }
        }

        // 3. Charge each sender→owner batch to the pair's peer link.
        let mark = fabric.log().len();
        let mut ready = vec![barrier; nshards];
        let mut step_msgs = 0u32;
        let mut step_bytes = 0u64;
        for s in 0..nshards {
            for o in 0..nshards {
                if msgs[s][o].is_empty() {
                    continue;
                }
                let bytes = msgs[s][o].len() as u64 * MSG_BYTES;
                let (_, end) = fabric.transfer(s as u32, o as u32, bytes, barrier);
                ready[o] = ready[o].max(end);
                // lint: allow(L-CAST-TRUNC): one message per halo slot, bounded by the u32 vertex space
                step_msgs += msgs[s][o].len() as u32;
                step_bytes += bytes;
            }
        }
        exchanged_bytes += step_bytes;
        mirror_peer_spans(devs, fabric, mark);
        for (st, r) in states.iter_mut().zip(&ready) {
            st.clock = *r;
        }

        // 4. Merge at the owners in (sender device id, vertex id) order and
        //    append newly improved owned vertices to the owner's frontier.
        for o in 0..nshards {
            if (0..nshards).all(|s| msgs[s][o].is_empty()) {
                continue;
            }
            let shard = &part.shards[o];
            let mut labels_host = devs[o]
                .mem
                .host_read(states[o].res.labels, 0, shard.local_n() as u64)
                .to_vec();
            let mut improved: Vec<u32> = Vec::new();
            for sender in msgs.iter() {
                for &(gv, label) in &sender[o] {
                    let local = (gv - shard.lo) as usize;
                    if improves(alg, label, labels_host[local]) {
                        labels_host[local] = label;
                        improved.push(local as u32);
                    }
                }
            }
            if improved.is_empty() {
                continue;
            }
            devs[o]
                .mem
                .host_write(states[o].res.labels, 0, &labels_host);
            improved.sort_unstable();
            improved.dedup();
            let mut items = devs[o]
                .mem
                .host_read(states[o].queues.0.items, 0, states[o].act_len as u64)
                .to_vec();
            let mut queued = vec![false; shard.local_n() as usize];
            for &v in &items {
                queued[v as usize] = true;
            }
            let before = items.len();
            items.extend(improved.iter().copied().filter(|&v| !queued[v as usize]));
            if items.len() > before {
                // Rebuild like the engine's resume path: host-seeded items
                // plus one charged 4-byte count update.
                states[o].queues.0.host_seed(&mut devs[o], &items);
                states[o].clock = devs[o].mem.copy_h2d(
                    states[o].queues.0.count,
                    0,
                    // lint: allow(L-CAST-TRUNC): merged frontier items are vertices in the u32 vertex space
                    &[items.len() as u32],
                    states[o].clock,
                );
                // lint: allow(L-CAST-TRUNC): merged frontier items are vertices in the u32 vertex space
                states[o].act_len = items.len() as u32;
            }
        }

        // lint: allow(L-PANIC): devs is non-empty (asserted against part.shards at entry)
        let end_ns = states.iter().map(|st| st.clock).max().expect("non-empty");
        per_superstep.push(SuperstepStats {
            superstep: step,
            active: active_entering,
            messages: step_msgs,
            exchanged_bytes: step_bytes,
            start_ns,
            end_ns,
        });

        // 5. Global checkpoint at the superstep boundary (post-merge state).
        if states.iter().any(|st| st.act_len > 0) {
            let digest = ckpt.graph_digest;
            if let Some(sink) = ckpt.sink.as_deref_mut() {
                if sink.policy.due(step) {
                    let ck = take_checkpoint(devs, part, states, source, step, digest)?;
                    sink.store(ck);
                }
            }
        }
    }

    // --- owned labels back to the host --------------------------------------
    let mut owned = Vec::with_capacity(nshards);
    for (s, shard) in part.shards.iter().enumerate() {
        let own = shard.own_len() as u64;
        let st = &mut states[s];
        st.clock = devs[s].mem.copy_d2h(st.res.labels, own, st.clock);
        if let Some(f) = devs[s].take_fault() {
            return Err(fail(s, f.into()));
        }
        owned.push(devs[s].mem.host_read(st.res.labels, 0, own).to_vec());
    }
    let labels = part.merge_owned(&owned);
    let total_ns = states.iter().map(|st| st.clock).max().unwrap_or(0);
    Ok(ShardedRunResult {
        algorithm: alg,
        labels,
        supersteps: step - start_step,
        kernel_ns,
        total_ns,
        exchanged_bytes,
        metrics,
        per_superstep,
    })
}

/// One engine iteration on one shard: reset, UDC cut, traversal over the
/// full and tail queues, frontier swap, count readback. Identical charging
/// to the single-device loop.
#[allow(clippy::too_many_arguments)]
fn shard_iteration(
    dev: &mut Device,
    st: &mut ShardState,
    shard_csr: &Csr,
    alg: Algorithm,
    cfg: &EtaConfig,
    step: u32,
    shard: u32,
    metrics: &mut KernelMetrics,
    kernel_ns: &mut u64,
) -> Result<(), QueryError> {
    let tpb = cfg.threads_per_block;
    // Adaptive policy tick at the superstep boundary, per shard (each shard
    // device runs its own policy over its own partition's regions),
    // announcing this superstep's local frontier edge volume so a dense
    // wave escalates the shard's regions to streaming before it breaks.
    if cfg.transfer == TransferMode::Adaptive {
        let frontier = dev.mem.host_read(st.queues.0.items, 0, st.act_len as u64);
        let out_edges: u64 = frontier
            .iter()
            .map(|&v| {
                (shard_csr.row_offsets[v as usize + 1] - shard_csr.row_offsets[v as usize]) as u64
            })
            .sum();
        dev.mem.adaptive_tick(st.clock, out_edges * 4);
    }
    let start_ns = st.clock;
    let (act, next) = (st.queues.0, st.queues.1);
    let mut now = next.reset(dev, st.clock);
    now = st.res.full.reset(dev, now);
    now = st.res.partial.reset(dev, now);

    let a2v = ActToVirtKernel::new(
        &act,
        st.act_len,
        st.res.dg.row_offsets,
        &st.res.full,
        &st.res.partial,
        cfg.k,
    );
    let r = dev.launch(&a2v, LaunchConfig::for_items(st.act_len, tpb), now);
    now = r.end_ns.max(r.metrics.data_ready_ns);
    metrics.merge(&r.metrics);
    *kernel_ns += r.metrics.time_ns;
    if let Some(f) = dev.take_fault() {
        return Err(f.into());
    }

    let (nf, t) = st.res.full.read_count(dev, now);
    now = t;
    let (np, t) = st.res.partial.read_count(dev, now);
    now = t;
    for (queue, len) in [(st.res.full, nf), (st.res.partial, np)] {
        if len == 0 {
            continue;
        }
        let kern = TraversalKernel {
            alg,
            smp: cfg.smp,
            k: cfg.k,
            queue,
            len,
            col_idx: st.res.dg.col_idx,
            weights: if alg.needs_weights() {
                st.res.dg.weights
            } else {
                None
            },
            labels: st.res.labels,
            tags: st.res.tags,
            next,
            iter: step,
            threads_per_block: tpb,
        };
        let r = dev.launch(&kern, LaunchConfig::for_items(len, tpb), now);
        now = r.end_ns.max(r.metrics.data_ready_ns);
        metrics.merge(&r.metrics);
        *kernel_ns += r.metrics.time_ns;
        if let Some(f) = dev.take_fault() {
            return Err(f.into());
        }
    }

    if dev.mem.prof.is_enabled() {
        dev.mem.prof.record(
            Track::Iteration,
            alg.name(),
            start_ns,
            now,
            vec![
                ("iteration", step.into()),
                ("shard", shard.into()),
                ("active", st.act_len.into()),
                ("shadow_full", nf.into()),
                ("shadow_partial", np.into()),
            ],
        );
    }

    st.queues = (st.queues.1, st.queues.0);
    let (len, t) = st.queues.0.read_count(dev, now);
    st.act_len = len;
    st.clock = t;
    Ok(())
}

/// Mirrors peer-fabric transfers recorded since `mark` into the sending
/// device's profiler on [`Track::Peer`].
fn mirror_peer_spans(devs: &mut [Device], fabric: &PeerFabric, mark: usize) {
    for t in fabric.log_since(mark) {
        let dev = &mut devs[t.from as usize];
        if dev.mem.prof.is_enabled() {
            dev.mem.prof.record(
                Track::Peer,
                "halo_exchange",
                t.start,
                t.end,
                vec![
                    ("from", t.from.into()),
                    ("to", t.to.into()),
                    ("bytes", t.bytes.into()),
                ],
            );
        }
    }
}

/// Snapshots the whole group into one global checkpoint: charged d2h copies
/// of each shard's owned labels, tags and frontier, merged over the global
/// vertex space. Halo frontier entries are dropped — their deliveries were
/// merged into the owners before this runs, so the owned entries are the
/// complete active set.
fn take_checkpoint(
    devs: &mut [Device],
    part: &GraphPartition,
    states: &mut [ShardState],
    source: u32,
    step: u32,
    graph_digest: u64,
) -> Result<Checkpoint, ShardedError> {
    let mut owned_labels = Vec::with_capacity(states.len());
    let mut owned_tags = Vec::with_capacity(states.len());
    let mut frontier = Vec::new();
    for (s, shard) in part.shards.iter().enumerate() {
        let own = shard.own_len() as u64;
        let st = &mut states[s];
        let dev = &mut devs[s];
        let ck_start = st.clock;
        let mut t = dev.mem.copy_d2h(st.res.labels, own, st.clock);
        t = dev.mem.copy_d2h(st.res.tags, own, t);
        t = dev.mem.copy_d2h(st.queues.0.items, st.act_len as u64, t);
        if let Some(f) = dev.take_fault() {
            return Err(fail(s, f.into()));
        }
        owned_labels.push(dev.mem.host_read(st.res.labels, 0, own).to_vec());
        owned_tags.push(dev.mem.host_read(st.res.tags, 0, own).to_vec());
        frontier.extend(
            dev.mem
                .host_read(st.queues.0.items, 0, st.act_len as u64)
                .iter()
                .filter(|&&l| l < shard.own_len())
                .map(|&l| shard.lo + l),
        );
        if dev.mem.prof.is_enabled() {
            dev.mem.prof.record(
                Track::Ckpt,
                "checkpoint",
                ck_start,
                t,
                vec![("iteration", step.into()), ("shard", (s as u32).into())],
            );
        }
        st.clock = t;
    }
    Ok(Checkpoint {
        graph_digest,
        n: part.n,
        iteration: step,
        taken_at_ns: states.iter().map(|st| st.clock).max().unwrap_or(0),
        state: CkptState::SingleSource {
            source,
            labels: part.merge_owned(&owned_labels),
            tags: part.merge_owned(&owned_tags),
            frontier,
        },
    })
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

/// Outcome of a sharded PageRank run.
#[derive(Debug, Clone)]
pub struct ShardedPageRankResult {
    pub ranks: Vec<f32>,
    pub iterations: u32,
    pub kernel_ns: Ns,
    pub total_ns: Ns,
    pub exchanged_bytes: u64,
    pub metrics: KernelMetrics,
    pub per_superstep: Vec<SuperstepStats>,
}

/// Per-destination replay entries: for global vertex `v`, every in-edge's
/// `(warp, step, lane, src)` under the single-device scatter schedule.
type Inedges = Vec<Vec<(u32, u32, u32, u32)>>;

/// The single-device scatter applies `next[dst] += contrib[src]` in a total
/// order fixed by the simulator: blocks and warps run serially in index
/// order, and within a warp's unrolled edge loop lanes apply in lane order
/// at each step `j`. For the shadow at global queue slot `g` that is the
/// key `(g/32, j, g%32)`. Because the static-UDC queue is sorted by vertex
/// id and halo rows cut zero shadows, each shard's local queue is a
/// contiguous slice of the global one — so every message can carry its
/// global key, and the owner can re-apply all of them (local and remote) in
/// the exact global order.
fn build_replay(csr: &Csr, k: u32) -> Inedges {
    let n = csr.n();
    let mut inedges: Inedges = vec![Vec::new(); n];
    let mut g = 0u32;
    for u in 0..n as u32 {
        let (start, end) = (
            csr.row_offsets[u as usize] as usize,
            csr.row_offsets[u as usize + 1] as usize,
        );
        let deg = (end - start) as u32;
        let parts = deg.div_ceil(k);
        for p in 0..parts {
            let s = start + (p * k) as usize;
            let e = (s + k as usize).min(end);
            for (j, &dst) in csr.col_idx[s..e].iter().enumerate() {
                inedges[dst as usize].push((g / 32, j as u32, g % 32, u));
            }
            g += 1;
        }
    }
    for list in &mut inedges {
        list.sort_unstable_by_key(|&(w, j, l, _)| (w, j, l));
    }
    inedges
}

/// Runs PageRank across the device group with **bit-identical** ranks to
/// the single-device [`crate::pagerank::run`].
///
/// Each shard launches the same static-UDC / contrib / scatter / apply
/// kernels on its local slice for timing and metrics; the scatter's
/// float accumulations, however, are order-sensitive, so each owner's
/// `next_ranks` are recomputed by replaying every contribution message in
/// the single-device global order (see `build_replay`) and written back
/// before the apply kernel — the modeled equivalent of shipping
/// `(dst, contrib)` pairs over the fabric and merging them in a canonical
/// order. Cross-shard contributions are charged to the peer links every
/// iteration (PageRank is all-active: every cross edge sends each round);
/// the dangling-mass base term is folded host-side in ascending global
/// vertex order, exactly as the single-device path does.
pub fn run_sharded_pagerank(
    devs: &mut [Device],
    fabric: &mut PeerFabric,
    part: &GraphPartition,
    csr: &Csr,
    cfg: &PageRankConfig,
) -> Result<ShardedPageRankResult, ShardedError> {
    assert_eq!(devs.len(), part.shards.len(), "one device per shard");
    assert_eq!(part.n as usize, csr.n(), "partition must match the graph");
    let n = part.n;
    if n == 0 {
        return Ok(ShardedPageRankResult {
            ranks: Vec::new(),
            iterations: 0,
            kernel_ns: 0,
            total_ns: 0,
            exchanged_bytes: 0,
            metrics: KernelMetrics::default(),
            per_superstep: Vec::new(),
        });
    }
    let nshards = devs.len();
    let k = cfg.eta.k;
    let tpb = cfg.eta.threads_per_block;
    let inedges = build_replay(csr, k);

    // Cross-shard contribution counts are static: every owned edge whose
    // destination lives elsewhere ships one message per iteration.
    let mut cross = vec![vec![0u64; nshards]; nshards];
    for (s, shard) in part.shards.iter().enumerate() {
        for v in shard.lo..shard.hi {
            for &dst in csr.neighbors(v) {
                let o = part.owner(dst) as usize;
                if o != s {
                    cross[s][o] += 1;
                }
            }
        }
    }

    struct PrShard {
        dg: DeviceGraph,
        ranks: eta_mem::system::DSlice,
        next_ranks: eta_mem::system::DSlice,
        contrib: eta_mem::system::DSlice,
        queue: VirtualQueue,
        len: u32,
        clock: Ns,
    }

    let mut shards_dev: Vec<PrShard> = Vec::with_capacity(nshards);
    let mut metrics = KernelMetrics::default();
    let mut kernel_ns = 0u64;
    let init_bits = (1.0f32 / n as f32).to_bits();
    for (s, shard) in part.shards.iter().enumerate() {
        let dev = &mut devs[s];
        let local_n = shard.local_n();
        let setup = (|| -> Result<(PrShard, Ns), eta_mem::system::MemError> {
            let (dg, now) = DeviceGraph::upload(dev, &shard.csr, cfg.eta.transfer, 0)?;
            let ranks = dev.mem.alloc_explicit(local_n as u64)?;
            let next_ranks = dev.mem.alloc_explicit(local_n as u64)?;
            let contrib = dev.mem.alloc_explicit(local_n as u64)?;
            let n_shadows = shadow_count_graph(&shard.csr, k) as u32;
            let queue = VirtualQueue::alloc(dev, n_shadows.max(1))?;
            Ok((
                PrShard {
                    dg,
                    ranks,
                    next_ranks,
                    contrib,
                    queue,
                    len: n_shadows,
                    clock: now,
                },
                now,
            ))
        })()
        .map_err(|e| fail(s, e.into()))?;
        let (mut ps, now) = setup;
        let mut now = dev
            .mem
            .copy_h2d(ps.ranks, 0, &vec![init_bits; local_n as usize], now);
        now = dev.mem.copy_h2d(
            ps.next_ranks,
            0,
            &vec![0f32.to_bits(); local_n as usize],
            now,
        );
        now = ps.queue.reset(dev, now);
        ps.dg.prefetch(dev, now);
        if local_n > 0 {
            let udc = StaticUdcKernel {
                n: local_n,
                row_offsets: ps.dg.row_offsets,
                out: ps.queue,
                k,
            };
            let r = dev.launch(&udc, LaunchConfig::for_items(local_n, tpb), now);
            now = r.end_ns.max(r.metrics.data_ready_ns);
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;
            if let Some(f) = dev.take_fault() {
                return Err(fail(s, f.into()));
            }
            let (len, t) = ps.queue.read_count(dev, now);
            now = t;
            debug_assert_eq!(len, ps.len, "queue holds every owned shadow");
        }
        ps.clock = now;
        shards_dev.push(ps);
    }

    // Host mirror of every vertex's rank bits (identical to the device
    // values by construction — asserted where they are re-read).
    let mut rank_bits = vec![init_bits; n as usize];
    let mut per_superstep = Vec::new();
    let mut exchanged_bytes = 0u64;

    for it in 0..cfg.iterations {
        // Adaptive policy tick at the superstep boundary, per shard device.
        // All-active sweep: each shard announces its full local edge volume,
        // so shard regions escalate to streaming from the first boundary.
        // Fire-and-forget: transitions queue on each shard's own link.
        if cfg.eta.transfer == TransferMode::Adaptive {
            for (s, ps) in shards_dev.iter().enumerate() {
                devs[s]
                    .mem
                    .adaptive_tick(ps.clock, part.shards[s].local_m() * 4);
            }
        }
        let start_ns = shards_dev.iter().map(|ps| ps.clock).min().unwrap_or(0);
        // Dangling mass and base term, folded in ascending global vertex
        // order — the same sequence of f32 adds as the single-device host
        // fold over its rank snapshot.
        let dangling: f32 = (0..n as usize)
            .filter(|&v| csr.degree(v as u32) == 0)
            .map(|v| f32::from_bits(rank_bits[v]))
            .sum();
        let base = (1.0 - cfg.damping) / n as f32 + cfg.damping * dangling / n as f32;

        // Contribution shares, host-mirrored for the replay (bit-equal to
        // what each shard's contrib kernel computes for its owned rows).
        let contrib_bits: Vec<u32> = (0..n as usize)
            .map(|v| {
                let deg = csr.degree(v as u32);
                if deg == 0 {
                    0f32.to_bits()
                } else {
                    (f32::from_bits(rank_bits[v]) / deg as f32).to_bits()
                }
            })
            .collect();

        // 1. Contrib + scatter on every shard.
        for (s, ps) in shards_dev.iter_mut().enumerate() {
            let local_n = part.shards[s].local_n();
            if local_n == 0 {
                continue;
            }
            let dev = &mut devs[s];
            let contrib_k = ContribKernel {
                n: local_n,
                row_offsets: ps.dg.row_offsets,
                ranks: ps.ranks,
                contrib: ps.contrib,
            };
            let r = dev.launch(&contrib_k, LaunchConfig::for_items(local_n, tpb), ps.clock);
            ps.clock = r.end_ns.max(r.metrics.data_ready_ns);
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;
            if let Some(f) = dev.take_fault() {
                return Err(fail(s, f.into()));
            }
            if ps.len > 0 {
                let scatter = ScatterKernel {
                    smp: cfg.eta.smp,
                    k,
                    queue: ps.queue,
                    len: ps.len,
                    col_idx: ps.dg.col_idx,
                    contrib: ps.contrib,
                    next_ranks: ps.next_ranks,
                    threads_per_block: tpb,
                };
                let r = dev.launch(&scatter, LaunchConfig::for_items(ps.len, tpb), ps.clock);
                ps.clock = r.end_ns.max(r.metrics.data_ready_ns);
                metrics.merge(&r.metrics);
                kernel_ns += r.metrics.time_ns;
                if let Some(f) = dev.take_fault() {
                    return Err(fail(s, f.into()));
                }
            }
        }

        // 2. Barrier + charge the cross-shard contribution batches.
        let barrier = shards_dev.iter().map(|ps| ps.clock).max().unwrap_or(0);
        let mark = fabric.log().len();
        let mut ready = vec![barrier; nshards];
        let mut step_msgs = 0u32;
        let mut step_bytes = 0u64;
        for (s, row) in cross.iter().enumerate() {
            for (o, &count) in row.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let bytes = count * MSG_BYTES;
                let (_, end) = fabric.transfer(s as u32, o as u32, bytes, barrier);
                ready[o] = ready[o].max(end);
                step_msgs += count as u32;
                step_bytes += bytes;
            }
        }
        exchanged_bytes += step_bytes;
        mirror_peer_spans(devs, fabric, mark);

        // 3. Replay every contribution at its owner in global scatter order
        //    and write the folded sums over the device partials.
        for (o, shard) in part.shards.iter().enumerate() {
            let own = shard.own_len() as usize;
            if own == 0 {
                shards_dev[o].clock = ready[o];
                continue;
            }
            let next_bits: Vec<u32> = (shard.lo..shard.hi)
                .map(|gv| {
                    let mut acc = 0f32;
                    for &(_, _, _, u) in &inedges[gv as usize] {
                        acc += f32::from_bits(contrib_bits[u as usize]);
                    }
                    acc.to_bits()
                })
                .collect();
            devs[o]
                .mem
                .host_write(shards_dev[o].next_ranks, 0, &next_bits);
            shards_dev[o].clock = ready[o];
        }

        // 4. Apply on every shard, then refresh the host rank mirror.
        for (s, ps) in shards_dev.iter_mut().enumerate() {
            let shard = &part.shards[s];
            let local_n = shard.local_n();
            if local_n == 0 {
                continue;
            }
            let dev = &mut devs[s];
            let apply = ApplyKernel {
                n: local_n,
                ranks: ps.ranks,
                next_ranks: ps.next_ranks,
                base,
                damping: cfg.damping,
            };
            let r = dev.launch(&apply, LaunchConfig::for_items(local_n, tpb), ps.clock);
            ps.clock = r.end_ns.max(r.metrics.data_ready_ns);
            metrics.merge(&r.metrics);
            kernel_ns += r.metrics.time_ns;
            if let Some(f) = dev.take_fault() {
                return Err(fail(s, f.into()));
            }
            let own = shard.own_len() as u64;
            let owned_now = dev.mem.host_read(ps.ranks, 0, own);
            rank_bits[shard.lo as usize..shard.hi as usize].copy_from_slice(owned_now);
        }

        let end_ns = shards_dev.iter().map(|ps| ps.clock).max().unwrap_or(0);
        per_superstep.push(SuperstepStats {
            superstep: it + 1,
            active: n,
            messages: step_msgs,
            exchanged_bytes: step_bytes,
            start_ns,
            end_ns,
        });
    }

    // Final readback of the owned ranks, then release everything.
    let mut total_ns = 0;
    for (s, ps) in shards_dev.iter_mut().enumerate() {
        let shard = &part.shards[s];
        let dev = &mut devs[s];
        ps.clock = dev.mem.copy_d2h(ps.ranks, shard.own_len() as u64, ps.clock);
        if let Some(f) = dev.take_fault() {
            return Err(fail(s, f.into()));
        }
        total_ns = total_ns.max(ps.clock);
    }
    let ranks: Vec<f32> = rank_bits.iter().map(|&b| f32::from_bits(b)).collect();
    for (s, ps) in shards_dev.into_iter().enumerate() {
        let dev = &mut devs[s];
        ps.dg.release(dev);
        for sl in [ps.ranks, ps.next_ranks, ps.contrib] {
            dev.mem.free_explicit(sl);
        }
        ps.queue.release(dev);
    }
    Ok(ShardedPageRankResult {
        ranks,
        iterations: cfg.iterations,
        kernel_ns,
        total_ns,
        exchanged_bytes,
        metrics,
        per_superstep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_sim::GpuConfig;

    fn group(devices: usize) -> Vec<Device> {
        (0..devices)
            .map(|_| Device::new(GpuConfig::default_preset()))
            .collect()
    }

    fn test_graph() -> Csr {
        rmat(&RmatConfig::paper(11, 30_000, 17)).with_random_weights(9, 32)
    }

    #[test]
    fn sharded_labels_match_single_device_for_all_algorithms() {
        let g = test_graph();
        let cfg = EtaConfig::paper();
        for alg in [
            Algorithm::Bfs,
            Algorithm::Sssp,
            Algorithm::Sswp,
            Algorithm::Cc,
        ] {
            let mut dev = Device::new(GpuConfig::default_preset());
            let single = engine::run(&mut dev, &g, 0, alg, &cfg).unwrap();
            for devices in [2u32, 3, 4] {
                let part = GraphPartition::vertex_range(&g, devices);
                let mut devs = group(devices as usize);
                let mut fabric = PeerFabric::nvlink(devices);
                let r = run_sharded(&mut devs, &mut fabric, &part, 0, alg, &cfg).unwrap();
                assert_eq!(
                    r.labels,
                    single.labels,
                    "{} on {} devices",
                    alg.name(),
                    devices
                );
                assert!(r.exchanged_bytes > 0, "cross-shard traffic must exist");
                assert_eq!(r.exchanged_bytes, fabric.bytes_moved());
            }
        }
    }

    #[test]
    fn one_device_group_degenerates_to_no_exchange() {
        let g = test_graph();
        let cfg = EtaConfig::paper();
        let part = GraphPartition::vertex_range(&g, 1);
        let mut devs = group(1);
        let mut fabric = PeerFabric::nvlink(1);
        let r = run_sharded(&mut devs, &mut fabric, &part, 0, Algorithm::Bfs, &cfg).unwrap();
        let mut dev = Device::new(GpuConfig::default_preset());
        let single = engine::run(&mut dev, &g, 0, Algorithm::Bfs, &cfg).unwrap();
        assert_eq!(r.labels, single.labels);
        assert_eq!(r.exchanged_bytes, 0);
        assert!(r.per_superstep.iter().all(|s| s.messages == 0));
    }

    #[test]
    fn sharded_source_out_of_range_is_typed() {
        let g = Csr::from_edges(4, &[(0, 1)]);
        let part = GraphPartition::vertex_range(&g, 2);
        let mut devs = group(2);
        let mut fabric = PeerFabric::nvlink(2);
        let err = run_sharded(
            &mut devs,
            &mut fabric,
            &part,
            9,
            Algorithm::Bfs,
            &EtaConfig::paper(),
        )
        .unwrap_err();
        assert_eq!(
            err.error,
            QueryError::SourceOutOfRange {
                source: 9,
                vertices: 4
            }
        );
    }

    #[test]
    fn sharded_releases_every_explicit_allocation() {
        let g = test_graph();
        let part = GraphPartition::vertex_range(&g, 2);
        let mut devs = group(2);
        let before: Vec<u64> = devs.iter().map(|d| d.mem.explicit_used_bytes()).collect();
        let mut fabric = PeerFabric::nvlink(2);
        run_sharded(
            &mut devs,
            &mut fabric,
            &part,
            0,
            Algorithm::Bfs,
            &EtaConfig::paper(),
        )
        .unwrap();
        for (d, b) in devs.iter().zip(before) {
            assert_eq!(
                d.mem.explicit_used_bytes(),
                b,
                "device leaks explicit bytes"
            );
        }
    }

    #[test]
    fn checkpoint_resumes_on_a_regrouped_device_set() {
        let g = test_graph();
        let cfg = EtaConfig::paper();
        let digest = g.digest();
        let mut dev = Device::new(GpuConfig::default_preset());
        let clean = engine::run(&mut dev, &g, 0, Algorithm::Sssp, &cfg).unwrap();

        // Checkpoint every 2 supersteps on a 3-device group.
        let part3 = GraphPartition::vertex_range(&g, 3);
        let mut devs3 = group(3);
        let mut fabric3 = PeerFabric::nvlink(3);
        let mut sink = eta_ckpt::CkptSink::every(2);
        let ckd = run_sharded_ckpt(
            &mut devs3,
            &mut fabric3,
            &part3,
            0,
            Algorithm::Sssp,
            &cfg,
            CkptCtl::with_sink(&mut sink, digest),
        )
        .unwrap();
        assert_eq!(ckd.labels, clean.labels, "checkpointing is result-inert");
        let ck = sink.take().expect("snapshots were due");
        assert!(ck.iteration >= 2);

        // Resume the 3-device snapshot on a 2-device group — the global
        // checkpoint is group-shape agnostic.
        let part2 = GraphPartition::vertex_range(&g, 2);
        let mut devs2 = group(2);
        let mut fabric2 = PeerFabric::nvlink(2);
        let mut sink2 = eta_ckpt::CkptSink::default();
        let resumed = run_sharded_ckpt(
            &mut devs2,
            &mut fabric2,
            &part2,
            0,
            Algorithm::Sssp,
            &cfg,
            CkptCtl::resuming(&mut sink2, &ck, digest),
        )
        .unwrap();
        assert_eq!(resumed.labels, clean.labels, "regrouped resume is exact");

        // And on a single device through the plain engine.
        let mut dev1 = Device::new(GpuConfig::default_preset());
        let (res, ready) = engine::prepare(&mut dev1, &g, &cfg, false).unwrap();
        let mut sink1 = eta_ckpt::CkptSink::default();
        let r1 = engine::run_query_ckpt(
            &mut dev1,
            &res,
            &g,
            0,
            Algorithm::Sssp,
            &cfg,
            0,
            ready,
            CkptCtl::resuming(&mut sink1, &ck, digest),
        )
        .unwrap();
        assert_eq!(r1.labels, clean.labels, "group snapshot resumes solo");
    }

    #[test]
    fn a_faulted_member_reports_its_shard_index() {
        let g = test_graph();
        let part = GraphPartition::vertex_range(&g, 2);
        let mut devs = group(2);
        let plan = eta_fault::FaultPlan {
            hangs: vec![eta_fault::HangFault {
                device: 1,
                start_ns: 0,
                end_ns: Ns::MAX,
                budget_ns: 10,
            }],
            ..Default::default()
        };
        devs[1].mem.install_faults(&plan, 1);
        let mut fabric = PeerFabric::nvlink(2);
        let err = run_sharded(
            &mut devs,
            &mut fabric,
            &part,
            0,
            Algorithm::Bfs,
            &EtaConfig::paper(),
        )
        .unwrap_err();
        assert_eq!(err.shard, 1, "the fault names the group member");
        assert!(matches!(err.error, QueryError::DeviceFault(_)));
    }

    #[test]
    fn peer_spans_are_mirrored_into_the_sender_profiler() {
        let g = test_graph();
        let part = GraphPartition::vertex_range(&g, 2);
        let mut devs: Vec<Device> = (0..2)
            .map(|_| Device::new(GpuConfig::default_preset().with_profiling()))
            .collect();
        let mut fabric = PeerFabric::nvlink(2);
        let r = run_sharded(
            &mut devs,
            &mut fabric,
            &part,
            0,
            Algorithm::Bfs,
            &EtaConfig::paper(),
        )
        .unwrap();
        assert!(r.exchanged_bytes > 0);
        let peer_events: usize = devs
            .iter()
            .map(|d| {
                d.mem
                    .prof
                    .events()
                    .iter()
                    .filter(|e| e.track == Track::Peer)
                    .count()
            })
            .sum();
        assert_eq!(
            peer_events,
            fabric.log().len(),
            "every fabric transfer appears once on Track::Peer"
        );
    }

    #[test]
    fn sharded_pagerank_is_bit_identical() {
        let g = rmat(&RmatConfig::paper(10, 15_000, 31));
        let cfg = pagerank::PageRankConfig::default();
        let mut dev = Device::new(GpuConfig::default_preset());
        let single = pagerank::run(&mut dev, &g, &cfg).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        for devices in [2u32, 3] {
            let part = GraphPartition::vertex_range(&g, devices);
            let mut devs = group(devices as usize);
            let mut fabric = PeerFabric::nvlink(devices);
            let r = run_sharded_pagerank(&mut devs, &mut fabric, &part, &g, &cfg).unwrap();
            assert_eq!(
                bits(&r.ranks),
                bits(&single.ranks),
                "scatter replay preserves the float order on {devices} devices"
            );
            assert!(r.exchanged_bytes > 0);
            assert_eq!(r.per_superstep.len(), cfg.iterations as usize);
        }
    }

    #[test]
    fn supersteps_report_exchange_volumes() {
        let g = test_graph();
        let part = GraphPartition::vertex_range(&g, 2);
        let mut devs = group(2);
        let mut fabric = PeerFabric::nvlink(2);
        let r = run_sharded(
            &mut devs,
            &mut fabric,
            &part,
            0,
            Algorithm::Bfs,
            &EtaConfig::paper(),
        )
        .unwrap();
        let total: u64 = r.per_superstep.iter().map(|s| s.exchanged_bytes).sum();
        assert_eq!(total, r.exchanged_bytes);
        assert_eq!(r.supersteps as usize, r.per_superstep.len());
        assert!(r.bytes_per_superstep() > 0);
        for w in r.per_superstep.windows(2) {
            assert!(w[0].end_ns <= w[1].end_ns, "superstep clocks are monotone");
        }
    }
}
