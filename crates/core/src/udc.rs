//! Unified Degree Cut (§III).
//!
//! UDC maps an active vertex `v` with edge set `E_v` to a set of *shadow
//! vertices* — same vertex ID, disjoint slices of `E_v`, each of out-degree
//! ≤ K (Definition 3). Unlike Tigr's VST it is **not** a preprocessing step:
//! the [`ActToVirtKernel`] runs on the GPU each iteration, reading the
//! active set and appending `(ID, Start, End)` tuples directly from the
//! unmodified CSR offsets — no raw-data rewrite, no extra topology copy.
//!
//! Following §V-B, shadow vertices are split into **two** virtual active
//! sets: one for shadows with degree exactly `K` (the SMP kernel prefetches
//! a uniform, fully unrollable K neighbors) and one for the `< K` tails.

use crate::active_set::{DeviceQueue, VirtualQueue};
use eta_mem::system::DSlice;
use eta_sim::{Kernel, WarpCtx, WARP_SIZE};

/// Host-side UDC of a single vertex: the `(start, end)` edge slices of its
/// shadow vertices. Pure function used by tests and Table I accounting.
pub fn shadow_slices(start: u32, end: u32, k: u32) -> Vec<(u32, u32)> {
    assert!(k >= 1);
    let mut out = Vec::new();
    let mut s = start;
    while s < end {
        let e = (s + k).min(end);
        out.push((s, e));
        s = e;
    }
    out
}

/// Number of shadow vertices a degree-`deg` vertex produces.
pub fn shadow_count(deg: u32, k: u32) -> u32 {
    deg.div_ceil(k)
}

/// Total shadow vertices of a whole graph (the paper's `|N|`).
pub fn shadow_count_graph(g: &eta_graph::Csr, k: u32) -> u64 {
    (0..g.n() as u32)
        .map(|v| shadow_count(g.degree(v), k) as u64)
        .sum()
}

/// The fully materialized shadow table of the **out-of-core** UDC variant
/// (§III-A): every vertex's shadow tuples, precomputed in main memory.
///
/// The paper rejects this approach — it "will consume extra memory"
/// (`3|N| + |V|+1` words) and has to be transferred to the device — but we
/// implement it so the trade-off can be measured (see the
/// `udc_in_core_vs_out_of_core` bench and EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct ShadowTable {
    /// Original vertex of each shadow (|N| entries).
    pub ids: Vec<u32>,
    /// First edge index of each shadow.
    pub starts: Vec<u32>,
    /// One-past-last edge index of each shadow.
    pub ends: Vec<u32>,
    /// `vertex_range[v]..vertex_range[v+1]` indexes the shadow arrays
    /// (|V|+1 entries).
    pub vertex_range: Vec<u32>,
}

impl ShadowTable {
    pub fn build(g: &eta_graph::Csr, k: u32) -> ShadowTable {
        let n = g.n();
        let mut ids = Vec::new();
        let mut starts = Vec::new();
        let mut ends = Vec::new();
        let mut vertex_range = Vec::with_capacity(n + 1);
        for v in 0..n as u32 {
            vertex_range.push(ids.len() as u32);
            let lo = g.row_offsets[v as usize];
            let hi = g.row_offsets[v as usize + 1];
            for (s, e) in shadow_slices(lo, hi, k) {
                ids.push(v);
                starts.push(s);
                ends.push(e);
            }
        }
        vertex_range.push(ids.len() as u32);
        ShadowTable {
            ids,
            starts,
            ends,
            vertex_range,
        }
    }

    /// Shadow count |N|.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Device words this table occupies/transfers: `3|N| + |V| + 1`.
    pub fn words(&self) -> u64 {
        (3 * self.ids.len() + self.vertex_range.len()) as u64
    }
}

/// Out-of-core expansion: copy each active vertex's **precomputed** shadow
/// tuples from the device-resident [`ShadowTable`] into the virtual active
/// set. Compared to [`ActToVirtKernel`] it trades the on-the-fly division
/// for three extra loads per shadow plus the table's memory and transfer.
pub struct ExpandFromTableKernel {
    pub act_items: DSlice,
    pub act_len: u32,
    /// Device copies of the shadow table arrays.
    pub table_ids: DSlice,
    pub table_starts: DSlice,
    pub table_ends: DSlice,
    pub vertex_range: DSlice,
    /// Single output queue (mixed degrees ≤ K).
    pub out: VirtualQueue,
}

impl Kernel for ExpandFromTableKernel {
    fn name(&self) -> &'static str {
        "expand_from_table"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.act_len);
        if mask == 0 {
            return;
        }
        let v = w.load(self.act_items, &tids, mask);
        let lo = w.load(self.vertex_range, &v, mask);
        let mut v1 = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            v1[lane] = v[lane].wrapping_add(1);
        }
        let hi = w.load(self.vertex_range, &v1, mask);
        w.alu(1);
        let mut count = [0u32; WARP_SIZE];
        let mut any = 0u32;
        let mut max_c = 0u32;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                count[lane] = hi[lane] - lo[lane];
                if count[lane] > 0 {
                    any |= 1 << lane;
                    max_c = max_c.max(count[lane]);
                }
            }
        }
        if any == 0 {
            return;
        }
        let base = w.atomic_add(self.out.count, &[0; WARP_SIZE], &count, any);
        for p in 0..max_c {
            let mut row = 0u32;
            let mut src = [0u32; WARP_SIZE];
            let mut dst = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (any >> lane) & 1 == 1 && p < count[lane] {
                    row |= 1 << lane;
                    src[lane] = lo[lane] + p;
                    dst[lane] = base[lane] + p;
                }
            }
            if row == 0 {
                continue;
            }
            let ids = w.load(self.table_ids, &src, row);
            let starts = w.load(self.table_starts, &src, row);
            let ends = w.load(self.table_ends, &src, row);
            w.store(self.out.ids, &dst, &ids, row);
            w.store(self.out.starts, &dst, &starts, row);
            w.store(self.out.ends, &dst, &ends, row);
        }
    }
}

/// The on-the-fly `actSet2virtActSet` kernel of Procedure 1.
///
/// One thread per active vertex: load the vertex's CSR offsets, cut its
/// edge range into ≤K slices, and append the resulting shadow tuples to the
/// uniform-K queue (`full`) or the tail queue (`partial`).
pub struct ActToVirtKernel {
    pub act_items: DSlice,
    pub act_len: u32,
    pub row_offsets: DSlice,
    pub full: VirtualQueue,
    pub partial: VirtualQueue,
    pub k: u32,
}

impl ActToVirtKernel {
    pub fn new(
        act: &DeviceQueue,
        act_len: u32,
        row_offsets: DSlice,
        full: &VirtualQueue,
        partial: &VirtualQueue,
        k: u32,
    ) -> Self {
        ActToVirtKernel {
            act_items: act.items,
            act_len,
            row_offsets,
            full: *full,
            partial: *partial,
            k,
        }
    }
}

impl Kernel for ActToVirtKernel {
    fn name(&self) -> &'static str {
        "act_to_virt"
    }

    fn run(&self, w: &mut WarpCtx<'_>) {
        let tids = w.thread_ids();
        let mask = w.mask_for_items(self.act_len);
        if mask == 0 {
            return;
        }
        let v = w.load(self.act_items, &tids, mask);
        let start = w.load(self.row_offsets, &v, mask);
        let mut v_plus = [0u32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            v_plus[lane] = v[lane].wrapping_add(1);
        }
        let end = w.load(self.row_offsets, &v_plus, mask);
        w.alu(2); // degree math

        let mut full_parts = [0u32; WARP_SIZE];
        let mut tail = [0u32; WARP_SIZE];
        let mut full_mask = 0u32;
        let mut tail_mask = 0u32;
        for lane in 0..WARP_SIZE {
            if (mask >> lane) & 1 == 1 {
                let deg = end[lane] - start[lane];
                full_parts[lane] = deg / self.k;
                tail[lane] = deg % self.k;
                if full_parts[lane] > 0 {
                    full_mask |= 1 << lane;
                }
                if tail[lane] > 0 {
                    tail_mask |= 1 << lane;
                }
            }
        }

        // Reserve slots in the uniform-K queue and emit the full slices.
        if full_mask != 0 {
            let base = w.atomic_add(self.full.count, &[0; WARP_SIZE], &full_parts, full_mask);
            let max_parts = (0..WARP_SIZE)
                .filter(|&l| (full_mask >> l) & 1 == 1)
                .map(|l| full_parts[l])
                .max()
                .unwrap_or(0);
            for p in 0..max_parts {
                let mut row_mask = 0u32;
                let mut pos = [0u32; WARP_SIZE];
                let mut s = [0u32; WARP_SIZE];
                let mut e = [0u32; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    if (full_mask >> lane) & 1 == 1 && p < full_parts[lane] {
                        row_mask |= 1 << lane;
                        pos[lane] = base[lane] + p;
                        s[lane] = start[lane] + p * self.k;
                        e[lane] = s[lane] + self.k;
                    }
                }
                w.alu(1);
                w.store(self.full.ids, &pos, &v, row_mask);
                w.store(self.full.starts, &pos, &s, row_mask);
                w.store(self.full.ends, &pos, &e, row_mask);
            }
        }

        // Tail slices (< K edges) go to the partial queue.
        if tail_mask != 0 {
            let pos = w.atomic_add(
                self.partial.count,
                &[0; WARP_SIZE],
                &[1; WARP_SIZE],
                tail_mask,
            );
            let mut s = [0u32; WARP_SIZE];
            let mut e = [0u32; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                if (tail_mask >> lane) & 1 == 1 {
                    s[lane] = start[lane] + full_parts[lane] * self.k;
                    e[lane] = end[lane];
                }
            }
            w.alu(1);
            w.store(self.partial.ids, &pos, &v, tail_mask);
            w.store(self.partial.starts, &pos, &s, tail_mask);
            w.store(self.partial.ends, &pos, &e, tail_mask);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta_graph::generate::{rmat, RmatConfig};
    use eta_graph::Csr;
    use eta_sim::{Device, GpuConfig, LaunchConfig};

    #[test]
    fn shadow_slices_partition_the_range() {
        assert_eq!(shadow_slices(10, 10, 4), vec![]);
        assert_eq!(shadow_slices(0, 4, 4), vec![(0, 4)]);
        assert_eq!(shadow_slices(0, 9, 4), vec![(0, 4), (4, 8), (8, 9)]);
        // Disjoint, covering, bounded (Definition 3).
        let slices = shadow_slices(100, 131, 7);
        let mut cursor = 100;
        for &(s, e) in &slices {
            assert_eq!(s, cursor);
            assert!(e - s <= 7);
            cursor = e;
        }
        assert_eq!(cursor, 131);
    }

    #[test]
    fn shadow_count_matches_slices() {
        for deg in 0..50u32 {
            for k in 1..10u32 {
                assert_eq!(shadow_count(deg, k), shadow_slices(0, deg, k).len() as u32);
            }
        }
    }

    #[test]
    fn kernel_emits_exact_shadow_set() {
        let g = rmat(&RmatConfig::paper(10, 12_000, 5));
        let k = 8u32;
        let mut dev = Device::new(GpuConfig::default_preset());

        let ro = dev.mem.alloc_explicit(g.row_offsets.len() as u64).unwrap();
        dev.mem.host_write(ro, 0, &g.row_offsets);

        let n = g.n() as u32;
        let act = DeviceQueue::alloc(&mut dev, n).unwrap();
        let act_vertices: Vec<u32> = (0..n).collect();
        act.host_seed(&mut dev, &act_vertices);

        let cap = (g.m() as u32 / k + n + 1).max(16);
        let full = VirtualQueue::alloc(&mut dev, cap).unwrap();
        let partial = VirtualQueue::alloc(&mut dev, n).unwrap();

        let kern = ActToVirtKernel::new(&act, n, ro, &full, &partial, k);
        dev.launch(&kern, LaunchConfig::for_items(n, 256), 0);

        let (nf, _) = full.read_count(&mut dev, 0);
        let (np, _) = partial.read_count(&mut dev, 0);
        assert_eq!(
            nf as u64 + np as u64,
            shadow_count_graph(&g, k),
            "total shadows must match the host-side UDC"
        );

        // Collect and verify every tuple covers its vertex's edges exactly.
        let mut covered: Vec<Vec<(u32, u32)>> = vec![Vec::new(); g.n()];
        for (q, len) in [(&full, nf), (&partial, np)] {
            let ids = dev.mem.host_read(q.ids, 0, len as u64).to_vec();
            let ss = dev.mem.host_read(q.starts, 0, len as u64).to_vec();
            let es = dev.mem.host_read(q.ends, 0, len as u64).to_vec();
            for i in 0..len as usize {
                assert!(es[i] - ss[i] <= k, "degree bound violated");
                if q.ids.word_off == full.ids.word_off {
                    assert_eq!(es[i] - ss[i], k, "full queue must be uniform K");
                }
                covered[ids[i] as usize].push((ss[i], es[i]));
            }
        }
        for v in 0..g.n() {
            covered[v].sort_unstable();
            let mut cursor = g.row_offsets[v];
            for &(s, e) in &covered[v] {
                assert_eq!(s, cursor, "vertex {v}: slices must tile the range");
                cursor = e;
            }
            assert_eq!(cursor, g.row_offsets[v + 1]);
        }
    }

    #[test]
    fn zero_degree_vertices_emit_nothing() {
        // Vertex 1 has out-degree 0 — "it naturally filters active vertices
        // with outdegree equals to 0" (§IV-A).
        let g = Csr::from_edges(3, &[(0, 1), (2, 1)]);
        let mut dev = Device::new(GpuConfig::default_preset());
        let ro = dev.mem.alloc_explicit(4).unwrap();
        dev.mem.host_write(ro, 0, &g.row_offsets);
        let act = DeviceQueue::alloc(&mut dev, 3).unwrap();
        act.host_seed(&mut dev, &[1]);
        let full = VirtualQueue::alloc(&mut dev, 8).unwrap();
        let partial = VirtualQueue::alloc(&mut dev, 8).unwrap();
        let kern = ActToVirtKernel::new(&act, 1, ro, &full, &partial, 4);
        dev.launch(&kern, LaunchConfig::for_items(1, 256), 0);
        assert_eq!(full.read_count(&mut dev, 0).0, 0);
        assert_eq!(partial.read_count(&mut dev, 0).0, 0);
    }
}
