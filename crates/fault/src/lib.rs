//! # eta-fault: deterministic device-fault injection
//!
//! A [`FaultPlan`] is a seeded, fully explicit schedule of device-level
//! failures on the *simulated* clock: ECC single/double-bit errors in chosen
//! address ranges, Unified-Memory migration failures and page-fault storms,
//! kernel hangs (cycle-budget exceeded), and PCIe bandwidth-degradation
//! windows. Because every layer of this workspace is simulated and
//! deterministic, the same plan reproduces the same faults byte-for-byte —
//! something a real CUDA stack cannot offer.
//!
//! The crate is a leaf: it defines the plan, the per-device runtime state
//! ([`DeviceFaultState`]) that the memory system and device simulator poll
//! from their injection hooks, and the typed [`DeviceFault`] error that
//! propagates up through `etagraph::QueryError` into the serving layer's
//! recovery ladder (retry → quarantine → CPU fallback; see DESIGN.md).
//!
//! Plans are written as JSON (`--faults PLAN.json`). The vendored
//! `serde_json` shim has no parser, so this crate carries a small strict
//! JSON reader ([`FaultPlan::from_json_str`]) for exactly the plan schema;
//! serialization goes through the usual `Serialize` derive, and the two
//! round-trip ([`FaultPlan::seeded`] plans are tested to survive
//! serialize → parse unchanged).

use serde::Serialize;

/// Simulated nanoseconds — the one clock every subsystem shares.
pub type Ns = u64;

// ---------------------------------------------------------------------------
// Plan schema
// ---------------------------------------------------------------------------

/// One ECC event: at `at_ns` the word range `[addr_start, addr_start +
/// addr_words)` of device `device` takes a bit flip. A single-bit error is
/// corrected by hardware (counted, surfaced as a sanitizer warning and a
/// profiler instant, execution continues); a double-bit error is
/// uncorrectable and fails the enclosing kernel launch with
/// [`FaultKind::EccDoubleBit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EccFault {
    pub device: u32,
    pub at_ns: Ns,
    pub addr_start: u64,
    pub addr_words: u64,
    pub double_bit: bool,
}

/// What a UM window does. Variants are unit-only so the vendored
/// `Serialize` derive applies; per-window parameters live on [`UmFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum UmFaultKind {
    /// Demand migrations inside the window fail: the touching operation
    /// surfaces [`FaultKind::UmMigrationFail`].
    MigrationFail,
    /// A page-fault storm: every demand-migrating touch inside the window
    /// costs `extra_ns` more fault-service time (no error).
    Storm,
}

/// One Unified-Memory fault window `[start_ns, end_ns)` on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct UmFault {
    pub device: u32,
    pub start_ns: Ns,
    pub end_ns: Ns,
    pub kind: UmFaultKind,
    /// Extra fault-service latency per migrating touch ([`UmFaultKind::Storm`]
    /// only; ignored for `MigrationFail`).
    pub extra_ns: Ns,
}

/// A kernel-hang window: any launch *starting* in `[start_ns, end_ns)` whose
/// modelled duration exceeds `budget_ns` is killed by the watchdog at
/// `start + budget_ns` and surfaces [`FaultKind::KernelHang`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HangFault {
    pub device: u32,
    pub start_ns: Ns,
    pub end_ns: Ns,
    pub budget_ns: Ns,
}

/// A PCIe degradation window: transfers starting in `[start_ns, end_ns)`
/// take `factor`× their nominal wire time (link retraining, lane drop).
/// No error is raised — this is a pure slowdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PcieDegradation {
    pub device: u32,
    pub start_ns: Ns,
    pub end_ns: Ns,
    pub factor: f64,
}

/// The full injection schedule. An empty plan (`is_empty()`) is the
/// contractual no-op: installing it must leave every simulated timing and
/// every report byte identical to not installing anything (the test suite
/// and the committed report baselines enforce this).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Provenance only: the seed [`FaultPlan::seeded`] expanded, or 0 for
    /// hand-written plans. Never consulted at injection time — the plan is
    /// fully explicit.
    pub seed: u64,
    pub ecc: Vec<EccFault>,
    pub um: Vec<UmFault>,
    pub hangs: Vec<HangFault>,
    pub pcie: Vec<PcieDegradation>,
}

impl FaultPlan {
    /// True iff the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.ecc.is_empty() && self.um.is_empty() && self.hangs.is_empty() && self.pcie.is_empty()
    }

    /// PCIe slowdown windows for one device, in plan order.
    pub fn pcie_windows(&self, device: u32) -> Vec<(Ns, Ns, f64)> {
        self.pcie
            .iter()
            .filter(|p| p.device == device)
            .map(|p| (p.start_ns, p.end_ns, p.factor))
            .collect()
    }

    /// Expands a seed into a small pseudo-random plan over `devices` devices
    /// and the time horizon `[0, horizon_ns)`. Deterministic: the same
    /// arguments always yield the same plan (splitmix64 underneath). Used by
    /// `report faults`, the CLI's `--faults seed:N` shorthand, and the
    /// property tests.
    pub fn seeded(seed: u64, devices: u32, horizon_ns: Ns) -> FaultPlan {
        let devices = devices.max(1);
        let horizon = horizon_ns.max(1);
        let mut rng = SplitMix64(seed);
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        for _ in 0..1 + rng.next() % 3 {
            plan.ecc.push(EccFault {
                device: (rng.next() % devices as u64) as u32,
                at_ns: rng.next() % horizon,
                addr_start: (rng.next() % 4096) * 32,
                addr_words: 1 + rng.next() % 64,
                double_bit: rng.next().is_multiple_of(2),
            });
        }
        for _ in 0..rng.next() % 3 {
            let start = rng.next() % horizon;
            let len = 1 + horizon / 8 + rng.next() % (horizon / 4 + 1);
            plan.um.push(UmFault {
                device: (rng.next() % devices as u64) as u32,
                start_ns: start,
                end_ns: start.saturating_add(len),
                kind: if rng.next().is_multiple_of(2) {
                    UmFaultKind::MigrationFail
                } else {
                    UmFaultKind::Storm
                },
                extra_ns: 500 + rng.next() % 2000,
            });
        }
        for _ in 0..rng.next() % 2 {
            let start = rng.next() % horizon;
            let len = 1 + horizon / 4 + rng.next() % (horizon / 2 + 1);
            plan.hangs.push(HangFault {
                device: (rng.next() % devices as u64) as u32,
                start_ns: start,
                end_ns: start.saturating_add(len),
                budget_ns: 1_000 + rng.next() % (horizon / 4 + 1),
            });
        }
        for _ in 0..rng.next() % 3 {
            let start = rng.next() % horizon;
            let len = 1 + horizon / 8 + rng.next() % (horizon / 4 + 1);
            plan.pcie.push(PcieDegradation {
                device: (rng.next() % devices as u64) as u32,
                start_ns: start,
                end_ns: start.saturating_add(len),
                factor: 1.5 + (rng.next() % 6) as f64 * 0.5,
            });
        }
        plan
    }
}

/// splitmix64 — the standard 64-bit mixing PRNG (public domain, Vigna).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ---------------------------------------------------------------------------
// The typed error that propagates up
// ---------------------------------------------------------------------------

/// The kind of failure a device surfaced. `Copy + Eq` so it can ride inside
/// `etagraph::QueryError` unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    EccDoubleBit,
    KernelHang,
    UmMigrationFail,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::EccDoubleBit => "ecc_double_bit",
            FaultKind::KernelHang => "kernel_hang",
            FaultKind::UmMigrationFail => "um_migration_fail",
        }
    }
}

/// A device failure, detected at `at_ns` on the simulated clock. This is
/// what `Device::take_fault` yields and what the serving layer's recovery
/// ladder consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFault {
    pub kind: FaultKind,
    pub device: u32,
    pub at_ns: Ns,
}

impl std::fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device {} fault {} at {} ns",
            self.device,
            self.kind.name(),
            self.at_ns
        )
    }
}

// ---------------------------------------------------------------------------
// Per-device runtime state (owned by eta-mem::MemSystem)
// ---------------------------------------------------------------------------

/// Cumulative fault counters, surfaced through profiling and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultCounters {
    /// Single-bit ECC errors (corrected in place, run continues).
    pub ecc_corrected: u64,
    /// Double-bit ECC errors (uncorrectable, launch failed).
    pub ecc_uncorrected: u64,
    /// Demand migrations that failed inside a `MigrationFail` window.
    pub um_failures: u64,
    /// Touches slowed by a page-fault `Storm` window.
    pub storms: u64,
    /// Launches killed by the hang watchdog.
    pub hangs: u64,
}

/// The per-device slice of a [`FaultPlan`], plus the mutable state the
/// injection hooks need: which one-shot ECC events already fired, and the
/// first pending (not yet collected) [`DeviceFault`].
///
/// The default state is inert: `active` is false and every hook is a cheap
/// early return, so a device with no plan installed behaves byte-identically
/// to one that predates this crate.
#[derive(Debug, Clone, Default)]
pub struct DeviceFaultState {
    /// Fast-path guard: false means every hook returns immediately.
    pub active: bool,
    device: u32,
    ecc: Vec<(EccFault, bool)>,
    um: Vec<UmFault>,
    hangs: Vec<HangFault>,
    pending: Option<DeviceFault>,
    pub counters: FaultCounters,
}

impl DeviceFaultState {
    /// Filters `plan` down to the entries targeting `device`. PCIe windows
    /// are not carried here — they install directly on the link (see
    /// [`FaultPlan::pcie_windows`]).
    pub fn from_plan(plan: &FaultPlan, device: u32) -> DeviceFaultState {
        let ecc: Vec<(EccFault, bool)> = plan
            .ecc
            .iter()
            .filter(|e| e.device == device)
            .map(|e| (*e, false))
            .collect();
        let um: Vec<UmFault> = plan
            .um
            .iter()
            .filter(|u| u.device == device)
            .copied()
            .collect();
        let hangs: Vec<HangFault> = plan
            .hangs
            .iter()
            .filter(|h| h.device == device)
            .copied()
            .collect();
        DeviceFaultState {
            active: !ecc.is_empty() || !um.is_empty() || !hangs.is_empty(),
            device,
            ecc,
            um,
            hangs,
            pending: None,
            counters: FaultCounters::default(),
        }
    }

    pub fn device(&self) -> u32 {
        self.device
    }

    /// Records a fault for collection. The first fault wins: a later one
    /// arriving before the pending one is collected is dropped (the run is
    /// already doomed at the earlier timestamp).
    pub fn set_pending(&mut self, fault: DeviceFault) {
        if self.pending.is_none() {
            self.pending = Some(fault);
        }
    }

    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Collects and clears the pending fault, if any.
    pub fn take_pending(&mut self) -> Option<DeviceFault> {
        self.pending.take()
    }

    /// The watchdog budget for a launch starting at `start_ns`: the minimum
    /// `budget_ns` over hang windows containing that instant (minimum so the
    /// result is independent of plan order).
    pub fn hang_budget(&self, start_ns: Ns) -> Option<Ns> {
        self.hangs
            .iter()
            .filter(|h| h.start_ns <= start_ns && start_ns < h.end_ns)
            .map(|h| h.budget_ns)
            .min()
    }

    /// Fires every not-yet-fired ECC event whose `at_ns` lies in the launch
    /// span `[start_ns, end_ns]`, updating the corrected/uncorrected
    /// counters. Returned in `(at_ns, addr_start)` order so downstream
    /// reporting is independent of plan order.
    pub fn fire_ecc(&mut self, start_ns: Ns, end_ns: Ns) -> Vec<EccFault> {
        let mut fired = Vec::new();
        for (e, done) in &mut self.ecc {
            if !*done && start_ns <= e.at_ns && e.at_ns <= end_ns {
                *done = true;
                if e.double_bit {
                    self.counters.ecc_uncorrected += 1;
                } else {
                    self.counters.ecc_corrected += 1;
                }
                fired.push(*e);
            }
        }
        fired.sort_by_key(|e| (e.at_ns, e.addr_start));
        fired
    }

    /// The first `MigrationFail` window containing `now`, if any.
    pub fn migration_fail(&self, now: Ns) -> Option<UmFault> {
        self.um
            .iter()
            .find(|u| u.kind == UmFaultKind::MigrationFail && u.start_ns <= now && now < u.end_ns)
            .copied()
    }

    /// Total extra fault-service latency from `Storm` windows containing
    /// `now` (summed, so overlapping storms compound).
    pub fn storm_extra(&self, now: Ns) -> Ns {
        self.um
            .iter()
            .filter(|u| u.kind == UmFaultKind::Storm && u.start_ns <= now && now < u.end_ns)
            .map(|u| u.extra_ns)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// JSON parsing (the vendored serde_json has no parser)
// ---------------------------------------------------------------------------

/// A minimal JSON value tree, internal to the plan parser.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("fault plan JSON, byte {}: {}", self.pos, msg))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(&format!("unexpected `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{word}`"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return self.err("unsupported escape in string"),
                    }
                    self.pos += 1;
                }
                Some(&c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole code point.
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        format!("fault plan JSON, byte {}: invalid UTF-8", self.pos)
                    })?;
                    match s.chars().next() {
                        Some(ch) => {
                            out.push(ch);
                            self.pos += ch.len_utf8();
                        }
                        None => return self.err("unterminated string"),
                    }
                }
                None => return self.err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("fault plan JSON, byte {start}: invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("fault plan JSON, byte {start}: bad number `{text}`"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            // A duplicate key means one of the two values silently loses;
            // in a fault plan that is an event that never fires (or fires
            // with the wrong parameters), so reject it outright.
            if fields.iter().any(|(k, _)| *k == key) {
                return self.err(&format!("duplicate key `{key}` in object"));
            }
            self.expect_byte(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

/// Rejects empty (`end <= start`) injection windows: a zero-length or
/// inverted window can never intersect a launch, so a plan carrying one is
/// almost certainly a typo'd timestamp pair — fail loudly instead of
/// silently injecting nothing.
fn check_window(section: &str, start_ns: Ns, end_ns: Ns) -> Result<(), String> {
    if end_ns <= start_ns {
        return Err(format!(
            "fault plan: `{section}` window [{start_ns}, {end_ns}) is {} \
             (end_ns must be strictly greater than start_ns)",
            if end_ns == start_ns {
                "zero-length"
            } else {
                "inverted"
            }
        ));
    }
    Ok(())
}

fn as_u64(v: &Json, what: &str) -> Result<u64, String> {
    match v {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
            Ok(*n as u64)
        }
        _ => Err(format!(
            "fault plan: `{what}` must be a non-negative integer"
        )),
    }
}

fn as_f64(v: &Json, what: &str) -> Result<f64, String> {
    match v {
        Json::Num(n) => Ok(*n),
        _ => Err(format!("fault plan: `{what}` must be a number")),
    }
}

fn as_bool(v: &Json, what: &str) -> Result<bool, String> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("fault plan: `{what}` must be a boolean")),
    }
}

fn as_arr<'v>(v: &'v Json, what: &str) -> Result<&'v [Json], String> {
    match v {
        Json::Arr(a) => Ok(a),
        _ => Err(format!("fault plan: `{what}` must be an array")),
    }
}

/// An object with every key consumed exactly once; leftovers are an error,
/// so typos in hand-written plans fail loudly instead of injecting nothing.
struct Fields<'v> {
    what: &'static str,
    fields: Vec<(&'v str, &'v Json)>,
}

impl<'v> Fields<'v> {
    fn new(v: &'v Json, what: &'static str) -> Result<Fields<'v>, String> {
        match v {
            Json::Obj(fields) => Ok(Fields {
                what,
                fields: fields.iter().map(|(k, v)| (k.as_str(), v)).collect(),
            }),
            _ => Err(format!("fault plan: `{what}` must be an object")),
        }
    }

    fn take(&mut self, key: &str) -> Result<&'v Json, String> {
        match self.fields.iter().position(|(k, _)| *k == key) {
            Some(i) => Ok(self.fields.remove(i).1),
            None => Err(format!("fault plan: `{}` is missing `{key}`", self.what)),
        }
    }

    fn take_opt(&mut self, key: &str) -> Option<&'v Json> {
        self.fields
            .iter()
            .position(|(k, _)| *k == key)
            .map(|i| self.fields.remove(i).1)
    }

    fn finish(self) -> Result<(), String> {
        if let Some((k, _)) = self.fields.first() {
            return Err(format!("fault plan: `{}` has unknown key `{k}`", self.what));
        }
        Ok(())
    }
}

impl FaultPlan {
    /// Parses a plan from its JSON text. Strict: unknown keys, missing
    /// required fields, or malformed values are errors with a field name or
    /// byte offset, never a silently empty plan. All top-level sections are
    /// optional — `{}` is the empty plan.
    pub fn from_json_str(text: &str) -> Result<FaultPlan, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let root = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters after the plan object");
        }

        let mut top = Fields::new(&root, "plan")?;
        let mut plan = FaultPlan::default();
        if let Some(v) = top.take_opt("seed") {
            plan.seed = as_u64(v, "seed")?;
        }
        if let Some(v) = top.take_opt("ecc") {
            for item in as_arr(v, "ecc")? {
                let mut f = Fields::new(item, "ecc entry")?;
                let device = as_u64(f.take("device")?, "ecc.device")? as u32;
                let at_ns = as_u64(f.take("at_ns")?, "ecc.at_ns")?;
                let addr_start = as_u64(f.take("addr_start")?, "ecc.addr_start")?;
                let addr_words = as_u64(f.take("addr_words")?, "ecc.addr_words")?;
                if addr_words == 0 {
                    return Err(
                        "fault plan: `ecc.addr_words` is 0 — an empty address range \
                         corrupts nothing, so the event could never fire"
                            .into(),
                    );
                }
                plan.ecc.push(EccFault {
                    device,
                    at_ns,
                    addr_start,
                    addr_words,
                    double_bit: as_bool(f.take("double_bit")?, "ecc.double_bit")?,
                });
                f.finish()?;
            }
        }
        if let Some(v) = top.take_opt("um") {
            for item in as_arr(v, "um")? {
                let mut f = Fields::new(item, "um entry")?;
                let kind = match f.take("kind")? {
                    Json::Str(s) if s == "MigrationFail" => UmFaultKind::MigrationFail,
                    Json::Str(s) if s == "Storm" => UmFaultKind::Storm,
                    _ => {
                        return Err(
                            "fault plan: `um.kind` must be \"MigrationFail\" or \"Storm\"".into(),
                        )
                    }
                };
                let start_ns = as_u64(f.take("start_ns")?, "um.start_ns")?;
                let end_ns = as_u64(f.take("end_ns")?, "um.end_ns")?;
                check_window("um", start_ns, end_ns)?;
                plan.um.push(UmFault {
                    device: as_u64(f.take("device")?, "um.device")? as u32,
                    start_ns,
                    end_ns,
                    kind,
                    extra_ns: match f.take_opt("extra_ns") {
                        Some(v) => as_u64(v, "um.extra_ns")?,
                        None => 0,
                    },
                });
                f.finish()?;
            }
        }
        if let Some(v) = top.take_opt("hangs") {
            for item in as_arr(v, "hangs")? {
                let mut f = Fields::new(item, "hangs entry")?;
                let start_ns = as_u64(f.take("start_ns")?, "hangs.start_ns")?;
                let end_ns = as_u64(f.take("end_ns")?, "hangs.end_ns")?;
                check_window("hangs", start_ns, end_ns)?;
                plan.hangs.push(HangFault {
                    device: as_u64(f.take("device")?, "hangs.device")? as u32,
                    start_ns,
                    end_ns,
                    budget_ns: as_u64(f.take("budget_ns")?, "hangs.budget_ns")?,
                });
                f.finish()?;
            }
        }
        if let Some(v) = top.take_opt("pcie") {
            for item in as_arr(v, "pcie")? {
                let mut f = Fields::new(item, "pcie entry")?;
                let factor = as_f64(f.take("factor")?, "pcie.factor")?;
                if !factor.is_finite() || factor < 1.0 {
                    return Err("fault plan: `pcie.factor` must be a finite number >= 1.0".into());
                }
                let start_ns = as_u64(f.take("start_ns")?, "pcie.start_ns")?;
                let end_ns = as_u64(f.take("end_ns")?, "pcie.end_ns")?;
                check_window("pcie", start_ns, end_ns)?;
                plan.pcie.push(PcieDegradation {
                    device: as_u64(f.take("device")?, "pcie.device")? as u32,
                    start_ns,
                    end_ns,
                    factor,
                });
                f.finish()?;
            }
        }
        top.finish()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        let st = DeviceFaultState::from_plan(&plan, 0);
        assert!(!st.active);
        assert_eq!(st.hang_budget(0), None);
        assert_eq!(st.migration_fail(0), None);
        assert_eq!(st.storm_extra(0), 0);
        assert!(plan.pcie_windows(0).is_empty());
    }

    #[test]
    fn seeded_is_deterministic_and_nonempty() {
        let a = FaultPlan::seeded(7, 2, 1_000_000);
        let b = FaultPlan::seeded(7, 2, 1_000_000);
        assert_eq!(a, b);
        assert!(
            !a.ecc.is_empty(),
            "seeded plans always carry >= 1 ECC event"
        );
        let c = FaultPlan::seeded(8, 2, 1_000_000);
        assert_ne!(a, c, "different seeds give different plans");
        for e in &a.ecc {
            assert!(e.device < 2);
            assert!(e.at_ns < 1_000_000);
        }
    }

    #[test]
    fn state_filters_by_device() {
        let mut plan = FaultPlan::default();
        plan.hangs.push(HangFault {
            device: 1,
            start_ns: 100,
            end_ns: 200,
            budget_ns: 50,
        });
        let st0 = DeviceFaultState::from_plan(&plan, 0);
        assert!(!st0.active);
        let st1 = DeviceFaultState::from_plan(&plan, 1);
        assert!(st1.active);
        assert_eq!(st1.hang_budget(150), Some(50));
        assert_eq!(st1.hang_budget(200), None, "window end is exclusive");
        assert_eq!(st1.hang_budget(99), None);
    }

    #[test]
    fn hang_budget_takes_minimum_over_overlapping_windows() {
        let mut plan = FaultPlan::default();
        for budget in [80, 30, 60] {
            plan.hangs.push(HangFault {
                device: 0,
                start_ns: 0,
                end_ns: 100,
                budget_ns: budget,
            });
        }
        let st = DeviceFaultState::from_plan(&plan, 0);
        assert_eq!(st.hang_budget(10), Some(30));
    }

    #[test]
    fn ecc_fires_once_per_event_and_counts_by_severity() {
        let mut plan = FaultPlan::default();
        plan.ecc.push(EccFault {
            device: 0,
            at_ns: 50,
            addr_start: 0,
            addr_words: 8,
            double_bit: false,
        });
        plan.ecc.push(EccFault {
            device: 0,
            at_ns: 60,
            addr_start: 32,
            addr_words: 8,
            double_bit: true,
        });
        let mut st = DeviceFaultState::from_plan(&plan, 0);
        assert!(st.fire_ecc(0, 40).is_empty(), "before the events: nothing");
        let fired = st.fire_ecc(0, 100);
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].at_ns, 50, "sorted by time");
        assert!(st.fire_ecc(0, 100).is_empty(), "one-shot: never refires");
        assert_eq!(st.counters.ecc_corrected, 1);
        assert_eq!(st.counters.ecc_uncorrected, 1);
    }

    #[test]
    fn pending_fault_first_wins_and_take_clears() {
        let mut st = DeviceFaultState::from_plan(&FaultPlan::default(), 3);
        let first = DeviceFault {
            kind: FaultKind::KernelHang,
            device: 3,
            at_ns: 10,
        };
        st.set_pending(first);
        st.set_pending(DeviceFault {
            kind: FaultKind::EccDoubleBit,
            device: 3,
            at_ns: 20,
        });
        assert!(st.has_pending());
        assert_eq!(st.take_pending(), Some(first), "first fault wins");
        assert_eq!(st.take_pending(), None);
    }

    #[test]
    fn um_windows_distinguish_kinds() {
        let mut plan = FaultPlan::default();
        plan.um.push(UmFault {
            device: 0,
            start_ns: 0,
            end_ns: 100,
            kind: UmFaultKind::Storm,
            extra_ns: 400,
        });
        plan.um.push(UmFault {
            device: 0,
            start_ns: 50,
            end_ns: 150,
            kind: UmFaultKind::Storm,
            extra_ns: 100,
        });
        plan.um.push(UmFault {
            device: 0,
            start_ns: 200,
            end_ns: 300,
            kind: UmFaultKind::MigrationFail,
            extra_ns: 0,
        });
        let st = DeviceFaultState::from_plan(&plan, 0);
        assert_eq!(st.storm_extra(75), 500, "overlapping storms compound");
        assert_eq!(st.storm_extra(120), 100);
        assert_eq!(st.migration_fail(75), None);
        assert_eq!(st.migration_fail(250).map(|u| u.start_ns), Some(200));
    }

    #[test]
    fn parses_a_full_plan() {
        let text = r#"{
            "seed": 9,
            "ecc": [
                {"device": 0, "at_ns": 1000, "addr_start": 64, "addr_words": 8, "double_bit": true}
            ],
            "um": [
                {"device": 1, "start_ns": 0, "end_ns": 5000, "kind": "Storm", "extra_ns": 700},
                {"device": 1, "start_ns": 0, "end_ns": 5000, "kind": "MigrationFail"}
            ],
            "hangs": [
                {"device": 0, "start_ns": 100, "end_ns": 900, "budget_ns": 250}
            ],
            "pcie": [
                {"device": 0, "start_ns": 0, "end_ns": 2000, "factor": 3.5}
            ]
        }"#;
        let plan = FaultPlan::from_json_str(text).expect("valid plan");
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.ecc.len(), 1);
        assert!(plan.ecc[0].double_bit);
        assert_eq!(plan.um.len(), 2);
        assert_eq!(plan.um[0].kind, UmFaultKind::Storm);
        assert_eq!(plan.um[1].extra_ns, 0, "extra_ns defaults to 0");
        assert_eq!(plan.hangs[0].budget_ns, 250);
        assert_eq!(plan.pcie[0].factor, 3.5);
        assert_eq!(plan.pcie_windows(0), vec![(0, 2000, 3.5)]);
    }

    #[test]
    fn empty_object_is_the_empty_plan() {
        let plan = FaultPlan::from_json_str("{}").expect("valid");
        assert!(plan.is_empty());
        assert_eq!(plan.seed, 0);
    }

    #[test]
    fn rejects_malformed_plans_with_a_reason() {
        for (text, needle) in [
            ("", "end of input"),
            ("{", "expected"),
            ("[1,2]", "must be an object"),
            (r#"{"bogus": 1}"#, "unknown key `bogus`"),
            (r#"{"ecc": [{"device": 0}]}"#, "missing `at_ns`"),
            (
                r#"{"um": [{"device":0,"start_ns":0,"end_ns":1,"kind":"Nope"}]}"#,
                "MigrationFail",
            ),
            (
                r#"{"pcie": [{"device":0,"start_ns":0,"end_ns":1,"factor":0.5}]}"#,
                ">= 1.0",
            ),
            (r#"{"seed": -4}"#, "non-negative"),
            ("{} x", "trailing"),
        ] {
            let err = FaultPlan::from_json_str(text).expect_err(text);
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn rejects_duplicate_keys_everywhere() {
        // Top level: the second `seed` would silently shadow (or be
        // shadowed by) the first.
        let err = FaultPlan::from_json_str(r#"{"seed": 1, "seed": 2}"#).unwrap_err();
        assert!(err.contains("duplicate key `seed`"), "{err}");
        // Nested entries reject duplicates too.
        let err = FaultPlan::from_json_str(
            r#"{"hangs": [{"device": 0, "start_ns": 0, "start_ns": 5,
                           "end_ns": 10, "budget_ns": 1}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("duplicate key `start_ns`"), "{err}");
    }

    #[test]
    fn rejects_empty_ecc_address_ranges() {
        let err = FaultPlan::from_json_str(
            r#"{"ecc": [{"device": 0, "at_ns": 10, "addr_start": 0,
                         "addr_words": 0, "double_bit": false}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("addr_words"), "{err}");
        assert!(err.contains("empty address range"), "{err}");
    }

    #[test]
    fn rejects_zero_length_and_inverted_windows() {
        // Every windowed section names itself in the error; both the
        // zero-length and the inverted shape are called out explicitly.
        let cases = [
            (
                r#"{"um": [{"device": 0, "start_ns": 5, "end_ns": 5, "kind": "Storm"}]}"#,
                "um",
                "zero-length",
            ),
            (
                r#"{"um": [{"device": 0, "start_ns": 9, "end_ns": 2, "kind": "Storm"}]}"#,
                "um",
                "inverted",
            ),
            (
                r#"{"hangs": [{"device": 0, "start_ns": 7, "end_ns": 7, "budget_ns": 1}]}"#,
                "hangs",
                "zero-length",
            ),
            (
                r#"{"hangs": [{"device": 0, "start_ns": 7, "end_ns": 3, "budget_ns": 1}]}"#,
                "hangs",
                "inverted",
            ),
            (
                r#"{"pcie": [{"device": 0, "start_ns": 4, "end_ns": 4, "factor": 2.0}]}"#,
                "pcie",
                "zero-length",
            ),
            (
                r#"{"pcie": [{"device": 0, "start_ns": 4, "end_ns": 1, "factor": 2.0}]}"#,
                "pcie",
                "inverted",
            ),
        ];
        for (text, section, shape) in cases {
            let err = FaultPlan::from_json_str(text).expect_err(text);
            assert!(
                err.contains(&format!("`{section}` window")),
                "{text:?} -> {err}"
            );
            assert!(err.contains(shape), "{text:?} -> {err}");
        }
    }

    #[test]
    fn seeded_plan_round_trips_through_json() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let plan = FaultPlan::seeded(seed, 3, 2_000_000);
            let text = serde_json::to_string(&plan).expect("plan serializes");
            let back = FaultPlan::from_json_str(&text).expect("serialized plan parses");
            assert_eq!(plan, back, "round trip for seed {seed}");
        }
    }

    #[test]
    fn display_formats_the_fault() {
        let f = DeviceFault {
            kind: FaultKind::UmMigrationFail,
            device: 2,
            at_ns: 777,
        };
        assert_eq!(f.to_string(), "device 2 fault um_migration_fail at 777 ns");
    }
}
