//! Graph analysis: connected components, LCC share, reachability.
//!
//! Table II of the paper reports `%LCC` — the largest connected component's
//! share of the whole graph — and the traversal results hinge on how much of
//! the graph is reachable from the chosen source (Table IV's activation
//! percentages). Both are computed here, on the CPU, with a union-find over
//! the undirected edge set.

use crate::csr::{Csr, INF};
use crate::reference;

/// Weighted-union path-halving union-find.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    pub fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }

    /// Size of the component containing `x`.
    pub fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Connected-component summary of a graph (undirected sense).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentStats {
    pub components: usize,
    pub largest: usize,
    /// `largest / n`, the Table II `%LCC` column.
    pub lcc_fraction: f64,
}

/// Computes weakly-connected components.
pub fn components(g: &Csr) -> ComponentStats {
    let n = g.n();
    if n == 0 {
        return ComponentStats {
            components: 0,
            largest: 0,
            lcc_fraction: 0.0,
        };
    }
    let mut uf = UnionFind::new(n);
    for v in 0..n as u32 {
        for &d in g.neighbors(v) {
            uf.union(v, d);
        }
    }
    let mut largest = 0usize;
    let mut roots = 0usize;
    for v in 0..n as u32 {
        if uf.find(v) == v {
            roots += 1;
            largest = largest.max(uf.size[v as usize] as usize);
        }
    }
    ComponentStats {
        components: roots,
        largest,
        lcc_fraction: largest as f64 / n as f64,
    }
}

/// Vertices reachable from `src` by directed BFS (the paper's *activatable
/// subgraph* vertex set, Definition 2).
pub fn reachable_from(g: &Csr, src: u32) -> usize {
    let labels = reference::bfs(g, src);
    reference::reached_count(&labels, INF)
}

/// Fraction of all vertices that become active in a traversal from `src`
/// (Table IV's "Act. %" row).
pub fn activation_fraction(g: &Csr, src: u32) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    reachable_from(g, src) as f64 / g.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(3));
        assert_eq!(uf.component_size(4), 2);
        uf.union(1, 3);
        assert_eq!(uf.component_size(0), 4);
        assert_eq!(uf.component_size(2), 1);
    }

    #[test]
    fn components_of_two_islands() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let c = components(&g);
        assert_eq!(c.components, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(c.largest, 3);
        assert!((c.lcc_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn directed_edges_still_connect_weakly() {
        let g = Csr::from_edges(3, &[(2, 0), (2, 1)]);
        assert_eq!(components(&g).components, 1);
    }

    #[test]
    fn reachability_is_directed() {
        let g = Csr::from_edges(3, &[(0, 1), (2, 1)]);
        assert_eq!(reachable_from(&g, 0), 2);
        assert_eq!(reachable_from(&g, 1), 1);
        assert!((activation_fraction(&g, 0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_component_stats() {
        let g = Csr::from_edges(0, &[]);
        let c = components(&g);
        assert_eq!(c.components, 0);
        assert_eq!(activation_fraction(&g, 0), 0.0);
    }
}
