//! Compressed Sparse Row graph representation.
//!
//! CSR is the paper's canonical format (Table I shows it is the most
//! space-efficient of the candidates: `|E| + |V|` words for topology) and
//! the input to EtaGraph's on-the-fly Unified Degree Cut. Vertex IDs, row
//! offsets and edge weights are all `u32`, matching the 4-byte elements the
//! GPU kernels access.

use serde::Serialize;

/// Label value for "not reached" (`∞`).
pub const INF: u32 = u32::MAX;

/// A directed graph in CSR form, optionally edge-weighted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `row_offsets[v]..row_offsets[v+1]` indexes `col_idx` for vertex `v`.
    pub row_offsets: Vec<u32>,
    /// Destination vertex of each edge.
    pub col_idx: Vec<u32>,
    /// Optional per-edge weight, parallel to `col_idx`.
    pub weights: Option<Vec<u32>>,
}

impl Csr {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let a = self.row_offsets[v as usize] as usize;
        let b = self.row_offsets[v as usize + 1] as usize;
        &self.col_idx[a..b]
    }

    /// Edge-weight slice of `v` (panics if unweighted).
    #[inline]
    pub fn edge_weights(&self, v: u32) -> &[u32] {
        let a = self.row_offsets[v as usize] as usize;
        let b = self.row_offsets[v as usize + 1] as usize;
        // lint: allow(L-PANIC): documented precondition — callers check is_weighted()
        &self.weights.as_ref().expect("graph is unweighted")[a..b]
    }

    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.n() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.m() as f64 / self.n() as f64
        }
    }

    /// Topology bytes as stored on device: `(|V|+1) + |E|` words, plus `|E|`
    /// weight words when weighted.
    pub fn topology_bytes(&self) -> u64 {
        let words = self.row_offsets.len() as u64
            + self.col_idx.len() as u64
            + self.weights.as_ref().map_or(0, |w| w.len() as u64);
        words * 4
    }

    /// Builds from an edge list; edges are sorted and deduplicated
    /// (the paper assumes graphs without duplicate edges).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Csr {
        Self::from_weighted_edges_impl(n, edges, None)
    }

    /// Builds a weighted CSR; duplicate `(src, dst)` pairs keep the first
    /// weight encountered after sorting.
    pub fn from_weighted_edges(n: usize, edges: &[(u32, u32, u32)]) -> Csr {
        let pairs: Vec<(u32, u32)> = edges.iter().map(|&(s, d, _)| (s, d)).collect();
        let weights: Vec<u32> = edges.iter().map(|&(_, _, w)| w).collect();
        Self::from_weighted_edges_impl(n, &pairs, Some(&weights))
    }

    fn from_weighted_edges_impl(n: usize, edges: &[(u32, u32)], weights: Option<&[u32]>) -> Csr {
        assert!(n < u32::MAX as usize, "vertex ids must fit in u32");
        for &(s, d) in edges {
            assert!(
                (s as usize) < n && (d as usize) < n,
                "edge endpoint out of range"
            );
        }
        // Sort edge indices by (src, dst) — in parallel, this dominates
        // construction for multi-million-edge graphs — then dedup. The
        // index tiebreak keeps duplicate selection (and therefore the
        // surviving weight) deterministic across thread counts.
        let mut order: Vec<u32> = (0..edges.len() as u32).collect();
        eta_par::par_sort_by_key(&mut order, |&i| (edges[i as usize], i));
        order.dedup_by_key(|i| edges[*i as usize]);

        let mut row_offsets = vec![0u32; n + 1];
        for &i in &order {
            row_offsets[edges[i as usize].0 as usize + 1] += 1;
        }
        for v in 0..n {
            row_offsets[v + 1] += row_offsets[v];
        }
        let col_idx: Vec<u32> = order.iter().map(|&i| edges[i as usize].1).collect();
        let out_weights =
            weights.map(|w| order.iter().map(|&i| w[i as usize]).collect::<Vec<u32>>());
        let csr = Csr {
            row_offsets,
            col_idx,
            weights: out_weights,
        };
        debug_assert!(csr.validate().is_ok());
        csr
    }

    /// Structural invariants: monotone offsets, in-range targets, weight
    /// array parallel to edges.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_offsets.is_empty() {
            return Err("row_offsets must have at least one entry".into());
        }
        if self.row_offsets[0] != 0 {
            return Err("row_offsets[0] must be 0".into());
        }
        if self.row_offsets.last().copied().unwrap_or(0) as usize != self.col_idx.len() {
            return Err("last offset must equal edge count".into());
        }
        if self.row_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_offsets must be non-decreasing".into());
        }
        let n = self.n() as u32;
        if self.col_idx.iter().any(|&d| d >= n) {
            return Err("edge target out of range".into());
        }
        if let Some(w) = &self.weights {
            if w.len() != self.col_idx.len() {
                return Err("weights must parallel col_idx".into());
            }
        }
        Ok(())
    }

    /// The transposed graph (CSC of this one / CSR of the reverse graph).
    pub fn transpose(&self) -> Csr {
        let n = self.n();
        let mut row_offsets = vec![0u32; n + 1];
        for &d in &self.col_idx {
            row_offsets[d as usize + 1] += 1;
        }
        for v in 0..n {
            row_offsets[v + 1] += row_offsets[v];
        }
        let mut cursor = row_offsets.clone();
        let mut col_idx = vec![0u32; self.m()];
        let mut weights = self.weights.as_ref().map(|_| vec![0u32; self.m()]);
        for s in 0..n as u32 {
            let a = self.row_offsets[s as usize] as usize;
            let b = self.row_offsets[s as usize + 1] as usize;
            for e in a..b {
                let d = self.col_idx[e] as usize;
                let slot = cursor[d] as usize;
                cursor[d] += 1;
                col_idx[slot] = s;
                if let (Some(out), Some(src)) = (&mut weights, &self.weights) {
                    out[slot] = src[e];
                }
            }
        }
        Csr {
            row_offsets,
            col_idx,
            weights,
        }
    }

    /// All edges as `(src, dst)` tuples in CSR order.
    pub fn edge_tuples(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.m());
        for v in 0..self.n() as u32 {
            for &d in self.neighbors(v) {
                out.push((v, d));
            }
        }
        out
    }

    /// Attaches deterministic pseudo-random weights in `1..=max_weight`.
    pub fn with_random_weights(mut self, seed: u64, max_weight: u32) -> Csr {
        assert!(max_weight >= 1);
        let mut w = Vec::with_capacity(self.m());
        // SplitMix64 keyed by seed + edge index: deterministic and
        // independent of generation order.
        for e in 0..self.m() as u64 {
            let mut z = seed.wrapping_add(e.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            w.push(1 + (z % max_weight as u64) as u32);
        }
        self.weights = Some(w);
        self
    }

    /// Content digest of the topology and weights (FNV-1a, 64-bit,
    /// length-prefixed per array). Two graphs digest equal iff their CSR
    /// arrays are identical; checkpoint/resume uses this to pin a snapshot
    /// to the graph epoch it was taken against (see eta-ckpt).
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |w: u64| {
            for byte in w.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for part in [
            Some(&self.row_offsets),
            Some(&self.col_idx),
            self.weights.as_ref(),
        ] {
            match part {
                Some(v) => {
                    eat(v.len() as u64);
                    for &w in v.iter() {
                        eat(w as u64);
                    }
                }
                None => eat(u64::MAX),
            }
        }
        h
    }

    /// Out-degree histogram up to `buckets` (last bucket aggregates the
    /// tail); used to inspect skew.
    pub fn degree_histogram(&self, buckets: usize) -> Vec<u64> {
        let mut h = vec![0u64; buckets];
        for v in 0..self.n() as u32 {
            let d = self.degree(v) as usize;
            h[d.min(buckets - 1)] += 1;
        }
        h
    }
}

/// Summary statistics of a graph (Table II columns).
#[derive(Debug, Clone, Serialize)]
pub struct GraphStats {
    pub vertices: usize,
    pub edges: usize,
    pub avg_degree: f64,
    pub max_degree: u32,
    pub size_bytes: u64,
}

impl GraphStats {
    pub fn of(csr: &Csr) -> GraphStats {
        GraphStats {
            vertices: csr.n(),
            edges: csr.m(),
            avg_degree: csr.avg_degree(),
            max_degree: csr.max_degree(),
            size_bytes: csr.topology_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn from_edges_builds_expected_structure() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let g = Csr::from_edges(3, &[(0, 1), (0, 1), (1, 2), (0, 1)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let g = Csr::from_edges(4, &[(2, 0), (0, 3), (0, 1), (2, 1)]);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    #[test]
    fn weighted_edges_stay_parallel() {
        let g = Csr::from_weighted_edges(3, &[(1, 2, 9), (0, 1, 5), (0, 2, 7)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.edge_weights(0), &[5, 7]);
        assert_eq!(g.edge_weights(1), &[9]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.m(), g.m());
        // Transposing twice restores the original.
        let tt = t.transpose();
        assert_eq!(tt, g);
    }

    #[test]
    fn transpose_carries_weights() {
        let g = Csr::from_weighted_edges(3, &[(0, 2, 7), (1, 2, 9)]);
        let t = g.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.edge_weights(2), &[7, 9]);
    }

    #[test]
    fn topology_bytes_formula() {
        let g = diamond();
        assert_eq!(g.topology_bytes(), (5 + 4) * 4);
        let w = diamond().with_random_weights(1, 64);
        assert_eq!(w.topology_bytes(), (5 + 4 + 4) * 4);
    }

    #[test]
    fn random_weights_in_range_and_deterministic() {
        let a = diamond().with_random_weights(42, 10);
        let b = diamond().with_random_weights(42, 10);
        assert_eq!(a.weights, b.weights);
        assert!(a.weights.unwrap().iter().all(|&w| (1..=10).contains(&w)));
        let c = diamond().with_random_weights(43, 10);
        assert_ne!(c.weights, b.weights, "different seed, different weights");
    }

    #[test]
    fn validate_catches_corruption() {
        let mut g = diamond();
        g.col_idx[0] = 99;
        assert!(g.validate().is_err());
        let mut g2 = diamond();
        g2.row_offsets[1] = 3;
        g2.row_offsets[2] = 2;
        assert!(g2.validate().is_err());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert!(g.validate().is_ok());
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn edge_tuples_roundtrip() {
        let g = diamond();
        let edges = g.edge_tuples();
        let g2 = Csr::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn digest_tracks_content_not_identity() {
        let a = diamond();
        let b = diamond();
        assert_eq!(a.digest(), b.digest(), "equal graphs digest equal");
        let mut c = diamond();
        c.col_idx[0] = 2;
        assert_ne!(a.digest(), c.digest(), "one flipped edge changes it");
        let w = diamond().with_random_weights(1, 4);
        assert_ne!(a.digest(), w.digest(), "weights are part of the epoch");
    }

    #[test]
    fn degree_histogram_shape() {
        let g = diamond();
        let h = g.degree_histogram(4);
        assert_eq!(h, vec![1, 2, 1, 0]); // one deg-0, two deg-1, one deg-2
    }
}
