//! The scaled evaluation datasets (Table II analogs).
//!
//! The paper evaluates on six real-world graphs (Slashdot, LiveJournal,
//! com-Orkut, uk-2005, sk-2005, uk-2006) and one synthetic R-MAT graph.
//! Without the originals, we generate analogs scaled down ~128× that
//! preserve the structural properties each result depends on:
//!
//! | name          | analog of   | driver preserved                                  |
//! |---------------|-------------|---------------------------------------------------|
//! | `slashdot`    | Slashdot    | tiny size (transformation overhead dominates)     |
//! | `livejournal` | LiveJournal | mid-size power-law social graph, ~15 iterations   |
//! | `orkut`       | com-Orkut   | dense social graph (avg degree ~38), ~8 iterations|
//! | `rmat22`      | RMAT25      | PaRMAT a=.45/b=.22/c=.22, partial activation      |
//! | `uk2005`      | uk-2005     | ~200 BFS iterations, %LCC ≈ 65                    |
//! | `sk2005`      | sk-2005     | large, ~57 iterations, weighted run oversubscribes|
//! | `uk2006`      | uk-2006     | bigger than device memory; source reaches ~1e-4   |
//!
//! Sizes are chosen jointly with the scaled device-memory capacity so the
//! out-of-memory pattern of the paper's Table III is reproduced (see
//! DESIGN.md). Every dataset is deterministic in its fixed seed.

use crate::csr::Csr;
use crate::generate::{rmat, web, RmatConfig, WebConfig};

/// Default maximum edge weight for the weighted (SSSP/SSWP) runs.
pub const MAX_WEIGHT: u32 = 64;

/// A named evaluation graph with its traversal source.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: &'static str,
    pub analog_of: &'static str,
    pub csr: Csr,
    pub source: u32,
    /// Seed for derived data (edge weights).
    pub seed: u64,
}

impl Dataset {
    /// A weighted copy of the topology (deterministic per dataset).
    pub fn weighted(&self) -> Csr {
        self.csr
            .clone()
            .with_random_weights(self.seed ^ 0x77, MAX_WEIGHT)
    }
}

/// Names of the full evaluation suite, in Table II order.
pub const ALL: [&str; 7] = [
    "slashdot",
    "livejournal",
    "orkut",
    "rmat22",
    "uk2005",
    "sk2005",
    "uk2006",
];

/// Names of the small suite (fast enough for unit tests and Criterion).
pub const SMALL: [&str; 3] = ["slashdot", "livejournal", "orkut"];

/// Builds one dataset by name. Panics on unknown names (the name list is a
/// compile-time constant; see [`ALL`]).
pub fn build(name: &str) -> Dataset {
    match name {
        "slashdot" => social("slashdot", "Slashdot", 13, 94_000, 0x0051),
        "livejournal" => social("livejournal", "LiveJournal", 17, 1_900_000, 0x1717),
        "orkut" => social("orkut", "com-Orkut", 16, 2_600_000, 0x0230),
        "rmat22" => social("rmat22", "RMAT25", 17, 4_600_000, 0x2222),
        "uk2005" => web_like(
            "uk2005",
            "uk-2005",
            WebConfig {
                vertices: 300_000,
                edges: 7_000_000,
                communities: 96,
                lcc_fraction: 0.652,
                source_island: None,
                seed: 0x2005,
            },
        ),
        "sk2005" => web_like(
            "sk2005",
            "sk-2005",
            WebConfig {
                vertices: 400_000,
                edges: 15_000_000,
                communities: 27,
                lcc_fraction: 0.708,
                source_island: None,
                seed: 0x5005,
            },
        ),
        "uk2006" => web_like(
            "uk2006",
            "uk-2006",
            WebConfig {
                vertices: 640_000,
                edges: 23_000_000,
                communities: 40,
                lcc_fraction: 0.71,
                source_island: Some(80),
                seed: 0x2006,
            },
        ),
        // lint: allow(L-PANIC): registry is closed over ALL; an unknown name is caller error
        other => panic!("unknown dataset {other:?}; known: {ALL:?}"),
    }
}

/// Builds the whole suite (expensive; ~50 M edges of generation).
pub fn build_all() -> Vec<Dataset> {
    ALL.iter().map(|n| build(n)).collect()
}

fn social(
    name: &'static str,
    analog_of: &'static str,
    scale: u32,
    samples: usize,
    seed: u64,
) -> Dataset {
    let csr = rmat(&RmatConfig::paper(scale, samples, seed));
    // "the first source node": the paper starts from the dataset's first
    // vertex with a non-trivial traversal; pick the first vertex whose
    // out-degree is non-zero so BFS actually expands.
    let source = (0..csr.n() as u32)
        .find(|&v| csr.degree(v) > 0)
        .unwrap_or(0);
    Dataset {
        name,
        analog_of,
        csr,
        source,
        seed,
    }
}

fn web_like(name: &'static str, analog_of: &'static str, cfg: WebConfig) -> Dataset {
    let (csr, source) = web(&cfg);
    Dataset {
        name,
        analog_of,
        csr,
        source,
        seed: cfg.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::reference;

    #[test]
    fn small_suite_has_expected_shapes() {
        let sd = build("slashdot");
        assert_eq!(sd.csr.n(), 8192);
        assert!(sd.csr.m() > 60_000, "slashdot edges: {}", sd.csr.m());
        assert!(sd.csr.degree(sd.source) > 0);

        let lj = build("livejournal");
        assert_eq!(lj.csr.n(), 131_072);
        assert!(lj.csr.m() > 1_500_000);
        // Power-law skew drives UDC.
        assert!(lj.csr.max_degree() > 50 * lj.csr.avg_degree() as u32);
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = build("slashdot");
        let b = build("slashdot");
        assert_eq!(a.csr, b.csr);
        assert_eq!(a.weighted().weights, b.weighted().weights);
    }

    #[test]
    fn weighted_copy_preserves_topology() {
        let d = build("slashdot");
        let w = d.weighted();
        assert_eq!(w.row_offsets, d.csr.row_offsets);
        assert_eq!(w.col_idx, d.csr.col_idx);
        assert!(w
            .weights
            .unwrap()
            .iter()
            .all(|&x| (1..=MAX_WEIGHT).contains(&x)));
    }

    #[test]
    fn social_bfs_iteration_counts_match_paper_band() {
        // Paper Table IV: 8 iterations (Slashdot), 15 (LiveJournal).
        let d = build("slashdot");
        let labels = reference::bfs(&d.csr, d.source);
        let depth = labels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap();
        assert!((4..=20).contains(&depth), "slashdot BFS depth {depth}");
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        build("nope");
    }

    // The web-like datasets are expensive; exercise the smallest one only.
    #[test]
    fn uk2006_source_island_activation_is_tiny() {
        let d = build("uk2006");
        let frac = analysis::activation_fraction(&d.csr, d.source);
        assert!(frac < 5e-4, "uk2006 activation must be ~1e-4, got {frac}");
        // And the big graph is mostly one component.
        let c = analysis::components(&d.csr);
        assert!(c.lcc_fraction > 0.6 && c.lcc_fraction < 0.8);
    }
}
