//! Edge-list representation (structure-of-arrays).
//!
//! Edge-centric frameworks such as X-Stream and Medusa-style GPU systems
//! store graphs as `(src, dst)` tuples — `2|E|` words of topology, the 1.87×
//! CSR overhead the paper's Table I reports for LiveJournal.

use crate::csr::Csr;

/// A directed graph as parallel `src`/`dst` (and optional weight) arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    pub src: Vec<u32>,
    pub dst: Vec<u32>,
    pub weights: Option<Vec<u32>>,
    /// Vertex count (not derivable from edges when trailing vertices are
    /// isolated).
    pub n: usize,
}

impl EdgeList {
    pub fn from_csr(g: &Csr) -> EdgeList {
        let m = g.m();
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        for v in 0..g.n() as u32 {
            for &d in g.neighbors(v) {
                src.push(v);
                dst.push(d);
            }
        }
        EdgeList {
            src,
            dst,
            weights: g.weights.clone(),
            n: g.n(),
        }
    }

    pub fn m(&self) -> usize {
        self.src.len()
    }

    /// Topology bytes: `2|E|` words (+ weights).
    pub fn topology_bytes(&self) -> u64 {
        let words =
            (self.src.len() + self.dst.len() + self.weights.as_ref().map_or(0, Vec::len)) as u64;
        words * 4
    }

    pub fn to_csr(&self) -> Csr {
        match &self.weights {
            None => {
                let edges: Vec<(u32, u32)> = self
                    .src
                    .iter()
                    .zip(&self.dst)
                    .map(|(&s, &d)| (s, d))
                    .collect();
                Csr::from_edges(self.n, &edges)
            }
            Some(w) => {
                let edges: Vec<(u32, u32, u32)> = self
                    .src
                    .iter()
                    .zip(&self.dst)
                    .zip(w)
                    .map(|((&s, &d), &w)| (s, d, w))
                    .collect();
                Csr::from_weighted_edges(self.n, &edges)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let g = Csr::from_edges(5, &[(0, 1), (0, 4), (2, 3), (4, 0)]);
        let el = EdgeList::from_csr(&g);
        assert_eq!(el.m(), 4);
        assert_eq!(el.n, 5);
        assert_eq!(el.to_csr(), g);
    }

    #[test]
    fn weighted_roundtrip() {
        let g = Csr::from_weighted_edges(3, &[(0, 1, 9), (1, 2, 4)]);
        let el = EdgeList::from_csr(&g);
        assert_eq!(el.weights.as_ref().unwrap(), &vec![9, 4]);
        assert_eq!(el.to_csr(), g);
    }

    #[test]
    fn topology_bytes_is_double_edges() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let el = EdgeList::from_csr(&g);
        assert_eq!(el.topology_bytes(), 2 * 3 * 4);
    }
}
