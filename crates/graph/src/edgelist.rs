//! Edge-list representation (structure-of-arrays).
//!
//! Edge-centric frameworks such as X-Stream and Medusa-style GPU systems
//! store graphs as `(src, dst)` tuples — `2|E|` words of topology, the 1.87×
//! CSR overhead the paper's Table I reports for LiveJournal.

use crate::csr::Csr;
use std::fmt;

/// Why an [`EdgeList`] could not be converted to CSR: the parallel arrays
/// disagree on length, or an endpoint lies outside the declared vertex
/// count. Externally-built edge lists (loaders, FFI) hit these on corrupt
/// input; `try_to_csr` turns them into typed errors instead of panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeListError {
    /// `src`, `dst`, and (when present) `weights` must be equally long.
    LengthMismatch {
        src: usize,
        dst: usize,
        weights: Option<usize>,
    },
    /// Edge `index` references `vertex`, but the list declares only `n`
    /// vertices.
    VertexOutOfRange { index: usize, vertex: u32, n: usize },
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::LengthMismatch { src, dst, weights } => {
                write!(f, "parallel arrays disagree: {src} src, {dst} dst")?;
                if let Some(w) = weights {
                    write!(f, ", {w} weights")?;
                }
                Ok(())
            }
            EdgeListError::VertexOutOfRange { index, vertex, n } => write!(
                f,
                "edge {index} references vertex {vertex}, but the list declares {n} vertices"
            ),
        }
    }
}

impl std::error::Error for EdgeListError {}

/// A directed graph as parallel `src`/`dst` (and optional weight) arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    pub src: Vec<u32>,
    pub dst: Vec<u32>,
    pub weights: Option<Vec<u32>>,
    /// Vertex count (not derivable from edges when trailing vertices are
    /// isolated).
    pub n: usize,
}

impl EdgeList {
    pub fn from_csr(g: &Csr) -> EdgeList {
        let m = g.m();
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        for v in 0..g.n() as u32 {
            for &d in g.neighbors(v) {
                src.push(v);
                dst.push(d);
            }
        }
        EdgeList {
            src,
            dst,
            weights: g.weights.clone(),
            n: g.n(),
        }
    }

    pub fn m(&self) -> usize {
        self.src.len()
    }

    /// Topology bytes: `2|E|` words (+ weights).
    pub fn topology_bytes(&self) -> u64 {
        let words =
            (self.src.len() + self.dst.len() + self.weights.as_ref().map_or(0, Vec::len)) as u64;
        words * 4
    }

    /// Converts to CSR, assuming the list is well-formed (panics
    /// otherwise). For lists built from untrusted input use
    /// [`EdgeList::try_to_csr`].
    pub fn to_csr(&self) -> Csr {
        // lint: allow(L-PANIC): documented panicking variant; try_to_csr is the fallible API
        self.try_to_csr()
            .expect("EdgeList::to_csr on a malformed list")
    }

    /// Validated conversion to CSR: checks the parallel arrays agree on
    /// length and every endpoint is inside `[0, n)` before handing the
    /// edges to the (panicking) CSR builder.
    pub fn try_to_csr(&self) -> Result<Csr, EdgeListError> {
        if self.src.len() != self.dst.len()
            || self
                .weights
                .as_ref()
                .is_some_and(|w| w.len() != self.src.len())
        {
            return Err(EdgeListError::LengthMismatch {
                src: self.src.len(),
                dst: self.dst.len(),
                weights: self.weights.as_ref().map(Vec::len),
            });
        }
        for (index, (&s, &d)) in self.src.iter().zip(&self.dst).enumerate() {
            let vertex = s.max(d);
            if vertex as usize >= self.n {
                return Err(EdgeListError::VertexOutOfRange {
                    index,
                    vertex,
                    n: self.n,
                });
            }
        }
        Ok(match &self.weights {
            None => {
                let edges: Vec<(u32, u32)> = self
                    .src
                    .iter()
                    .zip(&self.dst)
                    .map(|(&s, &d)| (s, d))
                    .collect();
                Csr::from_edges(self.n, &edges)
            }
            Some(w) => {
                let edges: Vec<(u32, u32, u32)> = self
                    .src
                    .iter()
                    .zip(&self.dst)
                    .zip(w)
                    .map(|((&s, &d), &w)| (s, d, w))
                    .collect();
                Csr::from_weighted_edges(self.n, &edges)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let g = Csr::from_edges(5, &[(0, 1), (0, 4), (2, 3), (4, 0)]);
        let el = EdgeList::from_csr(&g);
        assert_eq!(el.m(), 4);
        assert_eq!(el.n, 5);
        assert_eq!(el.to_csr(), g);
    }

    #[test]
    fn weighted_roundtrip() {
        let g = Csr::from_weighted_edges(3, &[(0, 1, 9), (1, 2, 4)]);
        let el = EdgeList::from_csr(&g);
        assert_eq!(el.weights.as_ref().unwrap(), &vec![9, 4]);
        assert_eq!(el.to_csr(), g);
    }

    #[test]
    fn try_to_csr_rejects_malformed_lists() {
        // Parallel arrays of different lengths.
        let el = EdgeList {
            src: vec![0, 1],
            dst: vec![1],
            weights: None,
            n: 3,
        };
        let err = el.try_to_csr().unwrap_err();
        assert_eq!(
            err,
            EdgeListError::LengthMismatch {
                src: 2,
                dst: 1,
                weights: None
            }
        );
        assert!(err.to_string().contains("2 src, 1 dst"), "{err}");
        // Weights out of step with the edges.
        let el = EdgeList {
            src: vec![0, 1],
            dst: vec![1, 2],
            weights: Some(vec![5]),
            n: 3,
        };
        assert!(matches!(
            el.try_to_csr(),
            Err(EdgeListError::LengthMismatch {
                weights: Some(1),
                ..
            })
        ));
        // An endpoint past the declared vertex count, with its position.
        let el = EdgeList {
            src: vec![0, 1],
            dst: vec![1, 9],
            weights: None,
            n: 3,
        };
        let err = el.try_to_csr().unwrap_err();
        assert_eq!(
            err,
            EdgeListError::VertexOutOfRange {
                index: 1,
                vertex: 9,
                n: 3
            }
        );
        assert!(err.to_string().contains("edge 1"), "{err}");
        // A well-formed list still converts.
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(EdgeList::from_csr(&g).try_to_csr().unwrap(), g);
    }

    #[test]
    fn topology_bytes_is_double_edges() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let el = EdgeList::from_csr(&g);
        assert_eq!(el.topology_bytes(), 2 * 3 * 4);
    }
}
