//! Synthetic graph generators.
//!
//! * [`rmat`] — the PaRMAT-style recursive-matrix generator the paper uses
//!   for its synthetic dataset (`a=0.45, b=0.22, c=0.22`), producing the
//!   power-law out-degree skew that motivates Unified Degree Cut.
//! * [`web`] — a high-diameter "web graph" analog: hub-dominated communities
//!   chained by sparse bridges, with a controllable fraction of the graph in
//!   the largest connected component and an optional tiny source island.
//!   This reproduces the *structural drivers* of the paper's uk-2005 /
//!   sk-2005 / uk-2006 results: hundreds of BFS iterations, partial
//!   reachability, and a source that reaches ~1e-4 of the vertices.
//!
//! All generators are deterministic in their seed and independent of the
//! worker-thread count (per-edge counter-based RNG).

use crate::csr::Csr;

/// SplitMix64: cheap counter-based RNG, one stream per (seed, index).
/// Public so workload generators elsewhere (e.g. the serving layer's
/// Poisson arrivals) can share the repository's one deterministic RNG.
#[inline]
pub fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1).
#[inline]
pub fn unit(seed: u64, index: u64) -> f64 {
    (splitmix(seed, index) >> 11) as f64 / (1u64 << 53) as f64
}

/// R-MAT configuration (PaRMAT parameters; `d = 1 - a - b - c`).
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edge samples to draw (duplicates are removed, so the final edge count
    /// is slightly lower).
    pub edges: usize,
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub seed: u64,
}

impl RmatConfig {
    /// The paper's PaRMAT parameters.
    pub fn paper(scale: u32, edges: usize, seed: u64) -> Self {
        RmatConfig {
            scale,
            edges,
            a: 0.45,
            b: 0.22,
            c: 0.22,
            seed,
        }
    }
}

/// Generates an R-MAT graph in CSR form.
pub fn rmat(cfg: &RmatConfig) -> Csr {
    let n = 1usize << cfg.scale;
    let d = 1.0 - cfg.a - cfg.b - cfg.c;
    assert!(d >= -1e-9, "a+b+c must be <= 1");
    let edges: Vec<(u32, u32)> = eta_par::build_vec(cfg.edges, |i| {
        let mut src = 0u32;
        let mut dst = 0u32;
        for bit in 0..cfg.scale {
            let r = unit(cfg.seed, (i as u64) << 8 | bit as u64);
            // Quadrant probabilities with a small per-level perturbation so
            // the degree distribution is not perfectly self-similar (PaRMAT's
            // noise option).
            let noise = 0.05 * (unit(cfg.seed ^ 0xABCD, (i as u64) << 8 | bit as u64) - 0.5);
            let a = (cfg.a + noise).clamp(0.0, 1.0);
            let ab = a + cfg.b;
            let abc = ab + cfg.c;
            src <<= 1;
            dst <<= 1;
            if r < a {
                // top-left: neither bit set
            } else if r < ab {
                dst |= 1;
            } else if r < abc {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        (src, dst)
    });
    Csr::from_edges(n, &edges)
}

/// Configuration of the web-like generator.
#[derive(Debug, Clone, Copy)]
pub struct WebConfig {
    /// Total vertices, including islands.
    pub vertices: usize,
    /// Approximate total edges.
    pub edges: usize,
    /// Hub-dominated communities chained by bridges. BFS needs roughly two
    /// iterations per community, so iteration count ≈ `2 * communities`.
    pub communities: usize,
    /// Fraction of vertices in the bridged chain (the LCC).
    pub lcc_fraction: f64,
    /// If set, a tiny isolated component of this size holds vertex 0; a BFS
    /// from 0 then activates only ~`size / vertices` of the graph (the
    /// paper's uk-2006 scenario).
    pub source_island: Option<usize>,
    pub seed: u64,
}

/// Generates a web-like graph. Returns the CSR and the intended BFS source.
pub fn web(cfg: &WebConfig) -> (Csr, u32) {
    let island0 = cfg.source_island.unwrap_or(0);
    assert!(island0 < cfg.vertices / 4, "source island must be small");
    let lcc_n = ((cfg.vertices - island0) as f64 * cfg.lcc_fraction) as usize;
    let comm = cfg.communities.max(1);
    let comm_size = (lcc_n / comm).max(4);
    let lcc_n = comm_size * comm; // exact multiple
    let lcc_start = island0;
    let isolated_start = lcc_start + lcc_n;
    let n = cfg.vertices.max(isolated_start);

    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(cfg.edges + island0 * 2);

    // --- source island: a branching-4 tree plus back edges; diameter ~4.
    if island0 > 0 {
        for v in 1..island0 {
            let parent = (v - 1) / 4;
            edges.push((parent as u32, v as u32));
            edges.push((v as u32, parent as u32));
        }
    }

    // --- the LCC: chained hub communities.
    // Fixed structure first: each hub fans out over its whole community (a
    // high-degree web host page — the paper's web graphs have max
    // out-degree in the thousands), each member links back to the hub
    // (2-hop internal diameter), two bridges reach the next hub. Whatever
    // remains of the edge budget becomes random member→member links, so the
    // generator actually delivers ~`cfg.edges` edges.
    let members_per_comm = comm_size - 1;
    let hub_edges = comm * members_per_comm;
    let back_edges = comm * members_per_comm;
    let bridge_edges = (comm - 1) * 2;
    let island_edges_est = (n - isolated_start) + island0 * 2;
    let fixed = hub_edges + back_edges + bridge_edges + island_edges_est;
    let member_count = comm * members_per_comm;
    let extra_links = cfg.edges.saturating_sub(fixed) / member_count.max(1);

    for c in 0..comm {
        let base = (lcc_start + c * comm_size) as u32;
        let hub = base;
        for v in 1..comm_size {
            let vid = base + v as u32;
            edges.push((hub, vid));
            edges.push((vid, hub));
            for l in 0..extra_links {
                let r = splitmix(cfg.seed ^ 0x00C0FFEE, (vid as u64) << 8 | l as u64);
                let other = base + 1 + (r % (comm_size as u64 - 1)) as u32;
                edges.push((vid, other));
            }
        }
        // Bridges to the next community's hub (sparse forward chain).
        if c + 1 < comm {
            let next_hub = base + comm_size as u32;
            for b in 0..2 {
                let r = splitmix(cfg.seed ^ 0x00BB_11DD, (c as u64) << 4 | b);
                let from = base + 1 + (r % (comm_size as u64 - 1)) as u32;
                edges.push((from, next_hub));
            }
        }
    }

    // --- isolated islands: rings of ~1024 vertices, unreachable from the LCC.
    let mut v = isolated_start;
    while v < n {
        let end = (v + 1024).min(n);
        for u in v..end {
            let next = if u + 1 < end { u + 1 } else { v };
            if next != u {
                edges.push((u as u32, next as u32));
            }
        }
        v = end;
    }

    let source = if island0 > 0 { 0 } else { lcc_start as u32 };
    (Csr::from_edges(n, &edges), source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let cfg = RmatConfig::paper(10, 10_000, 7);
        let a = rmat(&cfg);
        let b = rmat(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn rmat_seed_changes_graph() {
        let a = rmat(&RmatConfig::paper(10, 10_000, 7));
        let b = rmat(&RmatConfig::paper(10, 10_000, 8));
        assert_ne!(a, b);
    }

    #[test]
    fn rmat_respects_scale_and_approximate_edges() {
        let cfg = RmatConfig::paper(12, 50_000, 1);
        let g = rmat(&cfg);
        assert_eq!(g.n(), 4096);
        // Duplicates shrink the count but not catastrophically.
        assert!(g.m() > 30_000, "got {} edges", g.m());
        assert!(g.m() <= 50_000);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(&RmatConfig::paper(14, 200_000, 3));
        let max = g.max_degree() as f64;
        let avg = g.avg_degree();
        assert!(
            max > 20.0 * avg,
            "power-law skew expected: max {max}, avg {avg}"
        );
    }

    #[test]
    fn rmat_thread_count_does_not_change_result() {
        let cfg = RmatConfig::paper(11, 30_000, 99);
        let seq = {
            let _g = eta_par::ThreadGuard::set(1);
            rmat(&cfg)
        };
        let par = {
            let _g = eta_par::ThreadGuard::set(4);
            rmat(&cfg)
        };
        assert_eq!(seq, par);
    }

    #[test]
    fn web_basic_shape() {
        let (g, src) = web(&WebConfig {
            vertices: 20_000,
            edges: 120_000,
            communities: 20,
            lcc_fraction: 0.7,
            source_island: None,
            seed: 5,
        });
        assert!(g.validate().is_ok());
        assert_eq!(src, 0);
        assert!(g.n() >= 20_000);
        assert!(g.m() > 60_000);
        // Hubs make the graph skewed.
        assert!(g.max_degree() > 100);
    }

    #[test]
    fn web_source_island_is_tiny_and_closed() {
        let island = 96;
        let (g, src) = web(&WebConfig {
            vertices: 10_000,
            edges: 60_000,
            communities: 10,
            lcc_fraction: 0.7,
            source_island: Some(island),
            seed: 11,
        });
        assert_eq!(src, 0);
        // No edge leaves the island.
        for v in 0..island as u32 {
            for &d in g.neighbors(v) {
                assert!((d as usize) < island, "island must be closed");
            }
        }
        // And no edge enters it from outside.
        for v in island as u32..g.n() as u32 {
            for &d in g.neighbors(v) {
                assert!((d as usize) >= island);
            }
        }
    }

    #[test]
    fn web_is_deterministic() {
        let cfg = WebConfig {
            vertices: 5_000,
            edges: 30_000,
            communities: 8,
            lcc_fraction: 0.65,
            source_island: None,
            seed: 2,
        };
        assert_eq!(web(&cfg).0, web(&cfg).0);
    }
}
