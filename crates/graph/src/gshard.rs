//! G-Shards: CuSha's graph representation.
//!
//! CuSha (Khorasani et al., HPDC'14) partitions the vertex ID space into
//! *windows* sized so each window's vertex values fit in an SM's shared
//! memory; shard `i` holds every edge whose **destination** falls in window
//! `i`, sorted by source. Processing a shard then writes only to a compact,
//! shared-memory-resident value window — fully coalesced — at the price of
//! storing each edge as an explicit `(src, dst)` pair: `2|E|` words, the
//! 1.87× CSR footprint in the paper's Table I, and of touching **all**
//! edges every iteration (no frontier).

use crate::csr::Csr;

/// One shard: edges whose destinations lie in `[dst_start, dst_end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    pub dst_start: u32,
    pub dst_end: u32,
    /// Edge sources, sorted.
    pub src: Vec<u32>,
    /// Edge destinations, parallel to `src`.
    pub dst: Vec<u32>,
    pub weights: Option<Vec<u32>>,
}

impl Shard {
    pub fn window_size(&self) -> u32 {
        self.dst_end - self.dst_start
    }
}

/// A G-Shards decomposition of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GShards {
    pub shards: Vec<Shard>,
    pub n: usize,
    /// Destination-window width (vertices per shard).
    pub window: u32,
}

impl GShards {
    /// Builds shards with `window` destination vertices each (CuSha sizes
    /// this so a window of vertex values fits in shared memory; with 48 KiB
    /// usable that is ~12K `u32` values — we default to 4096 to leave room
    /// for metadata, matching CuSha's published configuration).
    pub fn from_csr(g: &Csr, window: u32) -> GShards {
        assert!(window > 0);
        let n = g.n();
        let n_shards = (n as u32).div_ceil(window).max(1) as usize;
        let mut shards: Vec<Shard> = (0..n_shards)
            .map(|i| Shard {
                dst_start: i as u32 * window,
                dst_end: ((i as u32 + 1) * window).min(n as u32),
                src: Vec::new(),
                dst: Vec::new(),
                weights: g.weights.as_ref().map(|_| Vec::new()),
            })
            .collect();
        for v in 0..n as u32 {
            let a = g.row_offsets[v as usize] as usize;
            let b = g.row_offsets[v as usize + 1] as usize;
            for e in a..b {
                let d = g.col_idx[e];
                let s = (d / window) as usize;
                shards[s].src.push(v);
                shards[s].dst.push(d);
                if let (Some(ws), Some(w)) = (&mut shards[s].weights, &g.weights) {
                    ws.push(w[e]);
                }
            }
        }
        // Iterating vertices in order makes each shard's src already sorted.
        GShards { shards, n, window }
    }

    /// CuSha's default window for a 48 KiB shared-memory budget.
    pub const DEFAULT_WINDOW: u32 = 4096;

    pub fn m(&self) -> usize {
        self.shards.iter().map(|s| s.src.len()).sum()
    }

    /// Topology bytes: `(src, dst)` per edge (+ weight) plus shard index.
    pub fn topology_bytes(&self) -> u64 {
        let edge_words: u64 = self
            .shards
            .iter()
            .map(|s| (s.src.len() + s.dst.len() + s.weights.as_ref().map_or(0, Vec::len)) as u64)
            .sum();
        let index_words = self.shards.len() as u64 * 2; // offsets + window bounds
        (edge_words + index_words) * 4
    }

    /// Rebuilds the original edge set (order-insensitive check helper).
    pub fn edge_tuples(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = self
            .shards
            .iter()
            .flat_map(|s| s.src.iter().zip(&s.dst).map(|(&a, &b)| (a, b)))
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{rmat, RmatConfig};

    #[test]
    fn shards_partition_by_destination_window() {
        let g = Csr::from_edges(10, &[(0, 1), (0, 9), (5, 2), (7, 8), (9, 0)]);
        let s = GShards::from_csr(&g, 4);
        assert_eq!(s.shards.len(), 3);
        for shard in &s.shards {
            for &d in &shard.dst {
                assert!(d >= shard.dst_start && d < shard.dst_end);
            }
        }
        assert_eq!(s.m(), g.m());
    }

    #[test]
    fn edges_are_preserved() {
        let g = rmat(&RmatConfig::paper(10, 20_000, 77));
        let s = GShards::from_csr(&g, 256);
        let mut orig = g.edge_tuples();
        orig.sort_unstable();
        assert_eq!(s.edge_tuples(), orig);
    }

    #[test]
    fn sources_within_shard_are_sorted() {
        let g = rmat(&RmatConfig::paper(9, 5_000, 3));
        let s = GShards::from_csr(&g, 128);
        for shard in &s.shards {
            assert!(shard.src.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn footprint_is_roughly_double_csr() {
        let g = rmat(&RmatConfig::paper(12, 60_000, 5));
        let s = GShards::from_csr(&g, GShards::DEFAULT_WINDOW);
        let ratio = s.topology_bytes() as f64 / g.topology_bytes() as f64;
        assert!(ratio > 1.5 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn weights_follow_edges() {
        let g = Csr::from_weighted_edges(4, &[(0, 3, 7), (1, 0, 5), (2, 3, 9)]);
        let s = GShards::from_csr(&g, 2);
        let total_w: usize = s
            .shards
            .iter()
            .map(|sh| sh.weights.as_ref().unwrap().len())
            .sum();
        assert_eq!(total_w, 3);
        // Shard of window [2,4) holds both weight-7 and weight-9 edges.
        let hi = &s.shards[1];
        assert_eq!(hi.weights.as_ref().unwrap(), &vec![7, 9]);
    }
}
