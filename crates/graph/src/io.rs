//! Binary CSR graph I/O.
//!
//! The paper stores datasets in the Galois CSR binary format for fast
//! loading; we define an equivalent little-endian container:
//!
//! ```text
//! magic   "ETAG"            4 bytes
//! version u32               currently 1
//! flags   u32               bit 0: weighted
//! n       u64               vertices
//! m       u64               edges
//! row_offsets  (n+1) × u32
//! col_idx       m    × u32
//! weights       m    × u32  (iff weighted)
//! ```

use crate::csr::Csr;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"ETAG";
const VERSION: u32 = 1;
const FLAG_WEIGHTED: u32 = 1;

/// Serializes a CSR graph to a writer.
pub fn write_csr<W: Write>(g: &Csr, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let flags = if g.is_weighted() { FLAG_WEIGHTED } else { 0 };
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&(g.n() as u64).to_le_bytes())?;
    w.write_all(&(g.m() as u64).to_le_bytes())?;
    write_u32s(w, &g.row_offsets)?;
    write_u32s(w, &g.col_idx)?;
    if let Some(weights) = &g.weights {
        write_u32s(w, weights)?;
    }
    Ok(())
}

/// Deserializes a CSR graph from a reader, validating structure.
pub fn read_csr<R: Read>(r: &mut R) -> io::Result<Csr> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(invalid("unsupported version"));
    }
    let flags = read_u32(r)?;
    let n = read_u64(r)? as usize;
    let m = read_u64(r)? as usize;
    if n >= u32::MAX as usize || m >= u32::MAX as usize {
        return Err(invalid("graph too large for u32 indices"));
    }
    let row_offsets = read_u32s(r, n + 1)?;
    let col_idx = read_u32s(r, m)?;
    let weights = if flags & FLAG_WEIGHTED != 0 {
        Some(read_u32s(r, m)?)
    } else {
        None
    };
    let g = Csr {
        row_offsets,
        col_idx,
        weights,
    };
    g.validate().map_err(invalid)?;
    Ok(g)
}

/// Writes a graph to a file path (buffered).
pub fn save<P: AsRef<Path>>(g: &Csr, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_csr(g, &mut w)?;
    w.flush()
}

/// Loads a graph from a file path (buffered).
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Csr> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    read_csr(&mut r)
}

/// Parses a whitespace-separated edge-list text (`src dst [weight]` per
/// line, `#`-prefixed comments allowed) — the "human-readable edge lists
/// format" the paper sizes its datasets in.
///
/// Strict: every malformed line is a line-numbered error — vertex ids that
/// overflow `u32`, endpoints outside a declared `n_hint`, trailing garbage
/// after the weight, and lines that switch between the weighted and
/// unweighted arity mid-file (a weight silently defaulting to 1 on *some*
/// edges is a corrupt dataset, not a convenience).
pub fn parse_edge_list(text: &str, n_hint: Option<usize>) -> Result<Csr, String> {
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    let mut weighted: Option<bool> = None;
    let mut max_v = 0u32;
    let parse_vertex = |tok: &str, what: &str, lineno: usize| -> Result<u32, String> {
        let v: u32 = tok
            .parse()
            .map_err(|_| format!("line {}: {what} vertex id {tok:?} is not a u32", lineno + 1))?;
        if let Some(n) = n_hint {
            if v as usize >= n {
                return Err(format!(
                    "line {}: {what} vertex {v} out of range (graph declared {n} vertices)",
                    lineno + 1
                ));
            }
        }
        Ok(v)
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let s = parse_vertex(
            it.next()
                .ok_or_else(|| format!("line {}: missing src", lineno + 1))?,
            "src",
            lineno,
        )?;
        let d = parse_vertex(
            it.next()
                .ok_or_else(|| format!("line {}: missing dst", lineno + 1))?,
            "dst",
            lineno,
        )?;
        let w = match it.next() {
            Some(tok) => {
                if weighted == Some(false) {
                    return Err(format!(
                        "line {}: weighted edge in an unweighted list",
                        lineno + 1
                    ));
                }
                weighted = Some(true);
                tok.parse::<u32>()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?
            }
            None => {
                if weighted == Some(true) {
                    return Err(format!(
                        "line {}: unweighted edge in a weighted list",
                        lineno + 1
                    ));
                }
                weighted = Some(false);
                1
            }
        };
        if let Some(extra) = it.next() {
            return Err(format!(
                "line {}: trailing token {extra:?} after the edge",
                lineno + 1
            ));
        }
        max_v = max_v.max(s).max(d);
        edges.push((s, d, w));
    }
    let weighted = weighted == Some(true);
    let n = n_hint.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_v as usize + 1
    });
    if weighted {
        Ok(Csr::from_weighted_edges(n, &edges))
    } else {
        let pairs: Vec<(u32, u32)> = edges.iter().map(|&(s, d, _)| (s, d)).collect();
        Ok(Csr::from_edges(n, &pairs))
    }
}

fn invalid<E: ToString>(msg: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn write_u32s<W: Write>(w: &mut W, data: &[u32]) -> io::Result<()> {
    // Chunked conversion keeps memory bounded for multi-GB graphs.
    let mut buf = Vec::with_capacity(64 * 1024);
    for chunk in data.chunks(16 * 1024) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32s(r: &mut impl Read, count: usize) -> io::Result<Vec<u32>> {
    // `count` comes from the file header, i.e. attacker-controlled: a
    // 40-byte file can claim four billion edges. Cap the *up-front*
    // allocation and let the vector grow only as bytes actually arrive —
    // a lying header then fails with a clean truncation error instead of
    // first allocating gigabytes.
    const PREALLOC_CAP: usize = 1 << 22; // 16 MiB of u32s
    let mut out = Vec::with_capacity(count.min(PREALLOC_CAP));
    let mut buf = vec![0u8; 64 * 1024];
    let mut remaining = count
        .checked_mul(4)
        .ok_or_else(|| invalid("element count overflows byte count"))?;
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_exact(&mut buf[..take])?;
        for b in buf[..take].chunks_exact(4) {
            out.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
        remaining -= take;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{rmat, RmatConfig};

    #[test]
    fn roundtrip_unweighted() {
        let g = rmat(&RmatConfig::paper(10, 20_000, 42));
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        let back = read_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_weighted() {
        let g = rmat(&RmatConfig::paper(9, 8_000, 1)).with_random_weights(3, 64);
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        let back = read_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(g, back);
        assert!(back.is_weighted());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_csr(&Csr::from_edges(2, &[(0, 1)]), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_is_rejected() {
        let mut buf = Vec::new();
        write_csr(&Csr::from_edges(3, &[(0, 1), (1, 2)]), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_structure_is_rejected() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        // Flip a col_idx entry to an out-of-range vertex.
        let col_pos = buf.len() - 8;
        buf[col_pos..col_pos + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = rmat(&RmatConfig::paper(8, 2_000, 5));
        let dir = std::env::temp_dir().join("etagraph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.etag");
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_text_parsing() {
        let text = "# comment\n0 1\n1 2\n\n2 0\n";
        let g = parse_edge_list(text, None).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        let weighted = parse_edge_list("0 1 9\n1 0 4\n", Some(4)).unwrap();
        assert_eq!(weighted.n(), 4);
        assert_eq!(weighted.edge_weights(0), &[9]);
        assert!(parse_edge_list("0 x\n", None).is_err());
    }

    #[test]
    fn edge_list_errors_carry_line_numbers() {
        // Vertex-id overflow: 2^32 does not fit in u32.
        let err = parse_edge_list("0 1\n2 4294967296\n", None).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("not a u32"), "{err}");
        // An endpoint past the declared vertex count is an error, not a
        // panic inside CSR construction.
        let err = parse_edge_list("# header\n0 1\n1 7\n", Some(4)).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        assert!(err.contains("out of range"), "{err}");
        assert!(err.contains("4 vertices"), "{err}");
        // Trailing garbage after the weight column.
        let err = parse_edge_list("0 1 9 junk\n", None).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(err.contains("trailing token"), "{err}");
        // Mixed arity, both directions.
        let err = parse_edge_list("0 1 9\n1 2\n", None).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("unweighted edge in a weighted list"), "{err}");
        let err = parse_edge_list("0 1\n1 2 5\n", None).unwrap_err();
        assert!(err.contains("weighted edge in an unweighted list"), "{err}");
    }

    #[test]
    fn lying_header_fails_without_the_giant_allocation() {
        // A 40-byte file claiming ~4 billion edges: the reader must fail on
        // truncation, not allocate the claimed 16 GiB up front. The test
        // passing at all (inside the harness memory budget) is the point.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // flags
        buf.extend_from_slice(&2u64.to_le_bytes()); // n = 2
        buf.extend_from_slice(&((u32::MAX - 1) as u64).to_le_bytes()); // m: a lie
        buf.extend_from_slice(&[0u8; 12]); // a few real bytes, then EOF
        let err = read_csr(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn inconsistent_header_counts_are_rejected() {
        // row_offsets' last entry disagrees with the header's edge count.
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        // Patch the last row offset (2) to 1; header still claims m = 2.
        let off_pos = 4 + 4 + 4 + 8 + 8 + 3 * 4;
        buf[off_pos..off_pos + 4].copy_from_slice(&1u32.to_le_bytes());
        let err = read_csr(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("last offset"), "{err}");
    }
}
