//! `eta-graph` — the graph substrate of the EtaGraph reproduction.
//!
//! Provides every graph-side ingredient the paper's evaluation needs:
//!
//! * [`csr`] — Compressed Sparse Row, the paper's canonical (and most
//!   space-efficient, Table I) representation.
//! * [`edgelist`] / [`gshard`] / [`vst`] — the competing representations of
//!   Table I: plain edge tuples, CuSha's G-Shards, and Tigr's materialized
//!   Virtual Split Transformation.
//! * [`generate`] — deterministic R-MAT (PaRMAT parameters) and web-like
//!   generators.
//! * [`datasets`] — the seven scaled analogs of Table II.
//! * [`io`] — Galois-style binary CSR container and edge-list text parsing.
//! * [`analysis`] — connected components / %LCC / activation fractions.
//! * [`mod@reference`] — CPU oracles used to validate
//!   every GPU framework in the test suite.

pub mod analysis;
pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod generate;
pub mod gshard;
pub mod io;
pub mod reference;
pub mod vst;

pub use csr::{Csr, GraphStats, INF};
pub use datasets::Dataset;
pub use edgelist::{EdgeList, EdgeListError};
pub use gshard::GShards;
pub use vst::Vst;
