//! CPU reference implementations of the three traversal algorithms.
//!
//! These are the correctness oracles: every GPU framework result in the test
//! suite is compared against them. BFS additionally has a parallel
//! level-synchronous variant (built on `eta-par`) used for large graphs and
//! as a determinism check of the parallel substrate.
//!
//! Label conventions (shared with the GPU kernels):
//! * BFS — `label[v]` = hop count from the source, [`INF`] if unreachable.
//! * SSSP — `label[v]` = minimum path weight (saturating `u32` adds).
//! * SSWP — `label[v]` = widest-path bottleneck; the source itself is `INF`
//!   (infinitely wide empty path), unreachable vertices are `0`.

use crate::csr::{Csr, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, Ordering};

/// Breadth-first search levels from `src`.
pub fn bfs(g: &Csr, src: u32) -> Vec<u32> {
    let mut label = vec![INF; g.n()];
    let mut frontier = vec![src];
    label[src as usize] = 0;
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &d in g.neighbors(v) {
                if label[d as usize] == INF {
                    label[d as usize] = depth;
                    next.push(d);
                }
            }
        }
        frontier = next;
    }
    label
}

/// Parallel level-synchronous BFS on the `eta-par` substrate.
///
/// Produces exactly the same labels as [`bfs`] (levels are unique), while
/// exercising concurrent atomic claiming of vertices.
pub fn bfs_parallel(g: &Csr, src: u32) -> Vec<u32> {
    let labels: Vec<AtomicU32> = (0..g.n()).map(|_| AtomicU32::new(INF)).collect();
    labels[src as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![src];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let next = eta_par::map_reduce(
            frontier.len(),
            Vec::new,
            |mut acc: Vec<u32>, i| {
                let v = frontier[i];
                for &d in g.neighbors(v) {
                    if labels[d as usize]
                        .compare_exchange(INF, depth, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        acc.push(d);
                    }
                }
                acc
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        frontier = next;
    }
    labels.into_iter().map(AtomicU32::into_inner).collect()
}

/// Dijkstra single-source shortest paths (weights required).
pub fn sssp(g: &Csr, src: u32) -> Vec<u32> {
    // lint: allow(L-PANIC): documented precondition — weighted algorithms take weighted graphs
    let w = g.weights.as_ref().expect("SSSP needs weights");
    let mut dist = vec![INF; g.n()];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0u32, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let a = g.row_offsets[v as usize] as usize;
        let b = g.row_offsets[v as usize + 1] as usize;
        for (&t, &wt) in g.col_idx[a..b].iter().zip(&w[a..b]) {
            let nd = d.saturating_add(wt);
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Reverse((nd, t)));
            }
        }
    }
    dist
}

/// Single-source widest path: maximize the minimum edge weight along a path.
pub fn sswp(g: &Csr, src: u32) -> Vec<u32> {
    // lint: allow(L-PANIC): documented precondition — weighted algorithms take weighted graphs
    let w = g.weights.as_ref().expect("SSWP needs weights");
    let mut width = vec![0u32; g.n()];
    let mut heap = BinaryHeap::new();
    width[src as usize] = INF; // empty path is infinitely wide
    heap.push((INF, src));
    while let Some((wd, v)) = heap.pop() {
        if wd < width[v as usize] {
            continue;
        }
        let a = g.row_offsets[v as usize] as usize;
        let b = g.row_offsets[v as usize + 1] as usize;
        for (&t, &wt) in g.col_idx[a..b].iter().zip(&w[a..b]) {
            let nw = wd.min(wt);
            if nw > width[t as usize] {
                width[t as usize] = nw;
                heap.push((nw, t));
            }
        }
    }
    width
}

/// Reference PageRank with damping `d`, run for `iters` Jacobi rounds.
///
/// Dangling vertices (out-degree 0) redistribute their mass uniformly, so
/// the ranks always sum to 1. `f64` on the host; the GPU kernels use `f32`
/// and are validated against this within a tolerance.
pub fn pagerank(g: &Csr, d: f64, iters: u32) -> Vec<f64> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.fill(0.0);
        let mut dangling = 0.0f64;
        for v in 0..n as u32 {
            let deg = g.degree(v);
            if deg == 0 {
                dangling += rank[v as usize];
                continue;
            }
            let share = rank[v as usize] / deg as f64;
            for &t in g.neighbors(v) {
                next[t as usize] += share;
            }
        }
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        for (r, nx) in rank.iter_mut().zip(&next) {
            *r = base + d * nx;
        }
    }
    rank
}

/// Number of vertices a BFS label vector marks reached.
pub fn reached_count(labels: &[u32], unreachable: u32) -> usize {
    labels.iter().filter(|&&l| l != unreachable).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{rmat, RmatConfig};

    fn diamond() -> Csr {
        Csr::from_weighted_edges(
            5,
            &[(0, 1, 2), (0, 2, 10), (1, 3, 2), (2, 3, 10), (3, 4, 1)],
        )
    }

    #[test]
    fn bfs_levels() {
        let g = diamond();
        assert_eq!(bfs(&g, 0), vec![0, 1, 1, 2, 3]);
        assert_eq!(bfs(&g, 3), vec![INF, INF, INF, 0, 1]);
    }

    #[test]
    fn bfs_unreachable_is_inf() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let l = bfs(&g, 0);
        assert_eq!(l, vec![0, 1, INF, INF]);
        assert_eq!(reached_count(&l, INF), 2);
    }

    #[test]
    fn sssp_takes_cheapest_path() {
        let g = diamond();
        // 0->1->3 = 4 beats 0->2->3 = 20.
        assert_eq!(sssp(&g, 0), vec![0, 2, 10, 4, 5]);
    }

    #[test]
    fn sswp_takes_widest_path() {
        let g = diamond();
        // widest to 3: 0->2->3 bottleneck 10 beats 0->1->3 bottleneck 2.
        let w = sswp(&g, 0);
        assert_eq!(w[0], INF);
        assert_eq!(w[3], 10);
        assert_eq!(w[4], 1);
        assert_eq!(w[1], 2);
    }

    #[test]
    fn sswp_unreachable_is_zero() {
        let g = Csr::from_weighted_edges(3, &[(0, 1, 5)]);
        let w = sswp(&g, 0);
        assert_eq!(w[2], 0);
    }

    #[test]
    fn parallel_bfs_matches_sequential() {
        let g = rmat(&RmatConfig::paper(13, 80_000, 21));
        for src in [0u32, 1, 100] {
            assert_eq!(bfs(&g, src), bfs_parallel(&g, src), "src {src}");
        }
    }

    #[test]
    fn sssp_with_unit_weights_matches_bfs() {
        let mut g = rmat(&RmatConfig::paper(11, 30_000, 4));
        g.weights = Some(vec![1; g.m()]);
        let b = bfs(&g, 0);
        let d = sssp(&g, 0);
        assert_eq!(b, d);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        let g = rmat(&RmatConfig::paper(10, 20_000, 6));
        let pr = pagerank(&g, 0.85, 30);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass conserved: {total}");
        // The highest-in-degree vertex should outrank the median vertex.
        let t = g.transpose();
        let hub = (0..g.n() as u32).max_by_key(|&v| t.degree(v)).unwrap();
        let median = pr[g.n() / 2];
        assert!(pr[hub as usize] > median);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let n = 8;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Csr::from_edges(n as usize, &edges);
        let pr = pagerank(&g, 0.85, 50);
        for &r in &pr {
            assert!((r - 1.0 / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn self_loop_and_cycle_terminate() {
        let g = Csr::from_weighted_edges(3, &[(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 2, 3)]);
        assert_eq!(sssp(&g, 0), vec![0, 1, 4]);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2]);
        let w = sswp(&g, 0);
        assert_eq!(w[2], 1);
    }
}
