//! Virtual Split Transformation — Tigr's preprocessing (Sabet et al.,
//! ASPLOS'18).
//!
//! VST splits every vertex with out-degree above a bound `k` into multiple
//! *virtual vertices* of degree ≤ `k`, **materialized at preprocessing
//! time**: the transformed graph carries a new offset array and a
//! virtual→real mapping on top of the original edge array. The paper's
//! Table I prices this at `|E| + 2|N| + 2|V|` words (N = virtual vertices)
//! versus plain CSR's `|E| + |V|` — the space and preprocessing overhead
//! that EtaGraph's on-the-fly Unified Degree Cut avoids.

use crate::csr::Csr;

/// A VST-transformed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vst {
    /// Degree bound.
    pub k: u32,
    /// Real vertex count.
    pub n_real: usize,
    /// `virt_offsets[u]..virt_offsets[u+1]` indexes `col_idx` for virtual
    /// vertex `u` (|N|+1 entries).
    pub virt_offsets: Vec<u32>,
    /// Real vertex each virtual vertex stands for (|N| entries).
    pub virt_real: Vec<u32>,
    /// First virtual vertex of each real vertex (|V|+1 entries).
    pub real_virt_start: Vec<u32>,
    /// Edge targets, identical content to the source CSR (|E| entries).
    pub col_idx: Vec<u32>,
    pub weights: Option<Vec<u32>>,
}

impl Vst {
    /// Materializes the transformation (Tigr's preprocessing step).
    pub fn from_csr(g: &Csr, k: u32) -> Vst {
        assert!(k >= 1, "degree bound must be positive");
        let n = g.n();
        let mut virt_offsets = vec![0u32];
        let mut virt_real = Vec::new();
        let mut real_virt_start = Vec::with_capacity(n + 1);
        for v in 0..n as u32 {
            real_virt_start.push(virt_real.len() as u32);
            let deg = g.degree(v);
            let start = g.row_offsets[v as usize];
            let parts = deg.div_ceil(k);
            for p in 0..parts {
                let lo = start + p * k;
                let hi = (lo + k).min(start + deg);
                virt_real.push(v);
                virt_offsets.push(hi);
                debug_assert!(hi - lo <= k);
            }
        }
        real_virt_start.push(virt_real.len() as u32);
        Vst {
            k,
            n_real: n,
            virt_offsets,
            virt_real,
            real_virt_start,
            col_idx: g.col_idx.clone(),
            weights: g.weights.clone(),
        }
    }

    /// Number of virtual vertices (the paper's `|N|`).
    pub fn n_virtual(&self) -> usize {
        self.virt_real.len()
    }

    pub fn m(&self) -> usize {
        self.col_idx.len()
    }

    /// Virtual vertices belonging to real vertex `v`.
    pub fn virtuals_of(&self, v: u32) -> std::ops::Range<u32> {
        self.real_virt_start[v as usize]..self.real_virt_start[v as usize + 1]
    }

    /// Edge range of virtual vertex `u`.
    pub fn edges_of(&self, u: u32) -> std::ops::Range<usize> {
        self.virt_offsets[u as usize] as usize..self.virt_offsets[u as usize + 1] as usize
    }

    /// Topology bytes: `|E| + 2|N| + 2|V|` words (Table I's VST row), plus
    /// weights when present.
    pub fn topology_bytes(&self) -> u64 {
        let words = self.col_idx.len() as u64
            + self.virt_offsets.len() as u64
            + self.virt_real.len() as u64
            + self.real_virt_start.len() as u64
            + self.n_real as u64 // per-real bookkeeping Tigr keeps for updates
            + self.weights.as_ref().map_or(0, |w| w.len() as u64);
        words * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{rmat, RmatConfig};

    fn star() -> Csr {
        // vertex 0 has out-degree 7.
        Csr::from_edges(8, &(1..8).map(|d| (0u32, d)).collect::<Vec<_>>())
    }

    #[test]
    fn high_degree_vertex_is_split() {
        let v = Vst::from_csr(&star(), 3);
        // degree 7, k=3 -> 3 virtual vertices (3+3+1); others have none
        // (degree 0 yields no virtual vertex).
        assert_eq!(v.n_virtual(), 3);
        assert_eq!(v.virtuals_of(0), 0..3);
        assert_eq!(v.virtuals_of(1), 3..3);
        let sizes: Vec<usize> = (0..3).map(|u| v.edges_of(u).len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn all_virtual_degrees_bounded() {
        let g = rmat(&RmatConfig::paper(12, 80_000, 9));
        for k in [1u32, 4, 16] {
            let v = Vst::from_csr(&g, k);
            for u in 0..v.n_virtual() as u32 {
                assert!(v.edges_of(u).len() as u32 <= k);
            }
        }
    }

    #[test]
    fn edges_are_partitioned_exactly() {
        let g = rmat(&RmatConfig::paper(11, 40_000, 13));
        let v = Vst::from_csr(&g, 8);
        // Virtual edge ranges must tile 0..m without gaps or overlaps.
        let mut covered = 0usize;
        for u in 0..v.n_virtual() as u32 {
            let r = v.edges_of(u);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, g.m());
        // And each virtual vertex's edges are its real vertex's edges.
        for real in 0..g.n() as u32 {
            let mut edges: Vec<u32> = Vec::new();
            for u in v.virtuals_of(real) {
                edges.extend_from_slice(&v.col_idx[v.edges_of(u)]);
            }
            assert_eq!(edges, g.neighbors(real));
        }
    }

    #[test]
    fn k1_yields_one_virtual_per_edge() {
        let g = star();
        let v = Vst::from_csr(&g, 1);
        assert_eq!(v.n_virtual(), g.m());
    }

    #[test]
    fn footprint_exceeds_csr() {
        let g = rmat(&RmatConfig::paper(12, 60_000, 5));
        let v = Vst::from_csr(&g, 10);
        assert!(v.topology_bytes() > g.topology_bytes());
        let ratio = v.topology_bytes() as f64 / g.topology_bytes() as f64;
        assert!(ratio < 2.0, "VST is cheaper than edge lists: {ratio}");
    }

    #[test]
    fn low_degree_graph_is_nearly_unchanged() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let v = Vst::from_csr(&g, 10);
        assert_eq!(v.n_virtual(), 3, "one virtual per non-zero-degree vertex");
    }
}
