//! The committed suppression baseline (`lint.allow` at the workspace root).
//!
//! Pre-existing accepted sites are explicit: each entry names the rule, the
//! file, and the *exact trimmed source line* it suppresses. Keying on line
//! text instead of line numbers keeps entries stable across unrelated edits
//! to the same file; when the flagged line itself changes or disappears,
//! the entry stops matching anything and becomes a **staleness error** —
//! the baseline can only ever shrink by deleting entries alongside fixes,
//! never rot silently.
//!
//! Format, one entry per line, tab-separated (`#` comments and blank lines
//! ignored):
//!
//! ```text
//! RULE-ID<TAB>workspace/relative/path.rs<TAB>exact trimmed source line
//! ```

use crate::rules::Finding;
use std::collections::BTreeMap;

/// One parsed suppression entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub line_text: String,
}

impl BaselineEntry {
    pub fn display(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.path, self.line_text)
    }
}

/// A parse failure with its 1-based line in `lint.allow`.
#[derive(Debug)]
pub struct BaselineError {
    pub line: u32,
    pub message: String,
}

/// Parses `lint.allow` content. Malformed lines are hard errors: a baseline
/// that silently drops entries would un-suppress (or worse, keep
/// suppressing) the wrong findings.
pub fn parse(content: &str) -> Result<Vec<BaselineEntry>, BaselineError> {
    let mut entries = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = raw.splitn(3, '\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(text)) if !rule.is_empty() && !path.is_empty() => {
                entries.push(BaselineEntry {
                    rule: rule.trim().to_string(),
                    path: path.trim().to_string(),
                    line_text: text.trim().to_string(),
                });
            }
            _ => {
                return Err(BaselineError {
                    line: idx as u32 + 1,
                    message: format!(
                        "malformed baseline entry (want RULE<TAB>path<TAB>source line): {raw:?}"
                    ),
                });
            }
        }
    }
    Ok(entries)
}

/// The result of applying a baseline to raw findings.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings not covered by any entry — these fail the gate.
    pub new: Vec<Finding>,
    /// Count of findings suppressed by the baseline.
    pub suppressed: usize,
    /// Entries that suppressed nothing — each is a staleness error.
    pub stale: Vec<BaselineEntry>,
}

/// Splits findings into new vs baselined, and detects stale entries.
/// `source_line` maps a finding to its trimmed source-line text.
pub fn apply<F>(findings: Vec<Finding>, entries: &[BaselineEntry], source_line: F) -> Applied
where
    F: Fn(&Finding) -> String,
{
    let mut used: BTreeMap<usize, usize> = BTreeMap::new(); // entry idx -> hits
    let mut out = Applied::default();
    for f in findings {
        let text = source_line(&f);
        let hit = entries
            .iter()
            .position(|e| e.rule == f.rule && e.path == f.path && e.line_text == text);
        match hit {
            Some(idx) => {
                *used.entry(idx).or_insert(0) += 1;
                out.suppressed += 1;
            }
            None => out.new.push(f),
        }
    }
    for (idx, e) in entries.iter().enumerate() {
        if !used.contains_key(&idx) {
            out.stale.push(e.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn roundtrip_and_comments() {
        let src = "# header\n\nL-PANIC\tcrates/x/src/lib.rs\tfoo.unwrap();\n";
        let e = parse(src).expect("parses");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, "L-PANIC");
        assert_eq!(e[0].line_text, "foo.unwrap();");
    }

    #[test]
    fn malformed_lines_are_errors() {
        let err = parse("L-PANIC only-two-fields\n").expect_err("rejects");
        assert_eq!(err.line, 1);
        assert!(err.message.contains("malformed"));
    }

    #[test]
    fn apply_splits_and_detects_stale() {
        let entries =
            parse("L-PANIC\ta.rs\tfoo.unwrap();\nL-PANIC\ta.rs\tgone.unwrap();\n").expect("parses");
        let found = vec![finding("L-PANIC", "a.rs", 3), finding("L-PANIC", "a.rs", 9)];
        let applied = apply(found, &entries, |f| {
            if f.line == 3 {
                "foo.unwrap();".into()
            } else {
                "other.unwrap();".into()
            }
        });
        assert_eq!(applied.suppressed, 1);
        assert_eq!(applied.new.len(), 1);
        assert_eq!(applied.new[0].line, 9);
        assert_eq!(applied.stale.len(), 1);
        assert_eq!(applied.stale[0].line_text, "gone.unwrap();");
    }

    #[test]
    fn one_entry_covers_repeated_identical_lines() {
        let entries = parse("L-CAST-TRUNC\ta.rs\tlet k = v.len() as u32;\n").expect("parses");
        let found = vec![
            finding("L-CAST-TRUNC", "a.rs", 3),
            finding("L-CAST-TRUNC", "a.rs", 30),
        ];
        let applied = apply(found, &entries, |_| "let k = v.len() as u32;".into());
        assert_eq!(applied.suppressed, 2);
        assert!(applied.new.is_empty());
        assert!(applied.stale.is_empty());
    }
}
