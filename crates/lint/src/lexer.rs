//! A comment/string/raw-string-aware Rust lexer.
//!
//! The workspace builds hermetically — there is no `syn` in `vendor/` — so
//! the rule engine works on a hand-rolled token stream instead of a real
//! AST. The lexer's one job is to be *exactly right* about what is code and
//! what is not: a `HashMap` inside a string literal, a `unwrap()` inside a
//! nested block comment, and a `'a` lifetime that looks like the start of a
//! char literal must all come out the other side correctly classified,
//! because every rule downstream trusts the token kinds blindly.
//!
//! Comments are not emitted as tokens, but they are scanned for inline
//! suppression directives (`lint: allow(RULE-ID): justification`), which
//! [`lex`] returns alongside the token stream.

/// What a token is. Literal *contents* are never matched by rules — only
/// idents and punctuation drive the rule engine — but literals still occupy
/// a token slot so adjacency patterns cannot match across them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `as`, `r#match`).
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// String literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##`.
    Str,
    /// Char or byte literal: `'x'`, `'\n'`, `b'\''`.
    Char,
    /// Lifetime: `'a`, `'_`, `'static`.
    Lifetime,
    /// Numeric literal, including suffixes (`0x1Fu64`, `1.5e3`).
    Num,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// An inline suppression found in a comment: `lint: allow(L-PANIC): why`.
///
/// A directive without a justification after the rule id is recorded with
/// `justified = false`; it does not suppress anything (the engine reports
/// it as its own finding instead), so every accepted site carries a reason.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the comment starts on.
    pub line: u32,
    pub rule: String,
    pub justified: bool,
}

/// Lexer output: the token stream plus any inline allow directives.
#[derive(Debug, Default)]
pub struct LexOutput {
    pub toks: Vec<Tok>,
    pub allows: Vec<AllowDirective>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes Rust source. Never fails: unterminated literals or comments
/// simply end at EOF (the rustc build gate reports those properly; the
/// linter's contract is only to not misclassify what follows valid code).
pub fn lex(text: &str) -> LexOutput {
    Lexer {
        chars: text.chars().collect(),
        i: 0,
        line: 1,
        out: LexOutput::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: LexOutput,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Advances one char, counting newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'b' if self.peek(1) == Some('"') => {
                    self.bump(); // b
                    self.string();
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump(); // b — a byte literal is always a char, never a lifetime
                    self.tick();
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump(); // b
                    self.bump(); // r
                    self.raw_string_or_ident(false);
                }
                'r' if matches!(self.peek(1), Some('"' | '#')) => {
                    self.bump(); // r
                    self.raw_string_or_ident(true);
                }
                '\'' => self.tick(),
                _ if is_ident_start(c) => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let mut body = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            body.push(c);
            self.bump();
        }
        self.scan_directive(&body, start_line);
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let mut body = String::new();
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                body.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                body.push_str("*/");
            } else {
                body.push(c);
                self.bump();
            }
        }
        self.scan_directive(&body, start_line);
    }

    /// Parses `lint: allow(RULE): justification` out of a comment body.
    fn scan_directive(&mut self, body: &str, line: u32) {
        const MARKER: &str = "lint: allow(";
        let Some(at) = body.find(MARKER) else {
            return;
        };
        let rest = &body[at + MARKER.len()..];
        let Some(close) = rest.find(')') else {
            return;
        };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim_start();
        // Justification: a `:` followed by non-empty prose.
        let justified = tail
            .strip_prefix(':')
            .map(|t| t.trim().len() >= 3)
            .unwrap_or(false);
        self.out.allows.push(AllowDirective {
            line,
            rule,
            justified,
        });
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// After `r` (and optionally `b`) was consumed: either a raw string
    /// (`r"…"`, `r#"…"#`, any hash count) or a raw identifier (`r#match`).
    /// `ident_ok` is false after `br`, which can only start a raw string.
    fn raw_string_or_ident(&mut self, ident_ok: bool) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(hashes) {
            Some('"') => {
                for _ in 0..=hashes {
                    self.bump(); // hashes + opening quote
                }
                // Scan for `"` followed by exactly `hashes` hashes.
                'outer: while let Some(c) = self.bump() {
                    if c == '"' {
                        for k in 0..hashes {
                            if self.peek(k) != Some('#') {
                                continue 'outer;
                            }
                        }
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                self.push(TokKind::Str, String::new(), line);
            }
            _ if ident_ok && hashes == 1 => {
                // Raw identifier: consume `#` then the ident; the token text
                // is the bare name so rules see `r#move` as `move`.
                self.bump();
                self.ident();
            }
            _ => {
                // A stray `r#` with nothing valid after it: emit what we
                // swallowed as punct and continue.
                for _ in 0..hashes {
                    self.bump();
                    self.push(TokKind::Punct, "#".into(), line);
                }
            }
        }
    }

    /// `'` starts either a lifetime or a char literal. A backslash after
    /// the tick is always a char literal; `'x'` (any single char, then a
    /// closing tick) is a char literal; everything else is a lifetime.
    fn tick(&mut self) {
        let line = self.line;
        match (self.peek(1), self.peek(2)) {
            (Some('\\'), _) => {
                self.bump(); // '
                self.bump(); // backslash
                self.bump(); // escaped char ('u' of \u{…}, or the char itself)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, String::new(), line);
            }
            (Some(_), Some('\'')) => {
                self.bump(); // '
                self.bump(); // the char
                self.bump(); // closing '
                self.push(TokKind::Char, String::new(), line);
            }
            _ => {
                self.bump(); // '
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, name, line);
            }
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, name, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                // Covers digits, hex digits, suffixes (u32), exponents (e3).
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).map(|d| d.is_ascii_digit()) == Some(true) {
                // A float's decimal point — but never swallow `..` ranges.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r##"let x = "HashMap unwrap()"; call(x);"##;
        assert_eq!(idents(src), ["let", "x", "call", "x"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = "let p = r#\"thread_rng() \" still inside\"#; let q = r\"Instant\"; after();";
        assert_eq!(idents(src), ["let", "p", "let", "q", "after"]);
        // Double-hash raw strings can hold single-hash terminators.
        let src2 = "let z = r##\"contains \"# HashMap\"##; tail();";
        assert_eq!(idents(src2), ["let", "z", "tail"]);
        // Raw *byte* strings too.
        let src3 = "let b = br#\"SystemTime\"#; done();";
        assert_eq!(idents(src3), ["let", "b", "done"]);
    }

    #[test]
    fn nested_block_comments_are_skipped_entirely() {
        let src = "before(); /* outer /* inner unwrap() */ still comment HashMap */ after();";
        assert_eq!(idents(src), ["before", "after"]);
    }

    #[test]
    fn line_comments_end_at_newline() {
        let src = "a(); // unwrap() HashMap\nb();";
        assert_eq!(idents(src), ["a", "b"]);
        let toks = lex(src).toks;
        assert_eq!(toks.last().map(|t| t.line), Some(2));
    }

    #[test]
    fn char_vs_lifetime_ticks() {
        // 'a' is a char; 'a (no closing tick) is a lifetime; '\'' escapes.
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let n = '\\n'; }";
        let toks = lex(src).toks;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
        // The idents on either side survive.
        assert!(toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn unicode_escape_char_literal() {
        let src = "let c = '\\u{1F600}'; next();";
        assert_eq!(idents(src), ["let", "c", "next"]);
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        let src = "let r#match = 1; use_it(r#match);";
        assert_eq!(idents(src), ["let", "match", "use_it", "match"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..10 { x(1.5e3, 0xFFu64); }";
        let toks = lex(src).toks;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e3", "0xFFu64"]);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"two\nlines\";\nmarker();";
        let toks = lex(src).toks;
        let marker = toks.iter().find(|t| t.is_ident("marker"));
        assert_eq!(marker.map(|t| t.line), Some(3));
    }

    #[test]
    fn allow_directives_are_collected_with_justification_state() {
        let src = "x(); // lint: allow(L-PANIC): held lock cannot be poisoned\n\
                   y(); // lint: allow(L-DET-HASH)\n\
                   z(); // lint: allow(L-CAST-TRUNC):\n";
        let out = lex(src);
        assert_eq!(out.allows.len(), 3);
        assert_eq!(out.allows[0].rule, "L-PANIC");
        assert!(out.allows[0].justified);
        assert_eq!(out.allows[0].line, 1);
        assert!(!out.allows[1].justified, "missing justification");
        assert!(!out.allows[2].justified, "empty justification");
    }
}
