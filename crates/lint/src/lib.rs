//! `eta-lint` — the workspace-wide static invariant checker.
//!
//! Every CI gate in this repository — byte-identical chaos reruns,
//! deterministic prof/serve/faults artifacts, panic-free library crates —
//! rests on invariants that were previously enforced only by convention
//! and by *dynamic* checks in the sanitizer (which only sees executed
//! paths). This crate checks them statically, on every line of every
//! kernel and library crate, executed or not.
//!
//! The pipeline: a comment/string/raw-string-aware [`lexer`], structural
//! [`regions`] (test items, function bodies, `WarpCtx` kernel scopes), a
//! token-pattern rule engine ([`rules`], seven rules — see
//! [`rules::RULES`]), the committed suppression [`baseline`]
//! (`lint.allow`), and deterministic text/JSON [`report`] sinks.
//!
//! Run it as `etagraph lint`, or regenerate the committed artifact with
//! `cargo run --release -p eta-bench --bin report -- lint --out reports`.
//! Suppress a single accepted site inline with a justified comment:
//!
//! ```text
//! let g = guard.lock().unwrap(); // lint: allow(L-PANIC): poisoning aborts anyway
//! ```

pub mod baseline;
pub mod lexer;
pub mod regions;
pub mod report;
pub mod rules;

pub use baseline::BaselineEntry;
pub use report::LintReport;
pub use rules::{FileClass, Finding, RuleMeta, RULES};

use std::path::{Path, PathBuf};

/// A lint *run* failure (I/O, malformed baseline) — distinct from findings,
/// which are data.
#[derive(Debug)]
pub struct LintError(pub String);

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

/// Lints a single source text as if it lived at `path` (workspace-relative,
/// forward slashes). Inline `lint: allow` directives are applied; the
/// baseline is not. Returns findings paired with their trimmed source
/// lines. This is the entry point fixtures and tests use.
pub fn lint_source(path: &str, text: &str) -> Vec<(Finding, String)> {
    let lexed = lexer::lex(text);
    let regs = regions::compute(&lexed.toks);
    let class = FileClass::of(path);
    let raw = rules::scan(path, class, &lexed.toks, &regs);
    let lines: Vec<&str> = text.lines().collect();
    let source_of = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let mut out = Vec::new();
    for f in raw {
        // A justified inline directive on the finding's line (or the line
        // above it) suppresses; an unjustified one does not.
        let allowed = lexed
            .allows
            .iter()
            .any(|a| a.justified && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line));
        if !allowed {
            let src = source_of(f.line);
            out.push((f, src));
        }
    }
    out
}

/// Counts how many findings in `text` were suppressed by justified inline
/// directives (for report accounting).
fn inline_allowed_count(path: &str, text: &str) -> usize {
    let lexed = lexer::lex(text);
    let regs = regions::compute(&lexed.toks);
    let class = FileClass::of(path);
    let raw = rules::scan(path, class, &lexed.toks, &regs);
    raw.iter()
        .filter(|f| {
            lexed.allows.iter().any(|a| {
                a.justified && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line)
            })
        })
        .count()
}

/// True for paths the workspace scan covers: Rust sources of the member
/// crates plus the root package's `src/`. Test/bench/example/fixture code
/// is exempt by design — the invariants protect shipped library code.
fn scannable(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    let exempt = ["/tests/", "/benches/", "/examples/", "/fixtures/"];
    if exempt.iter().any(|e| rel.contains(e)) {
        return false;
    }
    rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"))
}

/// Recursively collects scannable sources under `root`, sorted by relative
/// path so the report is deterministic.
fn collect_files(root: &Path) -> Result<Vec<(String, PathBuf)>, LintError> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) if !dir.exists() => continue,
            Err(e) => return Err(LintError(format!("reading {}: {e}", dir.display()))),
        };
        for entry in entries {
            let entry = entry.map_err(|e| LintError(format!("reading {}: {e}", dir.display())))?;
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if let Ok(rel) = p.strip_prefix(root) {
                let rel = rel.to_string_lossy().replace('\\', "/");
                if scannable(&rel) {
                    out.push((rel, p));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the whole workspace rooted at `root`, applying `lint.allow` when
/// present. The returned report is sorted and deterministic.
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    let baseline_path = root.join("lint.allow");
    let entries = if baseline_path.exists() {
        let content = std::fs::read_to_string(&baseline_path)
            .map_err(|e| LintError(format!("reading lint.allow: {e}")))?;
        baseline::parse(&content)
            .map_err(|e| LintError(format!("lint.allow line {}: {}", e.line, e.message)))?
    } else {
        Vec::new()
    };

    let files = collect_files(root)?;
    if files.is_empty() {
        // A gate that scanned nothing would pass vacuously — treat it as a
        // misconfigured root instead.
        return Err(LintError(format!(
            "no Rust sources found under {} — wrong root?",
            root.display()
        )));
    }
    let mut all: Vec<(Finding, String)> = Vec::new();
    let mut inline_allowed = 0usize;
    for (rel, abs) in &files {
        let text =
            std::fs::read_to_string(abs).map_err(|e| LintError(format!("reading {rel}: {e}")))?;
        inline_allowed += inline_allowed_count(rel, &text);
        all.extend(lint_source(rel, &text));
    }

    // Baseline application keys on the finding's trimmed source line.
    let sources: std::collections::BTreeMap<(String, u32, String), String> = all
        .iter()
        .map(|(f, s)| ((f.path.clone(), f.line, f.rule.to_string()), s.clone()))
        .collect();
    let findings: Vec<Finding> = all.into_iter().map(|(f, _)| f).collect();
    let applied = baseline::apply(findings, &entries, |f| {
        sources
            .get(&(f.path.clone(), f.line, f.rule.to_string()))
            .cloned()
            .unwrap_or_default()
    });

    let source_lines: Vec<String> = applied
        .new
        .iter()
        .map(|f| {
            sources
                .get(&(f.path.clone(), f.line, f.rule.to_string()))
                .cloned()
                .unwrap_or_default()
        })
        .collect();
    let mut report = LintReport {
        files_scanned: files.len(),
        findings: applied.new,
        baselined: applied.suppressed,
        inline_allowed,
        unjustified_allows: 0,
        stale_baseline: applied.stale,
        source_lines,
    };
    report.sort();
    Ok(report)
}

/// Ascends from `start` to the workspace root (the directory holding the
/// `crates/` tree). Lets `etagraph lint` work from any subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scannable_paths() {
        assert!(scannable("crates/core/src/kernels.rs"));
        assert!(scannable("crates/bench/src/bin/report.rs"));
        assert!(scannable("src/lib.rs"));
        assert!(!scannable("crates/lint/tests/fixtures/bad.rs"));
        assert!(!scannable("tests/serve.rs"));
        assert!(!scannable("crates/bench/benches/x.rs"));
        assert!(!scannable("crates/core/src/kernels.txt"));
        assert!(!scannable("vendor/serde/src/lib.rs"));
    }

    #[test]
    fn inline_allow_suppresses_only_with_justification() {
        let bad = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        assert_eq!(lint_source("crates/graph/src/io.rs", bad).len(), 1);
        let justified =
            "fn f(o: Option<u32>) -> u32 {\n    // lint: allow(L-PANIC): checked two lines up\n    o.unwrap()\n}";
        assert!(lint_source("crates/graph/src/io.rs", justified).is_empty());
        let trailing =
            "fn f(o: Option<u32>) -> u32 { o.unwrap() } // lint: allow(L-PANIC): bounded by caller";
        assert!(lint_source("crates/graph/src/io.rs", trailing).is_empty());
        let bare = "fn f(o: Option<u32>) -> u32 {\n    // lint: allow(L-PANIC)\n    o.unwrap()\n}";
        assert_eq!(
            lint_source("crates/graph/src/io.rs", bare).len(),
            1,
            "unjustified directives do not suppress"
        );
        let wrong_rule = "fn f(o: Option<u32>) -> u32 {\n    // lint: allow(L-DET-HASH): nope\n    o.unwrap()\n}";
        assert_eq!(lint_source("crates/graph/src/io.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn findings_carry_their_source_line() {
        let bad = "fn f(v: &[u32]) -> u32 {\n    v.len() as u32\n}";
        let hits = lint_source("crates/graph/src/csr.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "v.len() as u32");
        assert_eq!(hits[0].0.line, 2);
    }
}
