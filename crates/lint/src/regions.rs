//! Structural regions over the token stream: `#[cfg(test)]` / `#[test]`
//! items (excluded from every rule — tests may unwrap and hash freely) and
//! function bodies (needed by the span-pairing and kernel-accessor rules).

use crate::lexer::{Tok, TokKind};

/// A function found in the stream.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    pub name: String,
    /// Half-open token range of the body (inside the braces), when the
    /// function has one (trait method declarations do not).
    pub body: Option<(usize, usize)>,
    /// True when the parameter list mentions `WarpCtx` — the marker for
    /// simulated-kernel code, where the instrumented-accessor rule applies.
    pub has_warpctx: bool,
}

#[derive(Debug, Default)]
pub struct Regions {
    /// Half-open token ranges covered by test-only items.
    test_ranges: Vec<(usize, usize)>,
    pub fns: Vec<FnInfo>,
}

impl Regions {
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= idx && idx < b)
    }

    /// The innermost function body containing `idx`, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(a, b)| a <= idx && idx < b))
            .min_by_key(|f| {
                let (a, b) = f.body.unwrap_or((0, usize::MAX));
                b - a
            })
    }

    /// True when `idx` sits inside any function whose parameters mention
    /// `WarpCtx` (including helpers called with the warp context).
    pub fn in_kernel_fn(&self, idx: usize) -> bool {
        self.fns
            .iter()
            .any(|f| f.has_warpctx && f.body.is_some_and(|(a, b)| a <= idx && idx < b))
    }
}

/// Finds the token index just past the matching close for the open bracket
/// at `open` (which must be `(`, `[`, or `{`). Returns `toks.len()` when
/// unbalanced (truncated input).
fn match_close(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        _ => ('{', '}'),
    };
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
    }
    toks.len()
}

/// Computes test ranges and function infos for one file's tokens.
pub fn compute(toks: &[Tok]) -> Regions {
    let mut r = Regions::default();
    collect_test_ranges(toks, &mut r);
    collect_fns(toks, &mut r);
    r
}

fn collect_test_ranges(toks: &[Tok], r: &mut Regions) {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if !(toks[i].is_punct('#') && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_end = match_close(toks, i + 1);
        let idents: Vec<&str> = toks[i + 1..attr_end]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` mark the item
        // test-only; `#[cfg(not(test))]` is production code.
        let is_test_attr = idents == ["test"]
            || (idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"));
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = attr_end;
        while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
            j = match_close(toks, j + 1);
        }
        // The item runs to its body's closing brace, or to a top-level `;`
        // for brace-less items (`#[cfg(test)] use …;`).
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut end = toks.len();
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    ";" if paren == 0 && bracket == 0 => {
                        end = j + 1;
                        break;
                    }
                    "{" if paren == 0 && bracket == 0 => {
                        end = match_close(toks, j);
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        r.test_ranges.push((i, end));
        i = end;
    }
}

fn collect_fns(toks: &[Tok], r: &mut Regions) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn` inside a type like `Fn(u32)` lexes differently
        }
        // Find the parameter list's `(`: immediately after the name, or
        // after a generic parameter list. Generic bounds may themselves
        // contain `Fn(…)` parens, so walk with angle-depth tracking and
        // take the first `(` at angle depth 0. `->` inside generics would
        // miscount the `>`, so it is skipped as a pair.
        let mut j = i + 2;
        let mut angle = 0i32;
        let params_open = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('<') => angle += 1,
                Some(t) if t.is_punct('>') => {
                    if j > 0 && toks[j - 1].is_punct('-') {
                        // the `>` of `->`
                    } else {
                        angle -= 1;
                    }
                }
                Some(t) if t.is_punct('(') && angle <= 0 => break Some(j),
                Some(t) if (t.is_punct('{') || t.is_punct(';')) && angle <= 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(params_open) = params_open else {
            continue;
        };
        let params_end = match_close(toks, params_open);
        let has_warpctx = toks[params_open..params_end]
            .iter()
            .any(|t| t.is_ident("WarpCtx"));
        // Body: first `{` before a top-level `;` (return types can hold
        // `[u32; 4]`, so `;` only terminates at bracket depth 0).
        let mut k = params_end;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut body = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    ";" if paren == 0 && bracket == 0 => break,
                    "{" if paren == 0 && bracket == 0 => {
                        body = Some((k + 1, match_close(toks, k).saturating_sub(1)));
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        r.fns.push(FnInfo {
            start: i,
            line: toks[i].line,
            name: name_tok.text.clone(),
            body,
            has_warpctx,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions(src: &str) -> (Vec<Tok>, Regions) {
        let toks = lex(src).toks;
        let r = compute(&toks);
        (toks, r)
    }

    fn idx_of(toks: &[Tok], name: &str) -> usize {
        toks.iter().position(|t| t.is_ident(name)).expect("ident")
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn lib_code() { a(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn helper() { b(); }\n}\n\
                   fn more_lib() { c(); }";
        let (toks, r) = regions(src);
        assert!(!r.in_test(idx_of(&toks, "a")));
        assert!(r.in_test(idx_of(&toks, "b")));
        assert!(!r.in_test(idx_of(&toks, "c")));
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let src = "#[test]\nfn check() { x(); }\nfn prod() { y(); }";
        let (toks, r) = regions(src);
        assert!(r.in_test(idx_of(&toks, "x")));
        assert!(!r.in_test(idx_of(&toks, "y")));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nfn prod() { p(); }";
        let (toks, r) = regions(src);
        assert!(!r.in_test(idx_of(&toks, "p")));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() { q(); }";
        let (toks, r) = regions(src);
        assert!(r.in_test(idx_of(&toks, "HashMap")));
        assert!(!r.in_test(idx_of(&toks, "q")));
    }

    #[test]
    fn stacked_attributes_before_the_item_are_covered() {
        let src = "#[test]\n#[ignore]\nfn slow() { s(); }\nfn prod() { t(); }";
        let (toks, r) = regions(src);
        assert!(r.in_test(idx_of(&toks, "s")));
        assert!(!r.in_test(idx_of(&toks, "t")));
    }

    #[test]
    fn fn_bodies_and_warpctx_params_are_found() {
        let src = "impl K { fn run(&self, w: &mut WarpCtx<'_>) { body(); } }\n\
                   fn plain(x: u32) -> [u32; 4] { other(); [x; 4] }";
        let (toks, r) = regions(src);
        assert_eq!(r.fns.len(), 2);
        assert!(r.in_kernel_fn(idx_of(&toks, "body")));
        assert!(!r.in_kernel_fn(idx_of(&toks, "other")));
        let f = r.enclosing_fn(idx_of(&toks, "other")).expect("enclosing");
        assert_eq!(f.name, "plain");
    }

    #[test]
    fn generic_fn_with_fn_bound_parses() {
        let src = "fn apply<F: Fn(u32) -> u32>(f: F) { inner(); }";
        let (toks, r) = regions(src);
        assert_eq!(r.fns.len(), 1);
        let f = r.enclosing_fn(idx_of(&toks, "inner")).expect("enclosing");
        assert_eq!(f.name, "apply");
    }

    #[test]
    fn nested_fns_attribute_to_the_innermost() {
        let src = "fn outer() { fn inner() { deep(); } shallow(); }";
        let (toks, r) = regions(src);
        assert_eq!(
            r.enclosing_fn(idx_of(&toks, "deep")).map(|f| &*f.name),
            Some("inner")
        );
        assert_eq!(
            r.enclosing_fn(idx_of(&toks, "shallow")).map(|f| &*f.name),
            Some("outer")
        );
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn decl(&self) -> u32; }";
        let (_, r) = regions(src);
        assert_eq!(r.fns.len(), 1);
        assert!(r.fns[0].body.is_none());
    }
}
