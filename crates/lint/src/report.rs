//! Deterministic text and JSON rendering of a lint run.
//!
//! Both sinks are byte-identical across runs and platforms: findings are
//! sorted by (path, line, rule), paths use forward slashes, and the JSON is
//! hand-emitted (this crate is dependency-free) with escaped strings and no
//! floating-point values.

use crate::baseline::BaselineEntry;
use crate::rules::{Finding, RULES};

/// The outcome of linting a workspace, after baseline application.
#[derive(Debug, Default)]
pub struct LintReport {
    pub files_scanned: usize,
    /// Non-baselined findings — any entry here fails the gate.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `lint.allow`.
    pub baselined: usize,
    /// Findings suppressed by justified inline `lint: allow(...)` comments.
    pub inline_allowed: usize,
    /// Inline directives that lack a justification (these are findings in
    /// their own right and appear in `findings` as the rule they name).
    pub unjustified_allows: usize,
    /// Baseline entries that no longer match any source line.
    pub stale_baseline: Vec<BaselineEntry>,
    /// `finding → trimmed source line` resolved at scan time.
    pub source_lines: Vec<String>,
}

impl LintReport {
    /// Clean means: zero non-baselined findings *and* zero stale baseline
    /// entries. Both fail CI.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_baseline.is_empty()
    }

    /// Sorts findings (with their source lines) by (path, line, rule).
    pub fn sort(&mut self) {
        let mut pairs: Vec<(Finding, String)> = self
            .findings
            .drain(..)
            .zip(self.source_lines.drain(..))
            .collect();
        pairs.sort_by(|(a, _), (b, _)| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
        for (f, s) in pairs {
            self.findings.push(f);
            self.source_lines.push(s);
        }
        self.stale_baseline.sort();
    }

    pub fn text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "eta-lint: scanned {} files against {} rules\n",
            self.files_scanned,
            RULES.len()
        ));
        out.push_str(&format!(
            "findings: {} new, {} baselined, {} inline-allowed, {} stale baseline entr{}\n",
            self.findings.len(),
            self.baselined,
            self.inline_allowed,
            self.stale_baseline.len(),
            if self.stale_baseline.len() == 1 {
                "y"
            } else {
                "ies"
            },
        ));
        for (f, src) in self.findings.iter().zip(&self.source_lines) {
            out.push_str(&format!(
                "{} {}:{}: {}\n",
                f.rule, f.path, f.line, f.message
            ));
            if !src.is_empty() {
                out.push_str(&format!("    {src}\n"));
            }
        }
        for e in &self.stale_baseline {
            out.push_str(&format!(
                "STALE-BASELINE lint.allow entry matches no current finding: {}\n",
                e.display()
            ));
        }
        if self.is_clean() {
            out.push_str("clean: no non-baselined findings\n");
        }
        out
    }

    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"new\": {},\n", self.findings.len()));
        out.push_str(&format!("  \"baselined\": {},\n", self.baselined));
        out.push_str(&format!("  \"inline_allowed\": {},\n", self.inline_allowed));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"rules\": [\n");
        for (i, r) in RULES.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"summary\": {}}}{}\n",
                json_str(r.id),
                json_str(r.summary),
                if i + 1 < RULES.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"findings\": [\n");
        for (i, (f, src)) in self.findings.iter().zip(&self.source_lines).enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"source\": {}}}{}\n",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(&f.message),
                json_str(src),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"stale_baseline\": [\n");
        for (i, e) in self.stale_baseline.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"source\": {}}}{}\n",
                json_str(&e.rule),
                json_str(&e.path),
                json_str(&e.line_text),
                if i + 1 < self.stale_baseline.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_renders_clean() {
        let r = LintReport {
            files_scanned: 10,
            ..Default::default()
        };
        assert!(r.is_clean());
        assert!(r.text().contains("clean: no non-baselined findings"));
        assert!(r.json().contains("\"clean\": true"));
    }

    #[test]
    fn findings_render_sorted_and_escaped() {
        let mut r = LintReport {
            files_scanned: 1,
            findings: vec![
                Finding {
                    rule: "L-PANIC",
                    path: "b.rs".into(),
                    line: 2,
                    message: "say \"no\"".into(),
                },
                Finding {
                    rule: "L-DET-HASH",
                    path: "a.rs".into(),
                    line: 9,
                    message: "m".into(),
                },
            ],
            source_lines: vec!["x.unwrap();".into(), "HashMap::new();".into()],
            ..Default::default()
        };
        r.sort();
        assert!(!r.is_clean());
        assert_eq!(r.findings[0].path, "a.rs");
        assert_eq!(r.source_lines[0], "HashMap::new();");
        let json = r.json();
        assert!(json.contains("\\\"no\\\""));
        let text = r.text();
        assert!(text.contains("L-PANIC b.rs:2"));
    }

    #[test]
    fn stale_entries_fail_cleanliness() {
        let r = LintReport {
            files_scanned: 1,
            stale_baseline: vec![crate::baseline::BaselineEntry {
                rule: "L-PANIC".into(),
                path: "a.rs".into(),
                line_text: "gone".into(),
            }],
            ..Default::default()
        };
        assert!(!r.is_clean());
        assert!(r.text().contains("STALE-BASELINE"));
    }
}
