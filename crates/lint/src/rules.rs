//! The invariant catalogue: seven token-pattern rules over one file.
//!
//! Each rule protects a CI gate that is otherwise enforced only by
//! convention or by dynamic checks (see DESIGN.md's invariant catalogue for
//! the rule-by-rule rationale). Rules match on the lexed token stream, so
//! comments, strings, and test regions can never trigger them.

use crate::lexer::{Tok, TokKind};
use crate::regions::Regions;

/// One rule's identity, for reports and the catalogue.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    pub id: &'static str,
    pub summary: &'static str,
}

/// Every rule the engine knows, in report order.
pub const RULES: [RuleMeta; 7] = [
    RuleMeta {
        id: "L-DET-HASH",
        summary: "HashMap/HashSet in a report/sink/serve-output crate: iteration order is \
                  nondeterministic; use BTreeMap/BTreeSet or sort before emitting",
    },
    RuleMeta {
        id: "L-DET-TIME",
        summary: "std::time::Instant/SystemTime outside the allowlisted host-timing module: \
                  artifacts must be functions of the simulated clock only",
    },
    RuleMeta {
        id: "L-DET-RAND",
        summary: "thread_rng/RandomState/DefaultHasher: only the seeded SplitMix64 generators \
                  are allowed, so every run is replayable",
    },
    RuleMeta {
        id: "L-PANIC",
        summary: "unwrap/expect/panic! in non-test library code: route through the typed \
                  error ladders (QueryError/CkptError/EdgeListError/...) or justify inline",
    },
    RuleMeta {
        id: "L-KERNEL-RAW",
        summary: "raw (non-atomic) store to a cross-warp-visible buffer, or direct indexing \
                  of a device buffer, inside a kernel: use the instrumented atomic accessors",
    },
    RuleMeta {
        id: "L-CAST-TRUNC",
        summary: "lossy `as` cast of a length/count into a vertex-or-edge id width: use \
                  u32::try_from or justify why the value is bounded",
    },
    RuleMeta {
        id: "L-PROF-SPAN",
        summary: "profiler span begun but not ended on every path out of the function: \
                  unbalanced spans corrupt every downstream trace sink",
    },
];

/// A single violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    pub message: String,
}

/// Which rule families apply to a file, derived from its path. Test,
/// bench, example, and fixture sources are skipped before this is built.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Report/sink/serve-output crates, where map iteration feeds emitted
    /// bytes: `L-DET-HASH` applies.
    pub output_path: bool,
    /// Binary entry points (`src/bin/`, `src/main.rs`): exempt from
    /// `L-PANIC` (a CLI may abort on startup errors) but not from the
    /// determinism rules.
    pub is_bin: bool,
    /// Files holding simulated-kernel code: `L-KERNEL-RAW` applies.
    pub kernel_file: bool,
    /// The one module allowed to touch the host wall clock.
    pub time_allowlisted: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (forward slashes).
    pub fn of(path: &str) -> FileClass {
        const OUTPUT_CRATES: [&str; 4] = [
            "crates/serve/src/",
            "crates/prof/src/",
            "crates/bench/src/",
            "crates/cli/src/",
        ];
        const KERNEL_FILES: [&str; 4] = [
            "crates/core/src/kernels.rs",
            "crates/core/src/udc.rs",
            "crates/core/src/multi_bfs.rs",
            "crates/core/src/pagerank.rs",
        ];
        FileClass {
            output_path: OUTPUT_CRATES.iter().any(|p| path.starts_with(p)),
            is_bin: path.contains("/src/bin/") || path.ends_with("/src/main.rs"),
            kernel_file: KERNEL_FILES.contains(&path) || path.starts_with("crates/baselines/src/"),
            time_allowlisted: path == "crates/bench/src/hosttime.rs",
        }
    }
}

/// Buffers that other warps read or write concurrently within a launch;
/// a raw `store` to one of these is the static shape of the PR 1 pull-BFS
/// race (labels must go through the atomic accessors).
const SHARED_KERNEL_BUFFERS: [&str; 2] = ["labels", "tags"];

/// Device-buffer names that kernel code must never index directly — every
/// access goes through the instrumented `WarpCtx` load/store accessors so
/// the sanitizer and the coalescer see it.
const DEVICE_BUFFERS: [&str; 8] = [
    "labels",
    "tags",
    "col_idx",
    "row_offsets",
    "t_col_idx",
    "t_row_offsets",
    "weights",
    "ranks",
];

/// Runs every applicable rule over one file's tokens.
pub fn scan(path: &str, class: FileClass, toks: &[Tok], regions: &Regions) -> Vec<Finding> {
    let mut out = Vec::new();
    let mk = |rule: &'static str, line: u32, message: String| Finding {
        rule,
        path: path.to_string(),
        line,
        message,
    };

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || regions.in_test(i) {
            continue;
        }
        match t.text.as_str() {
            // --- L-DET-HASH -------------------------------------------------
            "HashMap" | "HashSet" if class.output_path => out.push(mk(
                "L-DET-HASH",
                t.line,
                format!(
                    "{} in an output-path crate: iteration order is nondeterministic; \
                     use BTreeMap/BTreeSet or sort before emitting",
                    t.text
                ),
            )),
            // --- L-DET-TIME -------------------------------------------------
            "Instant" | "SystemTime" if !class.time_allowlisted => out.push(mk(
                "L-DET-TIME",
                t.line,
                format!(
                    "std::time::{} reads the host wall clock; only eta_bench::hosttime may \
                     (artifacts are functions of the simulated clock)",
                    t.text
                ),
            )),
            // --- L-DET-RAND -------------------------------------------------
            "thread_rng" | "RandomState" | "DefaultHasher" => out.push(mk(
                "L-DET-RAND",
                t.line,
                format!(
                    "{} is nondeterministically seeded; use the workspace's seeded \
                     SplitMix64 generators",
                    t.text
                ),
            )),
            // --- L-PANIC ----------------------------------------------------
            "unwrap" | "expect"
                if !class.is_bin
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                out.push(mk(
                    "L-PANIC",
                    t.line,
                    format!(
                        ".{}() panics in library code; return the crate's typed error \
                         (or justify with `lint: allow(L-PANIC): why`)",
                        t.text
                    ),
                ));
            }
            "panic" if !class.is_bin && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
                out.push(mk(
                    "L-PANIC",
                    t.line,
                    "panic! in library code; return the crate's typed error \
                     (or justify with `lint: allow(L-PANIC): why`)"
                        .to_string(),
                ));
            }
            // --- L-KERNEL-RAW: raw store to a shared buffer -----------------
            "store"
                if class.kernel_file
                    && regions.in_kernel_fn(i)
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                if let Some(buf) = first_arg_shared_buffer(toks, i + 1) {
                    out.push(mk(
                        "L-KERNEL-RAW",
                        t.line,
                        format!(
                            "raw store to `{buf}`, which other warps access concurrently \
                             in this launch; use atomic_min/atomic_max/atomic_or (the \
                             PR 1 pull-BFS race, statically)"
                        ),
                    ));
                }
            }
            // --- L-KERNEL-RAW: direct device-buffer indexing ----------------
            name if class.kernel_file
                && regions.in_kernel_fn(i)
                && DEVICE_BUFFERS.contains(&name)
                && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) =>
            {
                out.push(mk(
                    "L-KERNEL-RAW",
                    t.line,
                    format!(
                        "direct indexing of device buffer `{name}` bypasses the \
                         instrumented accessors; use WarpCtx load/store"
                    ),
                ));
            }
            // --- L-CAST-TRUNC -----------------------------------------------
            "len" | "n" | "m"
                if toks.get(i + 1).is_some_and(|a| a.is_punct('('))
                    && toks.get(i + 2).is_some_and(|b| b.is_punct(')'))
                    && toks.get(i + 3).is_some_and(|c| c.is_ident("as"))
                    && toks.get(i + 4).is_some_and(|d| d.is_ident("u32")) =>
            {
                out.push(mk(
                    "L-CAST-TRUNC",
                    t.line,
                    format!(
                        "`{}() as u32` silently truncates above u32::MAX; use \
                         u32::try_from or justify the bound",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }

    scan_prof_spans(path, toks, regions, &mut out);
    out
}

/// For a `.store(` at `open_paren`, returns the shared-buffer name if the
/// *first argument* (tokens up to the first comma at call depth 1) mentions
/// one — that argument is the destination slice.
fn first_arg_shared_buffer(toks: &[Tok], open_paren: usize) -> Option<&'static str> {
    let mut depth = 0i32;
    for t in toks.iter().skip(open_paren) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return None;
                    }
                }
                "," if depth == 1 => return None,
                _ => {}
            }
        } else if t.kind == TokKind::Ident && depth >= 1 {
            if let Some(b) = SHARED_KERNEL_BUFFERS.iter().find(|b| t.text == **b) {
                return Some(b);
            }
        }
    }
    None
}

/// L-PROF-SPAN: within each function body, `.begin(Track::…)` must be
/// balanced by `.end(…)`/`.end_with_args(…)` — and no `?` or `return` may
/// execute while a span is open (the early exit would leak it). This is a
/// conservative syntactic check: code that closes spans on every path by
/// construction (RAII-style guards) trivially passes because it contains
/// no bare `begin`.
fn scan_prof_spans(path: &str, toks: &[Tok], regions: &Regions, out: &mut Vec<Finding>) {
    for f in &regions.fns {
        let Some((body_start, body_end)) = f.body else {
            continue;
        };
        if regions.in_test(f.start) {
            continue;
        }
        // Skip tokens of nested fns: they are scanned as their own entry.
        let nested: Vec<(usize, usize)> = regions
            .fns
            .iter()
            .filter(|g| g.start != f.start)
            .filter_map(|g| g.body)
            .filter(|&(a, b)| body_start <= a && b <= body_end)
            .collect();
        let mut open: Vec<u32> = Vec::new(); // lines of unmatched begins
        let mut i = body_start;
        while i < body_end {
            if let Some(&(_, skip_to)) = nested.iter().find(|&&(a, _)| a == i) {
                i = skip_to;
                continue;
            }
            let t = &toks[i];
            let begins_span = t.is_ident("begin")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("Track"));
            if begins_span {
                open.push(t.line);
            } else if (t.is_ident("end") || t.is_ident("end_with_args"))
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                open.pop();
            } else if !open.is_empty() && (t.is_punct('?') || t.is_ident("return")) {
                out.push(Finding {
                    rule: "L-PROF-SPAN",
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        "early exit from `{}` while the span begun on line {} is still \
                         open; close it (or restructure) so every path ends the span",
                        f.name,
                        open[open.len() - 1]
                    ),
                });
            }
            i += 1;
        }
        for line in open {
            out.push(Finding {
                rule: "L-PROF-SPAN",
                path: path.to_string(),
                line,
                message: format!(
                    "span begun here is never ended in `{}`; every begin(Track::…) \
                     needs a matching end on all paths",
                    f.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::regions;

    fn scan_src(path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let regs = regions::compute(&lexed.toks);
        scan(path, FileClass::of(path), &lexed.toks, &regs)
    }

    #[test]
    fn hash_rule_only_fires_in_output_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32,u32>; }";
        assert_eq!(scan_src("crates/serve/src/lib.rs", src).len(), 2);
        assert!(scan_src("crates/sim/src/sanitizer.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_skips_bins_and_unwrap_or() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }";
        assert!(scan_src("crates/graph/src/io.rs", src).is_empty());
        let bad = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        let hits = scan_src("crates/graph/src/io.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "L-PANIC");
        assert!(
            scan_src("crates/cli/src/main.rs", bad).is_empty(),
            "bins exempt"
        );
        assert!(scan_src("crates/bench/src/bin/report.rs", bad).is_empty());
    }

    #[test]
    fn kernel_raw_needs_warpctx_scope() {
        let bad = "impl K { fn run(&self, w: &mut WarpCtx<'_>) {\n\
                   w.store(self.labels, &tids, &levels, found);\n} }";
        let hits = scan_src("crates/core/src/kernels.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].rule, hits[0].line), ("L-KERNEL-RAW", 2));
        // The same store outside a kernel file or fn is not a finding.
        assert!(scan_src("crates/graph/src/csr.rs", bad).is_empty());
        let host = "fn host() { w.store(self.labels, &tids, &levels, found); }";
        assert!(scan_src("crates/core/src/kernels.rs", host).is_empty());
        // Stores to per-thread or claimed-slot buffers are fine.
        let ok = "impl K { fn run(&self, w: &mut WarpCtx<'_>) {\n\
                  w.store(self.next.items, &pos, &dst, push);\n} }";
        assert!(scan_src("crates/core/src/kernels.rs", ok).is_empty());
    }

    #[test]
    fn cast_trunc_matches_len_but_not_fields() {
        let bad = "fn f(v: &[u32]) -> u32 { v.len() as u32 }";
        assert_eq!(scan_src("crates/graph/src/csr.rs", bad).len(), 1);
        let field = "fn f(&self) -> u64 { self.len as u64 }";
        assert!(scan_src("crates/graph/src/csr.rs", field).is_empty());
        let widening = "fn f(v: &[u32]) -> u64 { v.len() as u64 }";
        assert!(scan_src("crates/graph/src/csr.rs", widening).is_empty());
    }

    #[test]
    fn prof_span_balance_and_early_exit() {
        let leaky = "fn f(p: &mut P) { p.begin(Track::Kernel, \"k\", 0); }";
        let hits = scan_src("crates/core/src/engine.rs", leaky);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "L-PROF-SPAN");
        let early = "fn f(p: &mut P) -> R { p.begin(Track::Kernel, \"k\", 0); \
                     let x = fallible()?; p.end(1); Ok(x) }";
        let hits = scan_src("crates/core/src/engine.rs", early);
        assert_eq!(hits.len(), 1, "the `?` leaks the span");
        let balanced = "fn f(p: &mut P) { p.begin(Track::Kernel, \"k\", 0); p.end(1); }";
        assert!(scan_src("crates/core/src/engine.rs", balanced).is_empty());
    }

    #[test]
    fn test_regions_are_exempt_everywhere() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); let t = Instant::now(); }\n}";
        assert!(scan_src("crates/graph/src/io.rs", src).is_empty());
    }
}
