//! Fixture tests: one seeded violation per rule, asserted down to the
//! exact (rule id, file, line) triple, plus a clean fixture that packs
//! every trigger word into positions the engine must ignore — and the
//! PR 1 pull-BFS regression, checked against the *real* kernel source.

use eta_lint::{lint_source, Finding};

fn lint_fixture(as_path: &str, fixture: &str) -> Vec<Finding> {
    lint_source(as_path, fixture)
        .into_iter()
        .map(|(f, _)| f)
        .collect()
}

/// Asserts the fixture produces exactly one finding, at the given triple.
fn assert_single(as_path: &str, fixture: &str, rule: &str, line: u32) {
    let hits = lint_fixture(as_path, fixture);
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {rule} finding in {as_path}, got {hits:#?}"
    );
    assert_eq!(hits[0].rule, rule);
    assert_eq!(hits[0].path, as_path);
    assert_eq!(hits[0].line, line, "wrong line for {rule}: {hits:#?}");
}

#[test]
fn det_hash_fixture() {
    assert_single(
        "crates/serve/src/lib.rs",
        include_str!("fixtures/det_hash.rs"),
        "L-DET-HASH",
        4,
    );
}

#[test]
fn det_time_fixture() {
    assert_single(
        "crates/prof/src/trace.rs",
        include_str!("fixtures/det_time.rs"),
        "L-DET-TIME",
        5,
    );
}

#[test]
fn det_time_is_allowed_only_in_hosttime() {
    let fixture = include_str!("fixtures/det_time.rs");
    assert!(
        lint_fixture("crates/bench/src/hosttime.rs", fixture).is_empty(),
        "the allowlisted host-timing module may read the wall clock"
    );
}

#[test]
fn det_rand_fixture() {
    assert_single(
        "crates/graph/src/generate.rs",
        include_str!("fixtures/det_rand.rs"),
        "L-DET-RAND",
        6,
    );
}

#[test]
fn panic_fixture() {
    let as_path = "crates/graph/src/io.rs";
    assert_single(as_path, include_str!("fixtures/panic.rs"), "L-PANIC", 6);
    // The same source under a binary path is exempt.
    assert!(lint_fixture("crates/cli/src/main.rs", include_str!("fixtures/panic.rs")).is_empty());
}

#[test]
fn kernel_raw_fixture() {
    let hits = lint_fixture(
        "crates/core/src/kernels.rs",
        include_str!("fixtures/kernel_raw.rs"),
    );
    assert!(hits.iter().all(|f| f.rule == "L-KERNEL-RAW"), "{hits:#?}");
    // Line 10: the raw store to `labels`. Line 13: direct indexing of
    // `row_offsets` (twice on that line).
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert!(
        lines.contains(&10),
        "missing the raw-store finding: {hits:#?}"
    );
    assert!(
        lines.contains(&13),
        "missing the direct-index finding: {hits:#?}"
    );
    // Outside the kernel file set, the same code is not a finding.
    assert!(lint_fixture(
        "crates/graph/src/csr.rs",
        include_str!("fixtures/kernel_raw.rs")
    )
    .is_empty());
}

#[test]
fn cast_trunc_fixture() {
    assert_single(
        "crates/graph/src/vst.rs",
        include_str!("fixtures/cast_trunc.rs"),
        "L-CAST-TRUNC",
        5,
    );
}

#[test]
fn prof_span_fixture() {
    assert_single(
        "crates/core/src/engine.rs",
        include_str!("fixtures/prof_span.rs"),
        "L-PROF-SPAN",
        7,
    );
}

#[test]
fn clean_fixture_has_zero_findings_everywhere() {
    let fixture = include_str!("fixtures/clean.rs");
    // Check under the strictest classifications: an output-path library
    // file, a kernel file, and a plain library file.
    for as_path in [
        "crates/serve/src/lib.rs",
        "crates/core/src/kernels.rs",
        "crates/graph/src/csr.rs",
    ] {
        let hits = lint_fixture(as_path, fixture);
        assert!(
            hits.is_empty(),
            "false positives under {as_path}: {hits:#?}"
        );
    }
}

/// The regression the rule exists for: take the kernel file as it is
/// committed today, swap the atomic pull-BFS label publish back to the
/// plain `store` that PR 1's sanitizer caught dynamically, and assert the
/// linter catches it statically.
#[test]
fn reintroducing_the_pull_bfs_raw_store_is_caught() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let kernels_path = manifest.join("../core/src/kernels.rs");
    let current = std::fs::read_to_string(&kernels_path).expect("kernels.rs exists");

    let atomic = "w.atomic_min(self.labels, &tids, &levels, found);";
    assert!(
        current.contains(atomic),
        "expected the atomic pull-BFS label publish in kernels.rs; \
         update this test if the kernel was refactored"
    );
    // Today's kernel source is clean.
    assert!(
        lint_fixture("crates/core/src/kernels.rs", &current).is_empty(),
        "committed kernels.rs must be lint-clean"
    );

    let regressed = current.replace(atomic, "w.store(self.labels, &tids, &levels, found);");
    let hits = lint_fixture("crates/core/src/kernels.rs", &regressed);
    assert!(
        hits.iter().any(|f| f.rule == "L-KERNEL-RAW"),
        "the re-introduced raw label store must be an L-KERNEL-RAW finding, got {hits:#?}"
    );
}
