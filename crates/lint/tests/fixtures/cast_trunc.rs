//! Seeded violation: lossy id-width cast (L-CAST-TRUNC).
//! The violation is on line 5.

pub fn vertex_count(col_idx: &[u32]) -> u32 {
    let n = col_idx.len() as u32;
    n.saturating_add(1)
}

pub fn widening_is_fine(col_idx: &[u32]) -> u64 {
    col_idx.len() as u64
}
