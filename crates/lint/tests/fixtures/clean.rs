//! A fixture with zero findings — every rule's trigger word appears here,
//! but only in positions the lexer and region tracker must ignore:
//! strings, raw strings, comments, test regions, and non-matching shapes.

// HashMap unwrap() Instant thread_rng — comment text never matches.

/* Nested /* block comments: w.store(self.labels, x) panic!("no") */ ok. */

pub const DOC: &str = "HashMap and SystemTime and labels[i] in a string";
pub const RAW: &str = r#"thread_rng() and .unwrap() stay "inside" here"#;
pub const RAW2: &str = r##"even a "# terminator: DefaultHasher"##;

pub fn lifetime_not_char<'a>(s: &'a str) -> &'a str {
    let _tick: char = 'x';
    let _escaped: char = '\'';
    s
}

pub fn fallible(v: &[u32]) -> Option<u32> {
    // unwrap_or / unwrap_or_else are not panics.
    Some(v.first().copied().unwrap_or(0))
}

pub fn widened(v: &[u32]) -> u64 {
    v.len() as u64
}

pub struct Meta {
    pub len: u32,
}

impl Meta {
    pub fn field_cast(&self) -> u64 {
        // A field named `len` is not a `len()` call.
        self.len as u64
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_do_anything() {
        let mut m = HashMap::new();
        m.insert("k", 1u32);
        assert_eq!(m.get("k").copied().unwrap(), 1);
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}
