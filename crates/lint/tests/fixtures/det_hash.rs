//! Seeded violation: HashMap in an output-path crate (L-DET-HASH).
//! The violation is on line 4 (the `use` line).

use std::collections::HashMap;

pub fn summarize(items: &[(String, u64)]) -> Vec<String> {
    let mut by_name: std::collections::BTreeMap<&str, u64> = Default::default();
    for (k, v) in items {
        *by_name.entry(k.as_str()).or_insert(0) += v;
    }
    by_name.iter().map(|(k, v)| format!("{k}={v}")).collect()
}
