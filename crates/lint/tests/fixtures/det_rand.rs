//! Seeded violation: nondeterministically seeded hasher (L-DET-RAND).
//! The violation is on line 6.

pub fn unstable_fingerprint(s: &str) -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    h.write(s.as_bytes());
    h.finish()
}
