//! Seeded violation: host wall clock outside the allowlisted module
//! (L-DET-TIME). The violation is on line 5.

pub fn stamp() -> u128 {
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}
