//! Seeded violations: raw kernel buffer access (L-KERNEL-RAW).
//!
//! Line 10 re-introduces the exact PR 1 pull-BFS bug: a plain `store` to
//! the cross-warp-visible `labels` buffer, which races when two warps
//! claim the same vertex in one iteration. Line 13 indexes a device
//! buffer directly, bypassing the instrumented accessors.

impl PullBfsKernel {
    fn run(&self, w: &mut WarpCtx<'_>, tids: &[u32], levels: &[u32], found: &[bool]) {
        w.store(self.labels, &tids, &levels, found);
        let mut degs = [0u32; 32];
        for (i, &t) in tids.iter().enumerate() {
            degs[i] = self.row_offsets[t as usize + 1] - self.row_offsets[t as usize];
        }
        let _ = degs;
    }
}
