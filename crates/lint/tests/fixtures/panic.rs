//! Seeded violation: unwrap in non-test library code (L-PANIC).
//! The violation is on line 6.

pub fn head(v: &[u32]) -> u32 {
    let first = v.first();
    *first.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::head(&[7]), 7);
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
