//! Seeded violation: profiler span leaked by an early exit (L-PROF-SPAN).
//! The `?` on line 7 can leave the span opened on line 6 unclosed.

pub fn traced_step(p: &mut Profiler, dev: &mut Device) -> Result<u32, SimError> {
    let t0 = dev.now();
    p.begin(Track::Kernel, "relax", t0);
    let processed = dev.launch()?;
    p.end(dev.now());
    Ok(processed)
}
