//! Per-SM access recording for the staged launch pipeline.
//!
//! The simulator's launch hot path used to probe the cache hierarchy inline
//! while each warp executed. To parallelize the per-SM work across host
//! threads *without changing a single output byte*, a launch is now split
//! into stages (see DESIGN.md "Host parallelism"):
//!
//! 1. **Record** (serial, canonical block-major order): warps execute
//!    functionally and append one [`AccessRec`] per global-memory
//!    instruction to their SM's [`SmQueue`], plus the SM index to a global
//!    order list.
//! 2. **Coalesce** ([`SmQueue::coalesce`], parallel per SM): raw lane word
//!    addresses become sorted, deduplicated 32-byte sector IDs.
//! 3. **Residency** (serial, canonical order):
//!    [`crate::system::MemSystem::resolve_access`] replays UM migrations and
//!    zero-copy classification in exactly the order the inline path ran
//!    them.
//! 4. **L1 drain** ([`drain_l1`], parallel per SM): each SM's private L1 is
//!    probed over its own queue; sectors that miss are staged as [`L2Work`].
//! 5. **L2/DRAM drain** (serial, canonical order): the shared L2 is probed
//!    by walking the global order list with per-SM cursors.
//!
//! Stages touching only per-SM state (2, 4) parallelize freely; stages
//! touching shared state (3, 5) replay the canonical order, so every
//! counter, span, and sanitizer finding is byte-identical to the
//! single-threaded run.
//!
//! All buffers are flat arenas (`Vec`s of plain data indexed by ranges), so
//! the parallel stages allocate nothing after the first launch warms the
//! capacity.

use crate::cache::Cache;
use crate::coalesce::sector_of_word;
use crate::system::RegionId;

/// What a recorded access does to the cache hierarchy. Loads allocate in
/// L1; stores and atomics are write-through L2-allocate (Pascal global
/// stores bypass L1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeOp {
    Load,
    Store,
    Atomic,
}

/// One recorded global-memory instruction: an address range in the queue's
/// `addrs` arena (filled at record time) and a sector range in its
/// `sectors` arena (filled by [`SmQueue::coalesce`]).
#[derive(Debug, Clone, Copy)]
pub struct AccessRec {
    pub region: RegionId,
    pub op: PipeOp,
    /// Burst (pipelined) issue: cache clocks advance by the access's own
    /// insertions instead of the interleave-multiplied amount.
    pub burst: bool,
    /// Whether the access's worst sector latency is charged as warp stall
    /// (loads and the first non-empty burst group; stores/atomics charge
    /// constant costs at record time instead).
    pub charge: bool,
    pub addr_start: usize,
    pub addr_len: usize,
    pub sec_start: usize,
    pub sec_len: usize,
}

/// An access whose sectors missed L1 (or bypass it) and must visit the
/// shared L2 in canonical order. `worst_c` carries the L1-stage latency
/// floor so the final stall charge is `max(worst_c, worst_l2_dram)`.
#[derive(Debug, Clone, Copy)]
pub struct L2Work {
    /// Index of the owning [`AccessRec`] in the queue.
    pub rec: usize,
    /// Range into the queue's `l2q_sectors` arena.
    pub sec_start: usize,
    pub sec_len: usize,
    pub worst_c: u64,
}

/// Latency constants the L1 drain stage needs (a plain-data subset of the
/// GPU config, so eta-mem does not depend on eta-sim).
#[derive(Debug, Clone, Copy)]
pub struct L1DrainParams {
    pub l1_latency: u64,
    pub zero_copy_latency: u64,
    /// Co-resident warps per SM: the L1 interleave factor for non-burst
    /// accesses.
    pub interleave: u64,
}

/// One SM's recorded accesses and the per-SM results of the parallel
/// stages. Cleared (capacity kept) at the start of every launch.
#[derive(Debug, Default)]
pub struct SmQueue {
    /// Raw active-lane word addresses, one range per [`AccessRec`].
    pub addrs: Vec<u64>,
    pub recs: Vec<AccessRec>,
    /// Coalesced sector IDs, one range per [`AccessRec`].
    pub sectors: Vec<u64>,
    /// Per-sector zero-copy flags, parallel to `sectors` (filled by the
    /// serial residency stage).
    pub zc: Vec<bool>,
    /// Accesses with L2-bound sectors, in record order.
    pub l2q: Vec<L2Work>,
    /// Sectors bound for the shared L2, one range per [`L2Work`].
    pub l2q_sectors: Vec<u64>,
    /// Stall cycles charged by the L1 stage (accesses that never reach L2).
    pub stall: u64,
    pub l1_requests: u64,
    pub l1_hits: u64,
    /// Per-access coalescing scratch, reused so stage 2 never allocates.
    scratch: Vec<u64>,
}

impl SmQueue {
    /// Empties every arena, keeping capacity for the next launch.
    pub fn clear(&mut self) {
        self.addrs.clear();
        self.recs.clear();
        self.sectors.clear();
        self.zc.clear();
        self.l2q.clear();
        self.l2q_sectors.clear();
        self.stall = 0;
        self.l1_requests = 0;
        self.l1_hits = 0;
    }

    /// Appends one access; `addr_start` marks where its addresses begin in
    /// `addrs` (the caller pushed them just before).
    pub fn commit(
        &mut self,
        region: RegionId,
        op: PipeOp,
        burst: bool,
        charge: bool,
        addr_start: usize,
    ) {
        self.recs.push(AccessRec {
            region,
            op,
            burst,
            charge,
            addr_start,
            addr_len: self.addrs.len() - addr_start,
            sec_start: 0,
            sec_len: 0,
        });
    }

    /// Stage 2: coalesces every access's raw addresses into sorted,
    /// deduplicated sector IDs — the same map the inline path ran through
    /// [`crate::coalesce::sectors_for_warp`] (normal accesses) or its
    /// sort+dedup of `addr / 8` (burst groups). Per-SM state only, so
    /// launches run one call per SM concurrently.
    pub fn coalesce(&mut self) {
        self.sectors.clear();
        for rec in &mut self.recs {
            self.scratch.clear();
            self.scratch.extend(
                self.addrs[rec.addr_start..rec.addr_start + rec.addr_len]
                    .iter()
                    .map(|&a| sector_of_word(a)),
            );
            self.scratch.sort_unstable();
            self.scratch.dedup();
            rec.sec_start = self.sectors.len();
            rec.sec_len = self.scratch.len();
            self.sectors.extend_from_slice(&self.scratch);
        }
        self.zc.clear();
        self.zc.resize(self.sectors.len(), false);
    }
}

/// Stage 4: replays one SM's queue against its private L1, exactly as the
/// inline path did — per access: zero-copy sectors skip the caches and
/// raise the latency floor; load sectors probe L1 and stage misses for L2;
/// store/atomic sectors bypass L1 entirely; then the L1 clock advances by
/// the access's insertions (interleave-multiplied unless burst).
///
/// Accesses with L2-bound sectors defer their stall charge to the serial
/// L2 drain (the final charge is `max(worst_c, worst_l2_dram)`); accesses
/// fully absorbed here charge `worst_c` into `queue.stall` directly.
pub fn drain_l1(queue: &mut SmQueue, l1: &mut Cache, p: &L1DrainParams) {
    for i in 0..queue.recs.len() {
        let rec = queue.recs[i];
        let mut worst_c = p.l1_latency;
        let mut l1_inserted = 0u64;
        let l2_start = queue.l2q_sectors.len();
        for k in rec.sec_start..rec.sec_start + rec.sec_len {
            let sec = queue.sectors[k];
            if queue.zc[k] {
                worst_c = worst_c.max(p.zero_copy_latency);
                continue;
            }
            match rec.op {
                PipeOp::Load => {
                    l1_inserted += 1;
                    queue.l1_requests += 1;
                    if l1.access(sec) {
                        queue.l1_hits += 1;
                    } else {
                        queue.l2q_sectors.push(sec);
                    }
                }
                PipeOp::Store | PipeOp::Atomic => {
                    queue.l2q_sectors.push(sec);
                }
            }
        }
        if rec.burst {
            l1.tick(l1_inserted);
        } else {
            l1.tick(p.interleave * l1_inserted);
        }
        let sec_len = queue.l2q_sectors.len() - l2_start;
        if sec_len > 0 {
            queue.l2q.push(L2Work {
                rec: i,
                sec_start: l2_start,
                sec_len,
                worst_c,
            });
        } else if rec.charge {
            queue.stall += worst_c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn queue_with(recs: &[(PipeOp, bool, bool, &[u64])]) -> SmQueue {
        let mut q = SmQueue::default();
        for &(op, burst, charge, addrs) in recs {
            let start = q.addrs.len();
            q.addrs.extend_from_slice(addrs);
            q.commit(0, op, burst, charge, start);
        }
        q.coalesce();
        q
    }

    #[test]
    fn coalesce_sorts_and_dedups_per_access() {
        let q = queue_with(&[
            (PipeOp::Load, false, true, &[80, 0, 80, 9, 8, 1, 200, 0]),
            (PipeOp::Store, false, false, &[17, 16]),
        ]);
        assert_eq!(q.recs[0].sec_len, 4);
        assert_eq!(&q.sectors[..4], &[0, 1, 10, 25]);
        assert_eq!(q.recs[1].sec_start, 4);
        assert_eq!(&q.sectors[4..], &[2]);
        assert_eq!(q.zc.len(), q.sectors.len());
    }

    #[test]
    fn drain_l1_splits_hits_from_l2_work() {
        let mut q = queue_with(&[
            (PipeOp::Load, false, true, &[0, 8]), // sectors 0, 1: cold misses
            (PipeOp::Load, false, true, &[0]),    // sector 0 again: L1 hit
            (PipeOp::Store, false, false, &[0]),  // stores bypass L1
        ]);
        let mut l1 = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 4,
            retention: 1024,
        });
        let p = L1DrainParams {
            l1_latency: 32,
            zero_copy_latency: 2_000,
            interleave: 2,
        };
        drain_l1(&mut q, &mut l1, &p);
        assert_eq!(q.l1_requests, 3);
        assert_eq!(q.l1_hits, 1);
        // Access 0 misses both sectors; access 1 hits and charges inline;
        // access 2 always stages its sector for L2.
        assert_eq!(q.l2q.len(), 2);
        assert_eq!((q.l2q[0].rec, q.l2q[0].sec_len), (0, 2));
        assert_eq!((q.l2q[1].rec, q.l2q[1].sec_len), (2, 1));
        assert_eq!(q.stall, 32, "the L1 hit charges its base latency");
    }

    #[test]
    fn zero_copy_sectors_skip_the_cache_and_raise_the_floor() {
        let mut q = queue_with(&[(PipeOp::Load, false, true, &[0, 8])]);
        q.zc[0] = true;
        q.zc[1] = true;
        let mut l1 = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 4,
            retention: 1024,
        });
        let p = L1DrainParams {
            l1_latency: 32,
            zero_copy_latency: 2_000,
            interleave: 2,
        };
        drain_l1(&mut q, &mut l1, &p);
        assert_eq!(q.l1_requests, 0);
        assert!(q.l2q.is_empty());
        assert_eq!(q.stall, 2_000);
        assert_eq!(l1.stats().accesses(), 0);
    }

    #[test]
    fn clear_keeps_capacity_and_zeroes_counters() {
        let mut q = queue_with(&[(PipeOp::Load, false, true, &[0, 8, 16])]);
        q.stall = 7;
        q.l1_requests = 3;
        let cap = q.addrs.capacity();
        q.clear();
        assert!(q.addrs.is_empty() && q.recs.is_empty() && q.sectors.is_empty());
        assert_eq!((q.stall, q.l1_requests, q.l1_hits), (0, 0, 0));
        assert_eq!(q.addrs.capacity(), cap);
    }
}
