//! Adaptive per-region transfer policy: demand paging, prefetch, or
//! zero-copy per page group, decided from observed access density.
//!
//! HyTGraph's observation (see PAPERS.md) is that no single transfer
//! backend dominates a traversal: dense, streaming regions want the 2 MiB
//! prefetch path, sparsely-touched regions want demand paging, and regions
//! where only a few cachelines of each page are ever read want zero-copy —
//! migrating a 4 KiB page to serve 32 B is the uk-2006 pathology. This
//! module tracks access density per *page group* (a fixed 64 KiB window of
//! a unified region) across iterations and re-decides each group's backend
//! at iteration boundaries.
//!
//! **Determinism.** Every input to a decision is itself deterministic: the
//! counters derive only from the sector streams the kernels emit, the
//! thresholds are constants, and groups are visited in address order. Two
//! runs of the same query therefore make byte-identical decisions, and —
//! because routing a read through a different backend never changes the
//! value read, only its timing — labels are byte-identical across all
//! backends (the property tests pin this).
//!
//! **Hysteresis.** A group only switches backend after its desired choice
//! has been stable for [`HYSTERESIS`] consecutive iterations, so one odd
//! frontier cannot flap a group between prefetch and zero-copy; flapping
//! would re-migrate the same pages every iteration.
//!
//! **Escalation.** Per-group decisions are reactive: by the time a group is
//! observed dense, its pages have already been demand-migrated, so a
//! group-local prefetch arrives too late to help a traversal that touches
//! each edge once. The region therefore *escalates* — every group,
//! including the untouched ones ahead of the frontier, switches to
//! prefetch at once — on either of two signals:
//!
//! * **Announced work** (forward-looking): frontier engines know the coming
//!   iteration's frontier before its kernels run, and pass its edge volume
//!   to [`AdaptiveRegion::tick`] as `upcoming_bytes`. When that volume is
//!   at least 1/[`ESCALATE_HINT_DIVISOR`]th of the region, the dense wave
//!   is about to break and the region escalates *before* it — this is
//!   HyTGraph's move of picking transfer routes from the active set rather
//!   than from the wreckage it leaves. On a power-law traversal the hint
//!   fires one iteration ahead of the bulk transfer, which is what lets
//!   the adaptive policy land on static prefetch's timing.
//! * **Observed density** (reactive backstop, for callers with no frontier
//!   to announce): at least [`ESCALATE_DENSE_GROUPS`] dense groups, dense
//!   groups a majority of the touched ones, for [`HYSTERESIS`] consecutive
//!   iterations.
//!
//! Escalation is terminal — the stream runs ahead of the traversal
//! (already-resident pages cost nothing to "re-prefetch"), and demoting a
//! resident group buys nothing — so a single forward-looking signal is
//! safe: there is no flapping to damp, which is why the hint needs no
//! hysteresis. A sparse traversal never produces either signal and keeps
//! its demand/zero-copy mix.

use crate::um::PAGE_BYTES;
use serde::Serialize;

/// Pages per decision group: 16 × 4 KiB = 64 KiB, small enough to separate
/// a power-law graph's hot core from its sparse tail, large enough that a
/// group prefetch amortizes the link setup latency.
pub const GROUP_PAGES: usize = 16;

/// Distinct pages of a group touched in one iteration at or above which the
/// group is dense: stream it with the prefetch backend.
pub const DENSE_PAGES: u32 = 10;

/// Bytes read per touched page (sector touches × 32 B, repeats included) at
/// or below which migration is waste: serve the group zero-copy. 512 B is
/// 1/8th of a page — below it, moving the page costs more wire time than
/// rereading the sectors ever will.
pub const SPARSE_BYTES_PER_PAGE: u64 = 512;

/// Consecutive iterations a group's desired backend must repeat before the
/// switch is applied.
pub const HYSTERESIS: u32 = 2;

/// Dense groups observed in one iteration at or above which (when they are
/// also the majority of touched groups) the iteration counts toward
/// region-wide prefetch escalation.
pub const ESCALATE_DENSE_GROUPS: usize = 4;

/// Announced-work escalation threshold: a coming iteration whose announced
/// read volume is at least `region_bytes / ESCALATE_HINT_DIVISOR` escalates
/// the region to prefetch before its kernels run. The announcement counts
/// edge *bytes*, but a frontier's reads scatter — a thousand adjacency
/// lists touch a thousand separate pages — so its page footprint (what
/// demand paging would actually migrate, in whole fault batches) runs an
/// order of magnitude past the announced volume: 1/32nd of the region in
/// edge bytes is the step before the region-sweeping wave. A sparse
/// traversal's frontiers announce hundreds of bytes against megabyte
/// regions, two orders below the threshold.
pub const ESCALATE_HINT_DIVISOR: u64 = 32;

/// The backend a page group is currently served by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TransferChoice {
    /// Fault-driven page migration (the UM default).
    Demand,
    /// Keep the group resident via range prefetch.
    Prefetch,
    /// No *new* residency: sectors on non-resident pages cross the link
    /// directly; pages already migrated keep serving locally until evicted.
    ZeroCopy,
}

impl TransferChoice {
    pub fn name(self) -> &'static str {
        match self {
            TransferChoice::Demand => "demand",
            TransferChoice::Prefetch => "prefetch",
            TransferChoice::ZeroCopy => "zerocopy",
        }
    }
}

/// One page group's density counters and decision state.
#[derive(Debug, Clone)]
struct GroupState {
    /// Sector touches this iteration (repeats included — repeats mean reuse,
    /// which favors residency).
    sectors: u64,
    /// Distinct pages of the group touched this iteration (bit per page).
    page_mask: u16,
    choice: TransferChoice,
    /// Last desired backend and how many consecutive iterations it repeated.
    target: TransferChoice,
    streak: u32,
}

impl GroupState {
    fn new() -> Self {
        GroupState {
            sectors: 0,
            page_mask: 0,
            choice: TransferChoice::Demand,
            target: TransferChoice::Demand,
            streak: 0,
        }
    }

    /// The backend this iteration's density asks for. An untouched group
    /// keeps its current backend — no evidence, no change.
    fn desired(&self) -> TransferChoice {
        let pages = self.page_mask.count_ones();
        if pages == 0 {
            return self.choice;
        }
        if pages >= DENSE_PAGES {
            return TransferChoice::Prefetch;
        }
        if self.sectors * 32 <= pages as u64 * SPARSE_BYTES_PER_PAGE {
            return TransferChoice::ZeroCopy;
        }
        TransferChoice::Demand
    }
}

/// One group's decision for the coming iteration, as applied by
/// [`crate::system::MemSystem::adaptive_tick`].
#[derive(Debug, Clone, Copy)]
pub struct GroupDecision {
    pub first_page: usize,
    /// Inclusive.
    pub last_page: usize,
    pub choice: TransferChoice,
    /// Whether the backend switched this tick.
    pub changed: bool,
}

/// Adaptive policy state for one unified region.
#[derive(Debug, Clone)]
pub struct AdaptiveRegion {
    /// The region's index in the UM driver (transitions go through it).
    pub um_index: usize,
    n_pages: usize,
    groups: Vec<GroupState>,
    /// Consecutive iterations whose observation was streaming-dominant.
    dense_streak: u32,
    escalated: bool,
}

impl AdaptiveRegion {
    pub fn new(um_index: usize, n_pages: usize) -> Self {
        let n_groups = n_pages.div_ceil(GROUP_PAGES).max(1);
        AdaptiveRegion {
            um_index,
            n_pages,
            groups: vec![GroupState::new(); n_groups],
            dense_streak: 0,
            escalated: false,
        }
    }

    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Records one sector touch on `page` (called per coalesced sector).
    #[inline]
    pub fn note_sector(&mut self, page: usize) {
        let g = &mut self.groups[page / GROUP_PAGES];
        g.sectors += 1;
        g.page_mask |= 1 << (page % GROUP_PAGES);
    }

    /// The backend currently serving `page`.
    #[inline]
    pub fn choice_for_page(&self, page: usize) -> TransferChoice {
        self.groups[page / GROUP_PAGES].choice
    }

    /// Whether the region has escalated to region-wide prefetch.
    pub fn is_escalated(&self) -> bool {
        self.escalated
    }

    /// Ends an iteration: folds this iteration's counters into each group's
    /// decision (with hysteresis), resets the counters, and returns the
    /// per-group decisions in address order. `upcoming_bytes` is the read
    /// volume the engine announces for the *coming* iteration (its
    /// frontier's out-edges in bytes; `0` when the caller has nothing to
    /// announce) — a volume of at least 1/[`ESCALATE_HINT_DIVISOR`]th of
    /// the region escalates it to region-wide prefetch before the wave, as
    /// does a streaming-dominant observation stable for [`HYSTERESIS`]
    /// iterations (see the module docs).
    pub fn tick(&mut self, upcoming_bytes: u64) -> Vec<GroupDecision> {
        // Escalation is terminal: the region is streaming-dominant, its
        // pages are (becoming) resident, and demoting a resident group buys
        // nothing. Keep emitting prefetch decisions so evicted groups heal.
        if self.escalated {
            let mut out = Vec::with_capacity(self.groups.len());
            for (gi, g) in self.groups.iter_mut().enumerate() {
                g.sectors = 0;
                g.page_mask = 0;
                let first_page = gi * GROUP_PAGES;
                out.push(GroupDecision {
                    first_page,
                    last_page: (first_page + GROUP_PAGES - 1).min(self.n_pages.saturating_sub(1)),
                    choice: g.choice,
                    changed: false,
                });
            }
            return out;
        }
        let region_bytes = self.n_pages as u64 * PAGE_BYTES;
        if upcoming_bytes.saturating_mul(ESCALATE_HINT_DIVISOR) >= region_bytes {
            return self.escalate_now();
        }
        {
            let touched = self.groups.iter().filter(|g| g.page_mask != 0).count();
            let dense = self
                .groups
                .iter()
                .filter(|g| g.page_mask.count_ones() >= DENSE_PAGES)
                .count();
            if dense >= ESCALATE_DENSE_GROUPS && dense * 2 >= touched {
                self.dense_streak += 1;
            } else {
                self.dense_streak = 0;
            }
            if self.dense_streak >= HYSTERESIS {
                return self.escalate_now();
            }
        }
        let mut out = Vec::with_capacity(self.groups.len());
        for (gi, g) in self.groups.iter_mut().enumerate() {
            let desired = g.desired();
            if desired == g.target {
                g.streak += 1;
            } else {
                g.target = desired;
                g.streak = 1;
            }
            let changed = g.streak >= HYSTERESIS && g.target != g.choice;
            if changed {
                g.choice = g.target;
            }
            g.sectors = 0;
            g.page_mask = 0;
            let first_page = gi * GROUP_PAGES;
            out.push(GroupDecision {
                first_page,
                last_page: (first_page + GROUP_PAGES - 1).min(self.n_pages.saturating_sub(1)),
                choice: g.choice,
                changed,
            });
        }
        out
    }

    /// Applies escalation: every group switches to prefetch, counters and
    /// streaks reset, and the region is marked escalated (terminal).
    fn escalate_now(&mut self) -> Vec<GroupDecision> {
        self.escalated = true;
        let mut out = Vec::with_capacity(self.groups.len());
        for (gi, g) in self.groups.iter_mut().enumerate() {
            let changed = g.choice != TransferChoice::Prefetch;
            g.choice = TransferChoice::Prefetch;
            g.target = TransferChoice::Prefetch;
            g.streak = 0;
            g.sectors = 0;
            g.page_mask = 0;
            let first_page = gi * GROUP_PAGES;
            out.push(GroupDecision {
                first_page,
                last_page: (first_page + GROUP_PAGES - 1).min(self.n_pages.saturating_sub(1)),
                choice: g.choice,
                changed,
            });
        }
        out
    }

    /// Group counts per backend `(demand, prefetch, zero_copy)` — the
    /// observable the transfer report and the property tests read.
    pub fn group_counts(&self) -> (u64, u64, u64) {
        let mut c = (0u64, 0u64, 0u64);
        for g in &self.groups {
            match g.choice {
                TransferChoice::Demand => c.0 += 1,
                TransferChoice::Prefetch => c.1 += 1,
                TransferChoice::ZeroCopy => c.2 += 1,
            }
        }
        c
    }

    /// The current per-group backend labels, for determinism checks.
    pub fn choices(&self) -> Vec<TransferChoice> {
        self.groups.iter().map(|g| g.choice).collect()
    }
}

/// Bytes of one page group (the last group of a region may be shorter).
pub fn group_bytes(first_page: usize, last_page: usize) -> u64 {
    (last_page - first_page + 1) as u64 * PAGE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touched(r: &mut AdaptiveRegion, page: usize, sectors: u64) {
        for _ in 0..sectors {
            r.note_sector(page);
        }
    }

    #[test]
    fn groups_start_on_demand() {
        let r = AdaptiveRegion::new(0, 64);
        assert_eq!(r.n_groups(), 4);
        assert_eq!(r.group_counts(), (4, 0, 0));
        assert_eq!(r.choice_for_page(0), TransferChoice::Demand);
    }

    #[test]
    fn dense_group_switches_to_prefetch_after_hysteresis() {
        let mut r = AdaptiveRegion::new(0, 32);
        for round in 0..HYSTERESIS {
            for p in 0..16 {
                touched(&mut r, p, 64); // dense: all 16 pages, heavy reuse
            }
            let d = r.tick(0);
            if round + 1 < HYSTERESIS {
                assert_eq!(d[0].choice, TransferChoice::Demand, "not yet");
                assert!(!d[0].changed);
            } else {
                assert_eq!(d[0].choice, TransferChoice::Prefetch);
                assert!(d[0].changed);
            }
        }
        // Group 1 was never touched: still demand.
        assert_eq!(r.choice_for_page(20), TransferChoice::Demand);
    }

    #[test]
    fn sparse_group_switches_to_zero_copy() {
        let mut r = AdaptiveRegion::new(0, 16);
        for _ in 0..HYSTERESIS {
            touched(&mut r, 3, 2); // 64 B read off one page
            r.tick(0);
        }
        assert_eq!(r.choice_for_page(3), TransferChoice::ZeroCopy);
    }

    #[test]
    fn medium_density_stays_demand() {
        let mut r = AdaptiveRegion::new(0, 16);
        for _ in 0..4 {
            // 4 of 16 pages, well above the zero-copy byte threshold.
            for p in 0..4 {
                touched(&mut r, p, 100);
            }
            r.tick(0);
        }
        assert_eq!(r.choice_for_page(0), TransferChoice::Demand);
    }

    #[test]
    fn one_odd_iteration_does_not_flap() {
        let mut r = AdaptiveRegion::new(0, 16);
        for _ in 0..HYSTERESIS {
            for p in 0..16 {
                touched(&mut r, p, 64);
            }
            r.tick(0);
        }
        assert_eq!(r.choice_for_page(0), TransferChoice::Prefetch);
        // One sparse iteration: desired flips, choice must not.
        touched(&mut r, 0, 1);
        let d = r.tick(0);
        assert_eq!(d[0].choice, TransferChoice::Prefetch);
        assert!(!d[0].changed);
    }

    #[test]
    fn untouched_iteration_keeps_choice() {
        let mut r = AdaptiveRegion::new(0, 16);
        for _ in 0..HYSTERESIS {
            for p in 0..16 {
                touched(&mut r, p, 64);
            }
            r.tick(0);
        }
        for _ in 0..5 {
            r.tick(0); // silence
        }
        assert_eq!(r.choice_for_page(0), TransferChoice::Prefetch);
    }

    #[test]
    fn streaming_dominant_region_escalates_to_full_prefetch() {
        // 8 groups: dense touches on 6 of them for HYSTERESIS iterations
        // escalate the whole region — including the untouched tail groups.
        let mut r = AdaptiveRegion::new(0, 8 * GROUP_PAGES);
        for round in 0..HYSTERESIS {
            for g in 0..6 {
                for p in 0..DENSE_PAGES as usize {
                    touched(&mut r, g * GROUP_PAGES + p, 8);
                }
            }
            let d = r.tick(0);
            if round + 1 < HYSTERESIS {
                assert!(!r.is_escalated());
                assert_eq!(d[7].choice, TransferChoice::Demand);
            }
        }
        assert!(r.is_escalated());
        assert_eq!(r.group_counts(), (0, 8, 0), "every group streams");
        assert_eq!(r.choice_for_page(7 * GROUP_PAGES), TransferChoice::Prefetch);
        // Escalation is terminal: a later sparse iteration demotes nothing,
        // and ticks keep emitting prefetch decisions so evicted groups heal.
        touched(&mut r, 0, 1);
        let d = r.tick(0);
        assert!(d.iter().all(|g| g.choice == TransferChoice::Prefetch));
        assert!(d.iter().all(|g| !g.changed));
    }

    #[test]
    fn announced_wave_escalates_before_it_breaks() {
        // A hint of 1/8th of the region escalates immediately — no touches,
        // no streak: the policy streams *ahead* of the announced wave.
        let mut r = AdaptiveRegion::new(0, 8 * GROUP_PAGES);
        let region_bytes = 8 * GROUP_PAGES as u64 * PAGE_BYTES;
        let d = r.tick(region_bytes / ESCALATE_HINT_DIVISOR);
        assert!(r.is_escalated());
        assert_eq!(r.group_counts(), (0, 8, 0));
        assert!(d.iter().all(|g| g.choice == TransferChoice::Prefetch));
        assert!(d.iter().all(|g| g.changed));
    }

    #[test]
    fn small_announcements_do_not_escalate() {
        // A sparse traversal's frontier (a few hundred edges) never reaches
        // the hint threshold; the per-group policy stays in charge.
        let mut r = AdaptiveRegion::new(0, 8 * GROUP_PAGES);
        let region_bytes = 8 * GROUP_PAGES as u64 * PAGE_BYTES;
        for _ in 0..6 {
            touched(&mut r, 3, 2);
            r.tick(region_bytes / ESCALATE_HINT_DIVISOR - 1);
        }
        assert!(!r.is_escalated());
        assert_eq!(r.choice_for_page(3), TransferChoice::ZeroCopy);
    }

    #[test]
    fn sparse_touches_do_not_escalate() {
        let mut r = AdaptiveRegion::new(0, 8 * GROUP_PAGES);
        for _ in 0..6 {
            // A couple of sectors on a couple of groups: never dense.
            touched(&mut r, 0, 2);
            touched(&mut r, 3 * GROUP_PAGES, 2);
            r.tick(0);
        }
        assert!(!r.is_escalated());
        assert_eq!(r.choice_for_page(7 * GROUP_PAGES), TransferChoice::Demand);
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut r = AdaptiveRegion::new(0, 64);
            for i in 0..6 {
                for p in 0..(8 + i * 7) {
                    touched(&mut r, p % 64, 3 + (p as u64 % 5));
                }
                r.tick(0);
            }
            r.choices()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn short_tail_group_bounds() {
        let r = AdaptiveRegion::new(0, 20); // 16 + 4 pages
        assert_eq!(r.n_groups(), 2);
        let mut r2 = AdaptiveRegion::new(0, 20);
        let d = r2.tick(0);
        assert_eq!(d[1].first_page, 16);
        assert_eq!(d[1].last_page, 19);
        assert_eq!(group_bytes(d[1].first_page, d[1].last_page), 4 * PAGE_BYTES);
    }
}
