//! Set-associative cache model with interleave-aware aging.
//!
//! # Why aging, not just LRU
//!
//! The simulator executes each warp to completion before the next one, but a
//! real SM interleaves tens of warps instruction by instruction. Running a
//! warp straight through would give it perfect temporal locality its hardware
//! counterpart never sees — and would erase the very effect Shared Memory
//! Prefetch exploits (keeping a vertex's neighbor sectors live across its K
//! loads).
//!
//! We recover interleaving pressure with a logical clock: every warp memory
//! instruction advances the owning cache's clock by the number of co-resident
//! warps (each of our instructions stands for that many device instructions
//! in the interleaved schedule, each inserting roughly one line). A cached
//! line older than the cache's `retention` (≈ its total line count) is
//! treated as evicted by that interleaved traffic. Burst accesses (SMP)
//! advance the clock by **one** per step instead, modelling the back-to-back
//! unrolled loads the paper generates — which is exactly why SMP preserves
//! sector reuse while the one-neighbor-at-a-time loop does not.

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line (sector) size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Logical-clock ticks after which an untouched line counts as evicted
    /// by interleaved traffic from other warps/SMs.
    pub retention: u64,
}

impl CacheConfig {
    /// Lines held by the whole cache.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.lines() as usize / self.ways).max(1)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    last_touch: u64,
    valid: bool,
}

const INVALID: Line = Line {
    tag: 0,
    last_touch: 0,
    valid: false,
};

/// A set-associative cache keyed by line (sector) ID.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    /// `sets * ways` lines, set-major.
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.ways >= 1, "cache needs at least one way");
        assert!(
            cfg.size_bytes >= cfg.line_bytes * cfg.ways as u64,
            "cache smaller than one set"
        );
        let sets = cfg.sets();
        Cache {
            cfg,
            sets,
            lines: vec![INVALID; sets * cfg.ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all contents (new kernel launch) without clearing stats.
    pub fn flush(&mut self) {
        self.lines.fill(INVALID);
    }

    /// Advances the interleaving clock by `ticks` logical instructions.
    pub fn tick(&mut self, ticks: u64) {
        self.clock += ticks;
    }

    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Probes the cache for `line_id` (a sector ID). Returns `true` on hit.
    ///
    /// On miss the line is installed, evicting the LRU way of its set. A
    /// resident line whose age exceeds `retention` counts as a miss: the
    /// interleaved traffic of co-resident warps is assumed to have evicted it.
    pub fn access(&mut self, line_id: u64) -> bool {
        let set = (line_id as usize) % self.sets;
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        let mut victim = 0usize;
        let mut victim_touch = u64::MAX;
        for (w, line) in ways.iter_mut().enumerate() {
            if line.valid && line.tag == line_id {
                let age = self.clock.saturating_sub(line.last_touch);
                line.last_touch = self.clock;
                if age <= self.cfg.retention {
                    self.stats.hits += 1;
                    return true;
                }
                // Aged out: treat as a miss but the refill reuses this way.
                self.stats.misses += 1;
                return false;
            }
            let touch = if line.valid { line.last_touch } else { 0 };
            if !line.valid {
                victim = w;
                victim_touch = 0;
            } else if touch < victim_touch {
                victim = w;
                victim_touch = touch;
            }
        }
        self.stats.misses += 1;
        ways[victim] = Line {
            tag: line_id,
            last_touch: self.clock,
            valid: true,
        };
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(retention: u64) -> Cache {
        // 8 lines total, 2-way, 4 sets.
        Cache::new(CacheConfig {
            size_bytes: 8 * 32,
            line_bytes: 32,
            ways: 2,
            retention,
        })
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = small_cache(u64::MAX);
        assert!(!c.access(5));
        assert!(c.access(5));
        assert!(c.access(5));
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small_cache(u64::MAX);
        for id in 0..4 {
            assert!(!c.access(id));
        }
        for id in 0..4 {
            assert!(c.access(id), "line {id} should still be resident");
        }
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache(u64::MAX);
        // ids 0, 4, 8 all map to set 0 in a 4-set cache (2 ways).
        c.access(0);
        c.tick(1);
        c.access(4);
        c.tick(1);
        c.access(8); // evicts 0 (LRU)
        c.tick(1);
        assert!(!c.access(0), "0 must have been evicted");
        assert!(c.access(8), "8 was just inserted");
    }

    #[test]
    fn aging_converts_hits_to_misses() {
        let mut c = small_cache(10);
        c.access(7);
        c.tick(5);
        assert!(c.access(7), "age 5 <= retention 10");
        c.tick(11);
        assert!(!c.access(7), "age 11 > retention 10 counts as evicted");
        // The refill renews the line.
        assert!(c.access(7));
    }

    #[test]
    fn stats_identity_holds() {
        let mut c = small_cache(4);
        let ids = [0u64, 1, 2, 9, 0, 0, 1, 17, 3, 3];
        for (i, &id) in ids.iter().enumerate() {
            c.access(id);
            if i % 2 == 0 {
                c.tick(3);
            }
        }
        assert_eq!(c.stats().accesses(), ids.len() as u64);
    }

    #[test]
    fn flush_invalidates_but_keeps_stats() {
        let mut c = small_cache(u64::MAX);
        c.access(1);
        c.access(1);
        let before = c.stats();
        c.flush();
        assert!(!c.access(1));
        assert_eq!(c.stats().hits, before.hits);
        assert_eq!(c.stats().misses, before.misses + 1);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = small_cache(u64::MAX);
        c.access(1);
        c.access(1);
        c.access(1);
        c.access(2);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
