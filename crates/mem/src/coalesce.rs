//! Warp memory coalescing.
//!
//! NVIDIA GPUs service a warp's global-memory instruction as a set of
//! 32-byte *sector* transactions: the 32 lane addresses are mapped to the
//! sectors they fall in, duplicates are merged, and one transaction is issued
//! per unique sector. A fully coalesced 4-byte load by 32 lanes therefore
//! needs 4 sectors (128 B), while a fully scattered one needs 32.
//!
//! The paper's Fig. 7 measures exactly this effect: Shared Memory Prefetch
//! roughly halves "global memory read transactions" because consecutive
//! neighbor IDs of one vertex share sectors and the burst keeps them live.

/// Size of one memory transaction (sector), in bytes.
pub const SECTOR_BYTES: u64 = 32;

/// Size of one device word, in bytes. All device payloads are `u32`.
pub const WORD_BYTES: u64 = 4;

/// Words per sector.
pub const WORDS_PER_SECTOR: u64 = SECTOR_BYTES / WORD_BYTES;

/// Maps a word address to its sector ID.
#[inline]
pub fn sector_of_word(word_addr: u64) -> u64 {
    word_addr / WORDS_PER_SECTOR
}

/// Computes the unique sectors touched by a warp's lane word-addresses.
///
/// `addrs[i]` is lane `i`'s word address; lane `i` participates iff bit `i`
/// of `mask` is set. The result is sorted and deduplicated; its length is the
/// number of memory transactions the instruction issues.
///
/// A warp has at most 32 lanes, so `addrs.len() <= 32` is part of the
/// contract (debug-asserted). In release builds extra entries are ignored —
/// the mask is only 32 bits wide, so lanes past 32 could never participate
/// anyway.
///
/// `scratch` is reused between calls to avoid per-instruction allocation —
/// this is the hottest function in the simulator.
pub fn sectors_for_warp(addrs: &[u64], mask: u32, scratch: &mut Vec<u64>) {
    debug_assert!(
        addrs.len() <= 32,
        "a warp has at most 32 lanes (got {} addresses)",
        addrs.len()
    );
    scratch.clear();
    for (lane, &a) in addrs.iter().take(32).enumerate() {
        if (mask >> lane) & 1 == 1 {
            scratch.push(sector_of_word(a));
        }
    }
    scratch.sort_unstable();
    scratch.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sectors(addrs: &[u64], mask: u32) -> Vec<u64> {
        let mut s = Vec::new();
        sectors_for_warp(addrs, mask, &mut s);
        s
    }

    #[test]
    fn fully_coalesced_warp_needs_four_sectors() {
        // 32 consecutive u32s = 128 bytes = 4 sectors.
        let addrs: Vec<u64> = (0..32).collect();
        assert_eq!(sectors(&addrs, u32::MAX).len(), 4);
    }

    #[test]
    fn fully_scattered_warp_needs_32_sectors() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 1024).collect();
        assert_eq!(sectors(&addrs, u32::MAX).len(), 32);
    }

    #[test]
    fn broadcast_needs_one_sector() {
        let addrs = vec![100u64; 32];
        assert_eq!(sectors(&addrs, u32::MAX).len(), 1);
    }

    #[test]
    fn mask_excludes_lanes() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 1024).collect();
        assert_eq!(sectors(&addrs, 0b1).len(), 1);
        assert_eq!(sectors(&addrs, 0b101).len(), 2);
        assert!(sectors(&addrs, 0).is_empty());
    }

    #[test]
    fn sector_boundaries_are_eight_words() {
        assert_eq!(sector_of_word(0), 0);
        assert_eq!(sector_of_word(7), 0);
        assert_eq!(sector_of_word(8), 1);
        assert_eq!(sector_of_word(15), 1);
        assert_eq!(sector_of_word(16), 2);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "at most 32 lanes"))]
    fn more_than_32_lanes_is_a_contract_violation() {
        // Debug builds reject the call outright; release builds ignore the
        // un-addressable extra lanes (the mask is only 32 bits wide).
        let addrs: Vec<u64> = (0..40).map(|i| i * 1024).collect();
        assert_eq!(sectors(&addrs, u32::MAX).len(), 32);
    }

    #[test]
    fn result_is_sorted_and_unique() {
        let addrs: Vec<u64> = vec![80, 0, 80, 9, 8, 1, 200, 0];
        let mut padded = addrs.clone();
        padded.resize(32, 0);
        let s = sectors(&padded, 0xFF);
        assert_eq!(s, vec![0, 1, 10, 25]);
    }
}
