//! `eta-mem` — the GPU memory-system substrate for the EtaGraph reproduction.
//!
//! The paper's evaluation hinges on memory-system behaviour: 32-byte sector
//! coalescing, L1/L2 cache reuse under warp interleaving, DRAM bandwidth
//! limits, and CUDA Unified Memory's page-fault-driven migration over PCIe.
//! This crate models each of those mechanisms explicitly:
//!
//! * [`system::MemSystem`] — a single device-visible address space of `u32`
//!   words with a bump allocator, explicit (cudaMalloc-style) regions,
//!   unified-memory regions and zero-copy regions.
//! * [`cache::Cache`] — set-associative cache with LRU replacement and
//!   *interleave-aware aging* (see the module docs) used for per-SM L1 and
//!   the device-wide L2.
//! * [`coalesce`] — groups a warp's 32 lane addresses into unique 32-byte
//!   sector transactions, exactly as the hardware coalescer does.
//! * [`pcie::PcieLink`] — a serially-occupied interconnect timeline used for
//!   explicit copies, UM page migrations and prefetch streams.
//! * [`um`] — page residency, contiguous-fault merging, 2 MiB prefetch
//!   chunks, and LRU eviction for oversubscription.
//! * [`peer::PeerFabric`] — NVLink-style device↔device links (one serially
//!   occupied link per device pair) used by the sharded engine's halo
//!   exchanges.
//! * [`adaptive`] — the HyTGraph-style per-page-group transfer policy:
//!   observes access density each iteration and serves every 64 KiB group
//!   of a unified region by demand paging, range prefetch, or zero-copy,
//!   with hysteresis so decisions are deterministic and byte-stable.
//!
//! The memory system also owns the [`eta_prof::Profiler`]: every PCIe copy
//! and UM migration/prefetch/eviction that lands on a timeline is mirrored
//! as a profile event (see PROFILING.md), so transfer/compute overlap is
//! visible per-span, not just as totals.
//!
//! All device payloads are `u32` words (vertex IDs, CSR offsets, labels,
//! weights); this matches the 4-byte-element access pattern the paper calls
//! out ("fine-grained memory access when reading neighbor vertex data,
//! usually stored in 4-byte format") and keeps the simulator safe-Rust-only.

pub mod access;
pub mod adaptive;
pub mod cache;
pub mod coalesce;
pub mod pcie;
pub mod peer;
pub mod system;
pub mod timeline;
pub mod um;

pub use access::{drain_l1, AccessRec, L1DrainParams, L2Work, PipeOp, SmQueue};
pub use adaptive::{AdaptiveRegion, GroupDecision, TransferChoice};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use coalesce::{sectors_for_warp, SECTOR_BYTES, WORD_BYTES};
pub use pcie::PcieLink;
pub use peer::{PeerFabric, PeerLink, PeerLinkCfg, PeerTransfer};
pub use system::{DSlice, MemError, MemSystem, RegionId, RegionKind};
pub use timeline::{Span, SpanKind, Timeline};
pub use um::PAGE_BYTES;

/// Simulation wall-clock time in nanoseconds.
pub type Ns = u64;
