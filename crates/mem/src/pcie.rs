//! PCIe interconnect model.
//!
//! The link is a serially-occupied resource: each transfer has a fixed setup
//! latency (driver + DMA launch) followed by `bytes / bandwidth` of wire
//! time, and transfers queue behind each other. That is all the fidelity the
//! paper's results need — its data-transfer findings are about *volume*
//! (space-efficient CSR transfers less), *granularity* (4 KiB faults vs 2 MiB
//! prefetch chunks amortize the setup latency very differently, Table V) and
//! *scheduling* (on-demand migration overlaps with compute, Fig. 4).

use crate::timeline::{Span, SpanKind, Timeline};
use crate::Ns;

/// Pageable-memory copies reach only a fraction of the pinned-memory wire
/// rate: `cudaMemcpy` from ordinary host allocations stages through a
/// pinned bounce buffer. UM migrations and prefetches are driver-managed
/// pinned transfers and run at full bandwidth — one of the reasons the
/// paper's Unified-Memory variants beat plain `cudaMalloc`+`cudaMemcpy`.
pub const PAGEABLE_FACTOR: f64 = 0.65;

/// A PCIe-like host↔device link.
#[derive(Debug, Clone)]
pub struct PcieLink {
    /// Effective bandwidth in bytes per nanosecond (= GB/s).
    bytes_per_ns: f64,
    /// Fixed per-transfer setup latency.
    latency_ns: Ns,
    /// Time at which the link becomes free.
    busy_until: Ns,
    /// Recorded transfer spans.
    pub timeline: Timeline,
    /// Total payload bytes moved (both directions).
    bytes_moved: u64,
    /// Degradation windows `(start, end, factor)`: a transfer *starting*
    /// inside `[start, end)` takes `factor`× its nominal wire time (link
    /// retraining, lane drop). Empty by default, so the untouched link is
    /// byte-identical to one that predates fault injection.
    slowdowns: Vec<(Ns, Ns, f64)>,
}

impl PcieLink {
    /// `bandwidth_gb_s` is in GB/s (1 GB/s == 1 byte/ns).
    pub fn new(bandwidth_gb_s: f64, latency_ns: Ns) -> Self {
        assert!(bandwidth_gb_s > 0.0);
        PcieLink {
            bytes_per_ns: bandwidth_gb_s,
            latency_ns,
            busy_until: 0,
            timeline: Timeline::new(),
            bytes_moved: 0,
            slowdowns: Vec::new(),
        }
    }

    /// Installs bandwidth-degradation windows (from a fault plan). Windows
    /// are configuration, not run state: [`Self::reset`] keeps them.
    pub fn set_slowdowns(&mut self, windows: Vec<(Ns, Ns, f64)>) {
        self.slowdowns = windows;
    }

    pub fn latency_ns(&self) -> Ns {
        self.latency_ns
    }

    pub fn bandwidth_gb_s(&self) -> f64 {
        self.bytes_per_ns
    }

    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    pub fn busy_until(&self) -> Ns {
        self.busy_until
    }

    /// Resets the link clock and recording (new experiment).
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.timeline.clear();
        self.bytes_moved = 0;
    }

    /// Pure wire time for `bytes` (no queueing, no latency).
    pub fn wire_time(&self, bytes: u64) -> Ns {
        (bytes as f64 / self.bytes_per_ns).ceil() as Ns
    }

    /// Schedules a transfer requested at `now`; returns `(start, end)`.
    ///
    /// The transfer starts when both the requester is ready (`now`) and the
    /// link is free, pays the setup latency, then streams the payload.
    pub fn transfer(&mut self, kind: SpanKind, bytes: u64, now: Ns) -> (Ns, Ns) {
        self.transfer_with_setup(kind, bytes, now, 0)
    }

    /// Like [`Self::transfer`] but with additional setup time, used for
    /// page-fault-triggered migrations whose driver-side service (fault
    /// reporting, TLB shootdown, page-table updates) far exceeds the DMA
    /// launch cost.
    pub fn transfer_with_setup(
        &mut self,
        kind: SpanKind,
        bytes: u64,
        now: Ns,
        extra_setup_ns: Ns,
    ) -> (Ns, Ns) {
        debug_assert!(kind.is_transfer(), "compute spans don't use the link");
        let start = now.max(self.busy_until);
        let mut wire = match kind {
            // Explicit copies of pageable host memory pay the staging tax.
            SpanKind::CopyH2D | SpanKind::CopyD2H => {
                (self.wire_time(bytes) as f64 / PAGEABLE_FACTOR).ceil() as Ns
            }
            _ => self.wire_time(bytes),
        };
        // Overlapping degradation windows compound multiplicatively. With no
        // matching window (the common case) `wire` is untouched, keeping the
        // empty-plan path byte-identical.
        for &(w_start, w_end, factor) in &self.slowdowns {
            if w_start <= start && start < w_end {
                wire = (wire as f64 * factor).ceil() as Ns;
            }
        }
        let end = start + self.latency_ns + extra_setup_ns + wire;
        self.busy_until = end;
        self.bytes_moved += bytes;
        self.timeline.push(Span {
            kind,
            start,
            end,
            bytes,
        });
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_bytes() {
        let link = PcieLink::new(12.0, 1000);
        assert_eq!(link.wire_time(12_000), 1000);
        assert_eq!(link.wire_time(0), 0);
    }

    #[test]
    fn transfers_queue_serially() {
        let mut link = PcieLink::new(1.0, 100);
        let (s1, e1) = link.transfer(SpanKind::Migration, 1000, 0);
        assert_eq!((s1, e1), (0, 1100));
        // Requested before the link frees — must queue.
        let (s2, e2) = link.transfer(SpanKind::Migration, 1000, 50);
        assert_eq!((s2, e2), (1100, 2200));
        // Requested after the link frees — starts immediately.
        let (s3, _) = link.transfer(SpanKind::Migration, 10, 5000);
        assert_eq!(s3, 5000);
    }

    #[test]
    fn small_transfers_pay_disproportionate_latency() {
        // The mechanism behind Table V: many 4 KiB faults vs few 2 MiB chunks.
        let mut link = PcieLink::new(12.0, 10_000);
        let n_pages = 512u64;
        let page = 4096u64;
        let mut now = 0;
        for _ in 0..n_pages {
            let (_, end) = link.transfer(SpanKind::Migration, page, now);
            now = end;
        }
        let faulting_total = now;

        let mut link2 = PcieLink::new(12.0, 10_000);
        let (_, chunk_end) = link2.transfer(SpanKind::Prefetch, n_pages * page, 0);
        assert!(
            faulting_total > 5 * chunk_end,
            "page-by-page ({faulting_total} ns) must be much slower than one chunk ({chunk_end} ns)"
        );
    }

    #[test]
    fn slowdown_windows_scale_wire_time_only_inside_the_window() {
        let mut link = PcieLink::new(1.0, 100);
        link.set_slowdowns(vec![(0, 1000, 3.0)]);
        // Starts at 0, inside the window: 100 latency + 3×1000 wire.
        let (_, e1) = link.transfer(SpanKind::Migration, 1000, 0);
        assert_eq!(e1, 3100);
        // Starts after the window closes: nominal timing.
        let (_, e2) = link.transfer(SpanKind::Migration, 1000, 5000);
        assert_eq!(e2, 5000 + 100 + 1000);
        // No windows installed: byte-identical to the nominal link.
        let mut plain = PcieLink::new(1.0, 100);
        let (_, e3) = plain.transfer(SpanKind::Migration, 1000, 0);
        assert_eq!(e3, 1100);
        // Reset keeps the windows (they are configuration).
        link.reset();
        let (_, e4) = link.transfer(SpanKind::Migration, 1000, 0);
        assert_eq!(e4, 3100);
    }

    #[test]
    fn bytes_accounting() {
        let mut link = PcieLink::new(2.0, 0);
        link.transfer(SpanKind::CopyH2D, 100, 0);
        link.transfer(SpanKind::CopyD2H, 50, 0);
        assert_eq!(link.bytes_moved(), 150);
        link.reset();
        assert_eq!(link.bytes_moved(), 0);
        assert_eq!(link.timeline.spans().len(), 0);
    }
}
