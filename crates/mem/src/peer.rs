//! NVLink-style peer-to-peer links between simulated devices.
//!
//! The single-device model prices one PCIe link per device ([`crate::pcie`]).
//! Sharded multi-device traversal (eta-shard) adds a second interconnect:
//! direct device↔device links over which the BSP engine exchanges halo
//! frontier/label updates each superstep. EMOGI's observation (PAPERS.md)
//! motivates modeling this explicitly — once the graph is partitioned, the
//! link, not the SM, is the resource that must be priced correctly.
//!
//! The model is deliberately the same shape as [`crate::pcie::PcieLink`]:
//! each unordered device pair owns one full-duplex-agnostic link with a
//! fixed per-transfer latency and a bandwidth in GB/s. Transfers on the
//! same link serialize (`busy_until`), which is the fabric-contention model:
//! two exchanges between the same pair queue behind each other, while
//! disjoint pairs proceed in parallel. Peer copies move pinned device
//! memory, so no pageable-staging penalty applies (unlike explicit PCIe
//! copies).
//!
//! Every transfer is recorded as a [`SpanKind::PeerCopy`] span on the
//! link's [`Timeline`]; the sharded engine mirrors those spans into
//! eta-prof on `Track::Peer`.

use crate::timeline::{Span, SpanKind, Timeline};
use crate::Ns;

/// Bandwidth/latency parameters for one peer link.
#[derive(Debug, Clone, Copy)]
pub struct PeerLinkCfg {
    /// Link bandwidth in GB/s (1 GB/s == 1 byte/ns).
    pub bandwidth_gb_s: f64,
    /// Fixed per-transfer setup latency in nanoseconds.
    pub latency_ns: Ns,
}

impl PeerLinkCfg {
    /// An NVLink 1.0-style brick: ~40 GB/s with a short setup latency —
    /// roughly 3× the modeled PCIe bandwidth at a quarter of its latency,
    /// matching the published NVLink-vs-PCIe ratios EMOGI reports.
    pub fn nvlink() -> Self {
        Self {
            bandwidth_gb_s: 40.0,
            latency_ns: 2_000,
        }
    }
}

impl Default for PeerLinkCfg {
    fn default() -> Self {
        Self::nvlink()
    }
}

/// One device↔device link: serially occupied, span-recorded.
#[derive(Debug, Clone)]
pub struct PeerLink {
    bytes_per_ns: f64,
    latency_ns: Ns,
    busy_until: Ns,
    bytes_moved: u64,
    pub timeline: Timeline,
}

impl PeerLink {
    fn new(cfg: PeerLinkCfg) -> Self {
        Self {
            bytes_per_ns: cfg.bandwidth_gb_s,
            latency_ns: cfg.latency_ns,
            busy_until: 0,
            bytes_moved: 0,
            timeline: Timeline::new(),
        }
    }

    /// Models one transfer of `bytes` requested at `now`; returns the
    /// `(start, end)` interval. Requests queue behind the link's previous
    /// occupancy — that serialization is the contention model.
    fn transfer(&mut self, bytes: u64, now: Ns) -> (Ns, Ns) {
        let start = now.max(self.busy_until);
        let wire = (bytes as f64 / self.bytes_per_ns).ceil() as Ns;
        let end = start + self.latency_ns + wire;
        self.busy_until = end;
        self.bytes_moved += bytes;
        self.timeline.push(Span {
            kind: SpanKind::PeerCopy,
            start,
            end,
            bytes,
        });
        (start, end)
    }

    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }
}

/// One recorded peer transfer with its endpoints, for profiler mirroring.
#[derive(Debug, Clone, Copy)]
pub struct PeerTransfer {
    pub from: u32,
    pub to: u32,
    pub bytes: u64,
    pub start: Ns,
    pub end: Ns,
}

/// The all-pairs peer fabric of a device group.
///
/// Holds one [`PeerLink`] per unordered device pair, created lazily on
/// first use so a fabric over N devices costs O(pairs actually exercised).
#[derive(Debug, Clone)]
pub struct PeerFabric {
    devices: u32,
    cfg: PeerLinkCfg,
    /// Keyed by `(min, max)` of the endpoint pair, kept sorted for
    /// deterministic iteration.
    links: Vec<((u32, u32), PeerLink)>,
    /// Every transfer in request order, with endpoints (links only record
    /// anonymous spans).
    log: Vec<PeerTransfer>,
}

impl PeerFabric {
    pub fn new(devices: u32, cfg: PeerLinkCfg) -> Self {
        Self {
            devices,
            cfg,
            links: Vec::new(),
            log: Vec::new(),
        }
    }

    /// A fabric with the default NVLink-style link parameters.
    pub fn nvlink(devices: u32) -> Self {
        Self::new(devices, PeerLinkCfg::nvlink())
    }

    pub fn devices(&self) -> u32 {
        self.devices
    }

    fn link_mut(&mut self, a: u32, b: u32) -> &mut PeerLink {
        let key = (a.min(b), a.max(b));
        match self.links.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => &mut self.links[i].1,
            Err(i) => {
                self.links.insert(i, (key, PeerLink::new(self.cfg)));
                &mut self.links[i].1
            }
        }
    }

    /// Models one `from → to` transfer of `bytes` requested at `now`;
    /// returns the `(start, end)` interval on the pair's link.
    pub fn transfer(&mut self, from: u32, to: u32, bytes: u64, now: Ns) -> (Ns, Ns) {
        debug_assert!(from < self.devices && to < self.devices && from != to);
        let (start, end) = self.link_mut(from, to).transfer(bytes, now);
        self.log.push(PeerTransfer {
            from,
            to,
            bytes,
            start,
            end,
        });
        (start, end)
    }

    /// Total bytes moved over every link.
    pub fn bytes_moved(&self) -> u64 {
        self.links.iter().map(|(_, l)| l.bytes_moved()).sum()
    }

    /// Every transfer in request order, with endpoints.
    pub fn log(&self) -> &[PeerTransfer] {
        &self.log
    }

    /// Transfers recorded since `mark` (a previous `log().len()`), for
    /// incremental profiler mirroring.
    pub fn log_since(&self, mark: usize) -> &[PeerTransfer] {
        &self.log[mark..]
    }

    /// The link for an unordered pair, if it has carried traffic.
    pub fn link(&self, a: u32, b: u32) -> Option<&PeerLink> {
        let key = (a.min(b), a.max(b));
        self.links
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &self.links[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_on_one_link_serialize() {
        let mut f = PeerFabric::new(
            2,
            PeerLinkCfg {
                bandwidth_gb_s: 1.0,
                latency_ns: 100,
            },
        );
        let (s1, e1) = f.transfer(0, 1, 1000, 0);
        assert_eq!((s1, e1), (0, 1100));
        // Second request at t=50 queues behind the first (contention), and
        // the reverse direction shares the same physical link.
        let (s2, e2) = f.transfer(1, 0, 1000, 50);
        assert_eq!((s2, e2), (1100, 2200));
        assert_eq!(f.bytes_moved(), 2000);
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let mut f = PeerFabric::nvlink(4);
        let (_, e1) = f.transfer(0, 1, 40_000, 0);
        let (s2, _) = f.transfer(2, 3, 40_000, 0);
        assert_eq!(s2, 0, "0-1 traffic must not delay the 2-3 link");
        assert!(e1 > 0);
        assert_eq!(f.log().len(), 2);
    }

    #[test]
    fn peer_copies_skip_the_pageable_penalty() {
        // 40 GB/s for 40_000 bytes is 1000 ns of wire time exactly; the
        // pageable staging factor (pcie.rs) must not apply to peer copies.
        let mut f = PeerFabric::new(
            2,
            PeerLinkCfg {
                bandwidth_gb_s: 40.0,
                latency_ns: 0,
            },
        );
        let (s, e) = f.transfer(0, 1, 40_000, 0);
        assert_eq!(e - s, 1000);
    }

    #[test]
    fn spans_record_peer_kind() {
        let mut f = PeerFabric::nvlink(2);
        f.transfer(0, 1, 64, 0);
        let link = f.link(1, 0).expect("link exists");
        assert_eq!(link.timeline.spans().len(), 1);
        assert_eq!(link.timeline.spans()[0].kind, SpanKind::PeerCopy);
        assert_eq!(link.timeline.spans()[0].bytes, 64);
    }
}
