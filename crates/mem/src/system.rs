//! The device-visible memory system: one word-addressed address space with
//! explicit, unified and zero-copy regions, plus the PCIe link and UM driver.
//!
//! Frameworks allocate through this facade; an explicit allocation that does
//! not fit in device memory fails with [`MemError::Oom`], which is how the
//! O.O.M entries of the paper's Table III are reproduced (each baseline's
//! *actual* footprint is allocated, not estimated). Unified allocations are
//! host-backed and never fail; their device residency is managed by
//! [`crate::um::UmDriver`].

use crate::adaptive::{AdaptiveRegion, GroupDecision, TransferChoice};
use crate::pcie::PcieLink;
use crate::timeline::{Span, SpanKind};
use crate::um::{UmDriver, UmRegion, PAGE_BYTES, PAGE_WORDS};
use crate::Ns;
use eta_fault::{DeviceFault, DeviceFaultState, FaultKind, FaultPlan};
use eta_prof::{ArgValue, Profiler, Track};
use std::collections::BTreeMap;

/// How a region behaves with respect to device residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// `cudaMalloc`-style: always resident, counts against capacity.
    Explicit,
    /// CUDA Unified Memory: host-backed, pages migrate on demand.
    Unified { um_index: usize },
    /// Pinned host memory mapped into the device: never resident, every
    /// access crosses the interconnect.
    ZeroCopy,
}

/// Identifies a region within a [`MemSystem`].
pub type RegionId = usize;

/// A typed (u32-element) device slice: the simulator's pointer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DSlice {
    pub region: RegionId,
    /// Global word offset of element 0.
    pub word_off: u64,
    /// Length in words.
    pub len: u64,
}

impl DSlice {
    /// Global word address of element `idx`.
    ///
    /// Always bounds-checked: a kernel indexing past its slice is a bug in
    /// the kernel's capacity math, and silently writing into the neighboring
    /// device allocation (what real out-of-bounds global accesses do) would
    /// corrupt results with no diagnostic. The check is one compare on a
    /// path that already does cache simulation per access.
    #[inline]
    pub fn addr(&self, idx: u64) -> u64 {
        assert!(
            idx < self.len,
            "device slice index {idx} out of bounds (len {})",
            self.len
        );
        self.word_off + idx
    }

    /// A sub-slice covering `start..start+len` elements.
    pub fn slice(&self, start: u64, len: u64) -> DSlice {
        assert!(start + len <= self.len, "sub-slice out of bounds");
        DSlice {
            region: self.region,
            word_off: self.word_off + start,
            len,
        }
    }

    pub fn bytes(&self) -> u64 {
        self.len * 4
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Device memory exhausted (the paper's "O.O.M").
    Oom {
        requested_bytes: u64,
        free_bytes: u64,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Oom {
                requested_bytes,
                free_bytes,
            } => write!(
                f,
                "out of device memory: requested {requested_bytes} B, {free_bytes} B free"
            ),
        }
    }
}

impl std::error::Error for MemError {}

#[derive(Debug, Clone)]
struct Region {
    kind: RegionKind,
    start_word: u64,
    len_words: u64,
}

/// Per-word initialization bitmap: the memcheck shadow state.
///
/// One bit per device word, grown lazily. A word becomes initialized when
/// the host writes it (`host_write`/`host_fill`/`copy_h2d`) or a kernel
/// stores to it (`set_word`); allocation alone does not initialize — the
/// backing `Vec` is zeroed, but reading that zero is exactly the bug class
/// `compute-sanitizer --tool initcheck` exists to catch.
#[derive(Debug, Default)]
struct InitShadow {
    bits: Vec<u64>,
}

impl InitShadow {
    #[inline]
    fn mark(&mut self, addr: u64) {
        let w = (addr / 64) as usize;
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        self.bits[w] |= 1 << (addr % 64);
    }

    fn mark_range(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len - 1;
        let last_word = (end / 64) as usize;
        if last_word >= self.bits.len() {
            self.bits.resize(last_word + 1, 0);
        }
        for addr in start..=end {
            self.bits[(addr / 64) as usize] |= 1 << (addr % 64);
        }
    }

    #[inline]
    fn is_init(&self, addr: u64) -> bool {
        let w = (addr / 64) as usize;
        w < self.bits.len() && (self.bits[w] >> (addr % 64)) & 1 == 1
    }
}

/// The device memory system.
#[derive(Debug)]
pub struct MemSystem {
    /// Backing store for every region (host and device see the same values;
    /// only *residency* is simulated).
    words: Vec<u32>,
    capacity_bytes: u64,
    explicit_used: u64,
    regions: Vec<Region>,
    pub pcie: PcieLink,
    pub um: UmDriver,
    /// Bytes accessed through zero-copy regions or adaptive zero-copy page
    /// groups (always cross the link).
    pub zero_copy_bytes: u64,
    /// Per-region adaptive transfer policy state; empty unless
    /// [`MemSystem::enable_adaptive`] was called, in which case unified
    /// accesses are partitioned between demand paging and zero-copy per
    /// page group. A `BTreeMap` so every policy walk is in region order —
    /// decisions must be deterministic.
    adaptive: BTreeMap<RegionId, AdaptiveRegion>,
    /// Memcheck shadow state; `None` unless a sanitizer enabled it.
    shadow: Option<InitShadow>,
    /// Event recorder shared by every layer above (disabled by default —
    /// `eta_sim::Device` enables it when its config asks for profiling).
    pub prof: Profiler,
    /// Fault-injection state (inert by default; see
    /// [`MemSystem::install_faults`] and eta-fault).
    pub faults: DeviceFaultState,
}

impl MemSystem {
    pub fn new(capacity_bytes: u64, pcie: PcieLink) -> Self {
        MemSystem {
            words: Vec::new(),
            capacity_bytes,
            explicit_used: 0,
            regions: Vec::new(),
            pcie,
            um: UmDriver::new(),
            zero_copy_bytes: 0,
            adaptive: BTreeMap::new(),
            shadow: None,
            prof: Profiler::off(),
            faults: DeviceFaultState::default(),
        }
    }

    /// Installs `plan`'s faults for device `device`: the per-device slice of
    /// ECC/UM/hang events lands in [`MemSystem::faults`], PCIe degradation
    /// windows install directly on the link. Installing an empty plan leaves
    /// every timing byte-identical to never having called this.
    pub fn install_faults(&mut self, plan: &FaultPlan, device: u32) {
        self.faults = DeviceFaultState::from_plan(plan, device);
        self.pcie.set_slowdowns(plan.pcie_windows(device));
    }

    /// Mirrors the link spans recorded since `mark` into the profiler. The
    /// PCIe timeline already has exactly the event granularity we want (one
    /// span per copy, per fault-group migration batch, per prefetch chunk,
    /// per eviction), so it is the single source of truth: diffing it here
    /// instruments every transfer path without touching `UmDriver`.
    fn prof_link_spans(&mut self, mark: usize) {
        if !self.prof.is_enabled() {
            return;
        }
        let spans: Vec<Span> = self.pcie.timeline.spans()[mark..].to_vec();
        for s in spans {
            let track = match s.kind {
                SpanKind::CopyH2D | SpanKind::CopyD2H => Track::Transfer,
                SpanKind::PeerCopy => Track::Peer,
                _ => Track::Um,
            };
            let mut args: Vec<(&'static str, ArgValue)> = vec![("bytes", s.bytes.into())];
            if matches!(s.kind, SpanKind::Migration | SpanKind::Prefetch) {
                args.push(("pages", s.bytes.div_ceil(PAGE_BYTES).into()));
            }
            self.prof.record(track, s.kind.name(), s.start, s.end, args);
        }
    }

    /// Turns on per-word initialization tracking. Call before any data is
    /// written: words written earlier are treated as uninitialized.
    pub fn enable_init_tracking(&mut self) {
        if self.shadow.is_none() {
            self.shadow = Some(InitShadow::default());
        }
    }

    pub fn init_tracking_enabled(&self) -> bool {
        self.shadow.is_some()
    }

    /// Whether `addr` has been written since tracking was enabled. Always
    /// `true` when tracking is off, so callers need no mode check.
    #[inline]
    pub fn is_word_init(&self, addr: u64) -> bool {
        match &self.shadow {
            Some(s) => s.is_init(addr),
            None => true,
        }
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    pub fn explicit_used_bytes(&self) -> u64 {
        self.explicit_used
    }

    /// Device bytes left for explicit allocations.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.explicit_used)
    }

    /// Device budget available to UM residency.
    pub fn um_budget_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.explicit_used)
    }

    fn bump(&mut self, len_words: u64, align_words: u64) -> u64 {
        let start = (self.words.len() as u64).div_ceil(align_words) * align_words;
        self.words.resize((start + len_words) as usize, 0);
        start
    }

    /// `cudaMalloc` analog: fails when the device is full.
    pub fn alloc_explicit(&mut self, len_words: u64) -> Result<DSlice, MemError> {
        let bytes = len_words * 4;
        if self.explicit_used + bytes > self.capacity_bytes {
            return Err(MemError::Oom {
                requested_bytes: bytes,
                free_bytes: self.free_bytes(),
            });
        }
        self.explicit_used += bytes;
        let start = self.bump(len_words, 8); // sector aligned
        self.regions.push(Region {
            kind: RegionKind::Explicit,
            start_word: start,
            len_words,
        });
        Ok(DSlice {
            region: self.regions.len() - 1,
            word_off: start,
            len: len_words,
        })
    }

    /// `cudaMallocManaged` analog: host-backed, page-aligned, never fails.
    pub fn alloc_unified(&mut self, len_words: u64) -> DSlice {
        let start = self.bump(len_words, PAGE_WORDS);
        let um_index = self.um.add_region(UmRegion::new(start, len_words));
        self.regions.push(Region {
            kind: RegionKind::Unified { um_index },
            start_word: start,
            len_words,
        });
        DSlice {
            region: self.regions.len() - 1,
            word_off: start,
            len: len_words,
        }
    }

    /// Pinned zero-copy host allocation mapped into the device.
    pub fn alloc_zero_copy(&mut self, len_words: u64) -> DSlice {
        let start = self.bump(len_words, 8);
        self.regions.push(Region {
            kind: RegionKind::ZeroCopy,
            start_word: start,
            len_words,
        });
        DSlice {
            region: self.regions.len() - 1,
            word_off: start,
            len: len_words,
        }
    }

    pub fn region_kind(&self, id: RegionId) -> RegionKind {
        self.regions[id].kind
    }

    /// Frees an explicit region's capacity (bump storage is not reclaimed —
    /// experiments construct a fresh `MemSystem` per run).
    pub fn free_explicit(&mut self, slice: DSlice) {
        if let RegionKind::Explicit = self.regions[slice.region].kind {
            self.explicit_used = self
                .explicit_used
                .saturating_sub(self.regions[slice.region].len_words * 4);
        }
    }

    /// Retires a unified region: drops its page residency so the bytes
    /// return to the UM budget. No-op for explicit and zero-copy regions
    /// (free those with [`MemSystem::free_explicit`]).
    pub fn invalidate_unified(&mut self, slice: DSlice) {
        if let RegionKind::Unified { um_index } = self.regions[slice.region].kind {
            self.um.invalidate_region(um_index);
        }
    }

    // ---- adaptive transfer policy ----------------------------------------

    /// Puts a unified region under the adaptive transfer policy: its page
    /// groups start on demand paging and migrate between demand, prefetch
    /// and zero-copy as [`MemSystem::adaptive_tick`] observes their access
    /// density. No-op for explicit and zero-copy regions.
    pub fn enable_adaptive(&mut self, slice: DSlice) {
        if let RegionKind::Unified { um_index } = self.regions[slice.region].kind {
            let n_pages = self.um.region(um_index).n_pages();
            self.adaptive
                .insert(slice.region, AdaptiveRegion::new(um_index, n_pages));
        }
    }

    pub fn region_is_adaptive(&self, region: RegionId) -> bool {
        self.adaptive.contains_key(&region)
    }

    /// Whether an access to `sector` of `region` is currently served
    /// zero-copy (the warp model charges per-sector link latency for these
    /// instead of consulting the cache hierarchy). Only non-resident pages
    /// of a zero-copy group route over the link: pages migrated before the
    /// group switched keep serving locally until evicted.
    pub fn sector_zero_copy(&self, region: RegionId, sector: u64) -> bool {
        match self.adaptive.get(&region) {
            Some(ar) => {
                let start_word = self.regions[region].start_word;
                let p = ((sector * 8).saturating_sub(start_word) / PAGE_WORDS) as usize;
                ar.choice_for_page(p) == TransferChoice::ZeroCopy
                    && !self.um.region(ar.um_index).page_resident(p)
            }
            None => false,
        }
    }

    /// Group counts `(demand, prefetch, zero_copy)` for an adaptive region,
    /// or `None` if the region is not adaptive. Read by the transfer report.
    pub fn adaptive_group_counts(&self, region: RegionId) -> Option<(u64, u64, u64)> {
        self.adaptive.get(&region).map(|ar| ar.group_counts())
    }

    /// Device-wide adaptive totals `(demand, prefetch, zero_copy,
    /// escalated_regions)` summed over every adaptive region; `None` when
    /// the policy is not in use. The transfer report prints these so the
    /// decision mix behind each timing is visible.
    pub fn adaptive_totals(&self) -> Option<(u64, u64, u64, u64)> {
        if self.adaptive.is_empty() {
            return None;
        }
        let mut t = (0u64, 0u64, 0u64, 0u64);
        for ar in self.adaptive.values() {
            let (d, p, z) = ar.group_counts();
            t.0 += d;
            t.1 += p;
            t.2 += z;
            t.3 += u64::from(ar.is_escalated());
        }
        Some(t)
    }

    /// Iteration boundary for the adaptive policy: folds this iteration's
    /// density observations into per-group backend decisions (with
    /// hysteresis) and applies the transitions — prefetch groups are
    /// (re)streamed, zero-copy groups simply stop acquiring residency (their
    /// already-migrated pages keep serving locally until the LRU reclaims
    /// them). `upcoming_bytes` is the engine's announcement of the coming
    /// iteration's read volume (its frontier's out-edges in bytes, `0` when
    /// unknown) — a large announcement escalates regions to streaming
    /// before the wave (see [`crate::adaptive`]). Returns the completion
    /// time of the latest transfer issued, `now` when nothing moved. With
    /// no adaptive regions this is a no-op, byte-identical to not calling
    /// it.
    pub fn adaptive_tick(&mut self, now: Ns, upcoming_bytes: u64) -> Ns {
        if self.adaptive.is_empty() {
            return now;
        }
        let budget = self.capacity_bytes.saturating_sub(self.explicit_used);
        let mut end = now;
        // Decisions are collected first: applying them borrows `self.um`
        // and `self.pcie`, which the policy map borrow would otherwise pin.
        let ticked: Vec<(usize, Vec<GroupDecision>)> = self
            .adaptive
            .values_mut()
            .map(|ar| (ar.um_index, ar.tick(upcoming_bytes)))
            .collect();
        for (um_index, decisions) in ticked {
            // Adjacent prefetch groups coalesce into maximal page runs, so
            // an escalated region streams like `cudaMemPrefetchAsync`
            // (2 MiB chunks) instead of one transfer per 64 KiB group.
            // Demand and zero-copy decisions need no device work: demand
            // groups fault as before, zero-copy groups stop acquiring
            // residency from here on.
            let mut runs: Vec<(usize, usize)> = Vec::new();
            for d in decisions {
                if d.choice == TransferChoice::Prefetch {
                    match runs.last_mut() {
                        Some((_, last)) if *last + 1 == d.first_page => *last = d.last_page,
                        _ => runs.push((d.first_page, d.last_page)),
                    }
                }
            }
            for (first_page, last_page) in runs {
                // Called every tick: a fully resident run costs nothing
                // (no span), an evicted group inside it is healed.
                let mark = self.pcie.timeline.spans().len();
                let e = self.um.prefetch_range(
                    um_index,
                    first_page,
                    last_page,
                    now,
                    budget,
                    &mut self.pcie,
                );
                self.prof_link_spans(mark);
                end = end.max(e);
            }
        }
        end
    }

    /// Records one kernel launch's aggregate zero-copy traffic as a
    /// [`SpanKind::ZeroCopyRead`] span on the link: zero-copy reads are not
    /// free bandwidth — they occupy the same interconnect as migrations, at
    /// full wire rate (no pageable staging, no fault service). Returns the
    /// span's end time; `now` when no bytes moved.
    pub fn charge_zero_copy(&mut self, bytes: u64, now: Ns) -> Ns {
        if bytes == 0 {
            return now;
        }
        let mark = self.pcie.timeline.spans().len();
        let (_, end) = self.pcie.transfer(SpanKind::ZeroCopyRead, bytes, now);
        self.prof_link_spans(mark);
        end
    }

    // ---- host-side data access (no timing) -------------------------------

    /// Host write without transfer cost (dataset construction before timing).
    pub fn host_write(&mut self, slice: DSlice, offset: u64, data: &[u32]) {
        assert!(offset + data.len() as u64 <= slice.len, "host_write OOB");
        let start = (slice.word_off + offset) as usize;
        self.words[start..start + data.len()].copy_from_slice(data);
        if let Some(shadow) = &mut self.shadow {
            shadow.mark_range(slice.word_off + offset, data.len() as u64);
        }
    }

    pub fn host_read(&self, slice: DSlice, offset: u64, len: u64) -> &[u32] {
        assert!(offset + len <= slice.len, "host_read OOB");
        let start = (slice.word_off + offset) as usize;
        &self.words[start..start + len as usize]
    }

    /// Host fill (label initialization etc.), no transfer cost.
    pub fn host_fill(&mut self, slice: DSlice, value: u32) {
        let start = slice.word_off as usize;
        self.words[start..start + slice.len as usize].fill(value);
        if let Some(shadow) = &mut self.shadow {
            shadow.mark_range(slice.word_off, slice.len);
        }
    }

    // ---- timed transfers ---------------------------------------------------

    /// Explicit host→device copy: writes the data and occupies the link.
    pub fn copy_h2d(&mut self, slice: DSlice, offset: u64, data: &[u32], now: Ns) -> Ns {
        self.host_write(slice, offset, data);
        let mark = self.pcie.timeline.spans().len();
        let (_, end) = self
            .pcie
            .transfer(SpanKind::CopyH2D, data.len() as u64 * 4, now);
        self.prof_link_spans(mark);
        end
    }

    /// Explicit device→host copy of `len` words (results readback).
    pub fn copy_d2h(&mut self, _slice: DSlice, len: u64, now: Ns) -> Ns {
        let mark = self.pcie.timeline.spans().len();
        let (_, end) = self.pcie.transfer(SpanKind::CopyD2H, len * 4, now);
        self.prof_link_spans(mark);
        end
    }

    /// `cudaMemPrefetchAsync` analog for a unified region.
    pub fn prefetch(&mut self, slice: DSlice, now: Ns) -> Ns {
        match self.regions[slice.region].kind {
            RegionKind::Unified { um_index } => {
                let budget = self.capacity_bytes.saturating_sub(self.explicit_used);
                let mark = self.pcie.timeline.spans().len();
                let end = self.um.prefetch(um_index, now, budget, &mut self.pcie);
                self.prof_link_spans(mark);
                end
            }
            _ => now,
        }
    }

    // ---- kernel access path ------------------------------------------------

    /// Raw word load (functional value).
    #[inline]
    pub fn word(&self, addr: u64) -> u32 {
        self.words[addr as usize]
    }

    /// Raw word store (functional value).
    #[inline]
    pub fn set_word(&mut self, addr: u64, value: u32) {
        self.words[addr as usize] = value;
        if let Some(shadow) = &mut self.shadow {
            shadow.mark(addr);
        }
    }

    /// Residency handling for a warp access: given the unique sectors the
    /// coalescer produced for `region`, migrate any missing UM pages and
    /// return the latest data-arrival time (`now` when all resident).
    ///
    /// Zero-copy accesses return `now` but count their traffic; the caller
    /// charges per-sector link latency instead.
    pub fn ensure_resident(&mut self, region: RegionId, sectors: &[u64], now: Ns) -> Ns {
        match self.regions[region].kind {
            RegionKind::Explicit => now,
            RegionKind::ZeroCopy => {
                self.zero_copy_bytes += sectors.len() as u64 * 32;
                now
            }
            RegionKind::Unified { um_index } => {
                let start_word = self.regions[region].start_word;
                // sectors are sorted; map to sorted page indices. Under the
                // adaptive policy, sectors landing in zero-copy groups skip
                // page migration entirely: they are counted as zero-copy
                // traffic (the launch charges them as one ZeroCopyRead span)
                // while every sector still feeds the density estimator.
                let mut pages: Vec<usize> = Vec::with_capacity(sectors.len());
                let mut zc_sectors = 0u64;
                if let Some(ar) = self.adaptive.get_mut(&region) {
                    let um_region = self.um.region(ar.um_index);
                    for &s in sectors {
                        let p = ((s * 8).saturating_sub(start_word) / PAGE_WORDS) as usize;
                        ar.note_sector(p);
                        if ar.choice_for_page(p) == TransferChoice::ZeroCopy
                            && !um_region.page_resident(p)
                        {
                            zc_sectors += 1;
                        } else {
                            pages.push(p);
                        }
                    }
                    self.zero_copy_bytes += zc_sectors * 32;
                } else {
                    pages.extend(
                        sectors
                            .iter()
                            .map(|&s| ((s * 8).saturating_sub(start_word) / PAGE_WORDS) as usize),
                    );
                }
                pages.dedup();
                if pages.is_empty() && zc_sectors > 0 {
                    // Whole access served zero-copy: no residency work.
                    return now;
                }
                let budget = self.capacity_bytes.saturating_sub(self.explicit_used);
                let mark = self.pcie.timeline.spans().len();
                let mut end = self
                    .um
                    .touch_pages(um_index, &pages, now, budget, &mut self.pcie);
                self.prof_link_spans(mark);
                // Fault injection applies to *demand* migrations only (a
                // prefetch is driver-paced and retries internally). A touch
                // that migrated nothing stays untouched, so the no-fault
                // timing path is byte-identical.
                if self.faults.active
                    && self.pcie.timeline.spans()[mark..]
                        .iter()
                        .any(|s| s.kind == SpanKind::Migration)
                {
                    let extra = self.faults.storm_extra(now);
                    if extra > 0 {
                        self.faults.counters.storms += 1;
                        end += extra;
                        self.prof.instant(
                            Track::Fault,
                            "um_storm",
                            end,
                            vec![("extra_ns", extra.into())],
                        );
                    }
                    if self.faults.migration_fail(now).is_some() && !self.faults.has_pending() {
                        self.faults.counters.um_failures += 1;
                        let device = self.faults.device();
                        self.faults.set_pending(DeviceFault {
                            kind: FaultKind::UmMigrationFail,
                            device,
                            at_ns: end,
                        });
                        self.prof.instant(
                            Track::Fault,
                            "um_migration_fail",
                            end,
                            vec![("device", device.into())],
                        );
                    }
                }
                end
            }
        }
    }

    /// The serial residency stage of the staged launch pipeline (see
    /// [`crate::access`]): runs [`MemSystem::ensure_resident`] for one
    /// recorded access and *immediately* classifies each of its sectors as
    /// zero-copy or cache-bound into `zc`.
    ///
    /// The classification must happen right here, between this access's
    /// residency and the next one's — the adaptive policy's per-page-group
    /// choices evolve access by access (`note_sector`, residency changes),
    /// so deferring the flags would diverge from the inline path the
    /// pipeline replaces.
    pub fn resolve_access(
        &mut self,
        region: RegionId,
        sectors: &[u64],
        now: Ns,
        zc: &mut [bool],
    ) -> Ns {
        let arrival = self.ensure_resident(region, sectors, now);
        let all_zero_copy = matches!(self.region_kind(region), RegionKind::ZeroCopy);
        let adaptive = !all_zero_copy && self.region_is_adaptive(region);
        if all_zero_copy || adaptive {
            for (flag, &sec) in zc.iter_mut().zip(sectors) {
                *flag = all_zero_copy || self.sector_zero_copy(region, sec);
            }
        }
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::um::PAGE_BYTES;

    fn system(capacity: u64) -> MemSystem {
        MemSystem::new(capacity, PcieLink::new(12.0, 1_000))
    }

    #[test]
    fn explicit_alloc_respects_capacity() {
        let mut m = system(1024);
        let a = m.alloc_explicit(128).expect("512 B fits in 1 KiB");
        assert_eq!(a.len, 128);
        assert_eq!(m.free_bytes(), 512);
        let err = m.alloc_explicit(200).unwrap_err();
        match err {
            MemError::Oom {
                requested_bytes,
                free_bytes,
            } => {
                assert_eq!(requested_bytes, 800);
                assert_eq!(free_bytes, 512);
            }
        }
    }

    #[test]
    fn free_explicit_returns_capacity() {
        let mut m = system(1024);
        let a = m.alloc_explicit(256).unwrap();
        assert_eq!(m.free_bytes(), 0);
        m.free_explicit(a);
        assert_eq!(m.free_bytes(), 1024);
    }

    #[test]
    fn unified_alloc_never_fails() {
        let mut m = system(64);
        let big = m.alloc_unified(1_000_000);
        assert_eq!(big.len, 1_000_000);
        assert_eq!(big.word_off % PAGE_WORDS, 0, "page aligned");
    }

    #[test]
    fn host_roundtrip() {
        let mut m = system(1 << 20);
        let a = m.alloc_explicit(16).unwrap();
        m.host_write(a, 4, &[7, 8, 9]);
        assert_eq!(m.host_read(a, 4, 3), &[7, 8, 9]);
        assert_eq!(m.word(a.addr(5)), 8);
        m.set_word(a.addr(5), 42);
        assert_eq!(m.host_read(a, 5, 1), &[42]);
    }

    #[test]
    fn copy_h2d_charges_the_link() {
        let mut m = system(1 << 20);
        let a = m.alloc_explicit(1024).unwrap();
        let end = m.copy_h2d(a, 0, &vec![1u32; 1024], 0);
        assert!(end >= 1_000, "setup latency must be paid");
        assert_eq!(m.pcie.bytes_moved(), 4096);
        assert_eq!(m.host_read(a, 0, 1), &[1]);
    }

    #[test]
    fn ensure_resident_faults_unified_pages_once() {
        let mut m = system(1 << 24);
        let a = m.alloc_unified(PAGE_BYTES / 4 * 8); // 8 pages
        let sector0 = a.word_off / 8;
        let t1 = m.ensure_resident(a.region, &[sector0], 0);
        assert!(t1 > 0);
        let t2 = m.ensure_resident(a.region, &[sector0], t1);
        assert_eq!(t2, t1, "resident page returns its arrival time");
    }

    #[test]
    fn explicit_regions_never_fault() {
        let mut m = system(1 << 20);
        let a = m.alloc_explicit(1024).unwrap();
        let t = m.ensure_resident(a.region, &[a.word_off / 8], 123);
        assert_eq!(t, 123);
        assert_eq!(m.um.stats.faults, 0);
    }

    #[test]
    fn zero_copy_counts_traffic() {
        let mut m = system(1 << 20);
        let a = m.alloc_zero_copy(1024);
        m.ensure_resident(a.region, &[a.word_off / 8, a.word_off / 8 + 1], 0);
        assert_eq!(m.zero_copy_bytes, 64);
    }

    #[test]
    fn charge_zero_copy_records_a_link_span() {
        let mut m = system(1 << 20);
        m.prof.set_enabled(true);
        let end = m.charge_zero_copy(12_000, 0);
        assert!(end > 0, "zero-copy traffic occupies the link");
        let spans = m.pcie.timeline.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, SpanKind::ZeroCopyRead);
        assert_eq!(spans[0].bytes, 12_000);
        // Mirrored 1:1 into the profiler like every other link span.
        assert_eq!(m.prof.len(), 1);
        assert_eq!(m.prof.events()[0].name, "zero_copy_read");
        // Zero bytes: no span, no time.
        assert_eq!(m.charge_zero_copy(0, end), end);
        assert_eq!(m.pcie.timeline.spans().len(), 1);
    }

    #[test]
    fn adaptive_disabled_map_is_inert() {
        // Same access stream with and without the (empty) adaptive map code
        // path: identical timelines.
        let mut m = system(1 << 24);
        let a = m.alloc_unified(PAGE_BYTES / 4 * 64);
        let t = m.ensure_resident(a.region, &[a.word_off / 8], 0);
        assert!(!m.region_is_adaptive(a.region));
        assert_eq!(m.adaptive_tick(t, 0), t, "no adaptive regions: no-op");
        assert_eq!(m.zero_copy_bytes, 0);
    }

    #[test]
    fn adaptive_sparse_group_goes_zero_copy() {
        let mut m = system(1 << 24);
        let a = m.alloc_unified(PAGE_BYTES / 4 * 64);
        m.enable_adaptive(a);
        assert!(m.region_is_adaptive(a.region));
        let s0 = a.word_off / 8; // one sector of page 0, every iteration
        let mut now = 0;
        for _ in 0..crate::adaptive::HYSTERESIS {
            now = m.ensure_resident(a.region, &[s0], now);
            now = m.adaptive_tick(now, 0);
        }
        // Page 0 was migrated during the demand phase and stays resident:
        // it keeps serving locally even though its group went zero-copy.
        assert!(!m.sector_zero_copy(a.region, s0));
        // A cold page of the same group routes zero-copy: no migration,
        // no new residency, traffic counted.
        // Page 15 (same 16-page group): outside page 0's 8-page fault batch.
        let s1 = s0 + 15 * (PAGE_BYTES / 32);
        assert!(m.sector_zero_copy(a.region, s1));
        let resident_before = m.um.resident_bytes();
        let zc_before = m.zero_copy_bytes;
        let t = m.ensure_resident(a.region, &[s1], now);
        assert_eq!(t, now);
        assert_eq!(m.um.resident_bytes(), resident_before);
        assert_eq!(m.zero_copy_bytes, zc_before + 32);
    }

    #[test]
    fn adaptive_dense_group_gets_prefetched() {
        let mut m = system(1 << 24);
        let a = m.alloc_unified(PAGE_BYTES / 4 * 32);
        m.enable_adaptive(a);
        // Touch 12 distinct pages of group 0 (dense) for HYSTERESIS rounds.
        let sectors: Vec<u64> = (0..12).map(|p| a.word_off / 8 + p * 128).collect();
        let mut now = 0;
        for _ in 0..crate::adaptive::HYSTERESIS {
            now = m.ensure_resident(a.region, &sectors, now);
            now = m.adaptive_tick(now, 0);
        }
        let (_, prefetch_groups, _) = m.adaptive_group_counts(a.region).unwrap();
        assert_eq!(prefetch_groups, 1, "dense group promoted to prefetch");
        // The group is fully resident: 16 pages of group 0 (+ nothing else —
        // group 1 was never touched and stays on demand).
        assert_eq!(m.um.region(0).resident_pages(), 16);
        assert!(!m.sector_zero_copy(a.region, sectors[0]));
    }

    #[test]
    fn dslice_sub_slicing() {
        let mut m = system(1 << 20);
        let a = m.alloc_explicit(100).unwrap();
        let s = a.slice(10, 20);
        assert_eq!(s.addr(0), a.addr(10));
        assert_eq!(s.len, 20);
        assert_eq!(s.bytes(), 80);
    }

    #[test]
    #[should_panic(expected = "sub-slice out of bounds")]
    fn dslice_oob_slice_panics() {
        let mut m = system(1 << 20);
        let a = m.alloc_explicit(10).unwrap();
        let _ = a.slice(5, 6);
    }

    #[test]
    fn init_tracking_off_reports_everything_initialized() {
        let mut m = system(1 << 20);
        let a = m.alloc_explicit(16).unwrap();
        assert!(!m.init_tracking_enabled());
        assert!(m.is_word_init(a.addr(0)), "no tracking: always init");
    }

    #[test]
    fn init_tracking_follows_writes() {
        let mut m = system(1 << 20);
        m.enable_init_tracking();
        let a = m.alloc_explicit(256).unwrap();
        assert!(!m.is_word_init(a.addr(0)), "fresh allocation is uninit");
        m.host_write(a, 4, &[1, 2, 3]);
        assert!(!m.is_word_init(a.addr(3)));
        assert!(m.is_word_init(a.addr(4)));
        assert!(m.is_word_init(a.addr(6)));
        assert!(!m.is_word_init(a.addr(7)));
        m.set_word(a.addr(100), 9);
        assert!(m.is_word_init(a.addr(100)));
        m.host_fill(a, 0);
        assert!(m.is_word_init(a.addr(255)), "fill initializes the slice");
    }

    #[test]
    fn init_tracking_copy_h2d_marks_words() {
        let mut m = system(1 << 20);
        m.enable_init_tracking();
        let a = m.alloc_explicit(64).unwrap();
        m.copy_h2d(a, 8, &[5; 8], 0);
        assert!(m.is_word_init(a.addr(8)));
        assert!(m.is_word_init(a.addr(15)));
        assert!(!m.is_word_init(a.addr(16)));
    }

    #[test]
    fn prefetch_noop_on_explicit() {
        let mut m = system(1 << 20);
        let a = m.alloc_explicit(64).unwrap();
        assert_eq!(m.prefetch(a, 77), 77);
    }

    #[test]
    fn profiler_mirrors_every_timed_transfer() {
        let mut m = system(1 << 24);
        m.prof.set_enabled(true);
        let a = m.alloc_explicit(1024).unwrap();
        m.copy_h2d(a, 0, &vec![1u32; 1024], 0);
        m.copy_d2h(a, 1024, 5_000);
        let u = m.alloc_unified(PAGE_BYTES / 4 * 100);
        m.prefetch(u, 10_000);
        m.ensure_resident(u.region, &[u.word_off / 8], 20_000);
        let names: Vec<&str> = m.prof.events().iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"copy_h2d"));
        assert!(names.contains(&"copy_d2h"));
        assert!(names.contains(&"um_prefetch"));
        // The touched page was already prefetched, so no migration event —
        // but every recorded event matches a link span one-to-one.
        assert_eq!(m.prof.len(), m.pcie.timeline.spans().len());
        let h2d = m
            .prof
            .events()
            .iter()
            .find(|e| e.name == "copy_h2d")
            .unwrap();
        assert_eq!(h2d.track, eta_prof::Track::Transfer);
        assert!(h2d
            .args
            .iter()
            .any(|(k, v)| *k == "bytes" && matches!(v, eta_prof::ArgValue::U64(4096))));
        let pf = m
            .prof
            .events()
            .iter()
            .find(|e| e.name == "um_prefetch")
            .unwrap();
        assert_eq!(pf.track, eta_prof::Track::Um);
        assert!(pf.args.iter().any(|(k, _)| *k == "pages"));
    }

    #[test]
    fn disabled_profiler_records_nothing_on_transfers() {
        let mut m = system(1 << 20);
        let a = m.alloc_explicit(1024).unwrap();
        m.copy_h2d(a, 0, &vec![1u32; 1024], 0);
        assert!(m.prof.is_empty());
        assert_eq!(m.prof.allocated_bytes(), 0);
    }

    #[test]
    fn um_migration_fail_window_sets_a_pending_fault() {
        use eta_fault::{FaultPlan, UmFault, UmFaultKind};
        let mut m = system(1 << 24);
        let mut plan = FaultPlan::default();
        plan.um.push(UmFault {
            device: 0,
            start_ns: 0,
            end_ns: u64::MAX,
            kind: UmFaultKind::MigrationFail,
            extra_ns: 0,
        });
        m.install_faults(&plan, 0);
        let a = m.alloc_unified(PAGE_BYTES / 4 * 8);
        let end = m.ensure_resident(a.region, &[a.word_off / 8], 0);
        let fault = m.faults.take_pending().expect("demand migration failed");
        assert_eq!(fault.kind, eta_fault::FaultKind::UmMigrationFail);
        assert_eq!(fault.at_ns, end);
        assert_eq!(m.faults.counters.um_failures, 1);
        // Resident re-touch migrates nothing: no new fault.
        m.ensure_resident(a.region, &[a.word_off / 8], end);
        assert!(m.faults.take_pending().is_none());
    }

    #[test]
    fn um_storm_window_slows_demand_migration() {
        use eta_fault::{FaultPlan, UmFault, UmFaultKind};
        let mut baseline = system(1 << 24);
        let a = baseline.alloc_unified(PAGE_BYTES / 4 * 8);
        let clean_end = baseline.ensure_resident(a.region, &[a.word_off / 8], 0);

        let mut m = system(1 << 24);
        let mut plan = FaultPlan::default();
        plan.um.push(UmFault {
            device: 0,
            start_ns: 0,
            end_ns: u64::MAX,
            kind: UmFaultKind::Storm,
            extra_ns: 1234,
        });
        m.install_faults(&plan, 0);
        let b = m.alloc_unified(PAGE_BYTES / 4 * 8);
        let end = m.ensure_resident(b.region, &[b.word_off / 8], 0);
        assert_eq!(end, clean_end + 1234);
        assert_eq!(m.faults.counters.storms, 1);
        assert!(m.faults.take_pending().is_none(), "storms slow, not fail");
    }

    #[test]
    fn installing_an_empty_plan_changes_nothing() {
        let mut clean = system(1 << 24);
        let a = clean.alloc_unified(PAGE_BYTES / 4 * 8);
        let t_clean = clean.ensure_resident(a.region, &[a.word_off / 8], 0);

        let mut m = system(1 << 24);
        m.install_faults(&eta_fault::FaultPlan::default(), 0);
        assert!(!m.faults.active);
        let b = m.alloc_unified(PAGE_BYTES / 4 * 8);
        let t = m.ensure_resident(b.region, &[b.word_off / 8], 0);
        assert_eq!(t, t_clean);
        assert_eq!(
            m.pcie.timeline.spans(),
            clean.pcie.timeline.spans(),
            "empty plan: identical link timeline"
        );
    }

    #[test]
    fn prefetch_unified_makes_pages_resident() {
        let mut m = system(1 << 24);
        let a = m.alloc_unified(PAGE_BYTES / 4 * 100);
        let end = m.prefetch(a, 0);
        assert!(end > 0);
        // Subsequent access should not fault.
        let faults_before = m.um.stats.faults;
        m.ensure_resident(a.region, &[a.word_off / 8 + 80], end);
        assert_eq!(m.um.stats.faults, faults_before);
    }
}
