//! Execution timelines: recorded spans of transfer and compute activity.
//!
//! Fig. 4 of the paper plots "execution status" of EtaGraph w/o UMP — which
//! intervals the PCIe link and the SMs are busy — and reports 60–80 %
//! transfer/compute overlap. We reproduce that by recording every transfer
//! and every kernel as a [`Span`] and measuring interval overlap directly.

use crate::Ns;
use serde::Serialize;

/// What a span of busy time represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SpanKind {
    /// Explicit host→device copy (cudaMemcpy-style).
    CopyH2D,
    /// Explicit device→host copy.
    CopyD2H,
    /// Demand page migration triggered by a GPU page fault.
    Migration,
    /// Asynchronous prefetch chunk (cudaMemPrefetchAsync-style).
    Prefetch,
    /// Page eviction under oversubscription (device→host writeback).
    Eviction,
    /// Peer-to-peer device copy over an NVLink-style link (see `peer`).
    PeerCopy,
    /// Aggregate zero-copy traffic of one kernel launch: sector-sized direct
    /// host reads from a pinned mapping (no page migration). Recorded once
    /// per launch with the launch's total zero-copy bytes.
    ZeroCopyRead,
    /// Kernel execution.
    Compute,
}

impl SpanKind {
    /// Whether this span occupies the interconnect (vs the SMs).
    pub fn is_transfer(self) -> bool {
        !matches!(self, SpanKind::Compute)
    }

    /// Stable event name, shared by the Chrome trace sink and the profiler.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::CopyH2D => "copy_h2d",
            SpanKind::CopyD2H => "copy_d2h",
            SpanKind::Migration => "um_migration",
            SpanKind::Prefetch => "um_prefetch",
            SpanKind::Eviction => "um_eviction",
            SpanKind::PeerCopy => "peer_copy",
            SpanKind::ZeroCopyRead => "zero_copy_read",
            SpanKind::Compute => "kernel",
        }
    }
}

/// One contiguous interval of busy time on a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Span {
    pub kind: SpanKind,
    pub start: Ns,
    pub end: Ns,
    /// Bytes moved, for transfer spans; 0 for compute.
    pub bytes: u64,
}

impl Span {
    pub fn duration(&self) -> Ns {
        self.end.saturating_sub(self.start)
    }
}

/// An append-only recording of spans.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, span: Span) {
        debug_assert!(span.end >= span.start, "span must not be inverted");
        self.spans.push(span);
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Total busy time of spans matching `pred`, merging overlaps.
    pub fn busy_time<F: Fn(&Span) -> bool>(&self, pred: F) -> Ns {
        let mut ivals: Vec<(Ns, Ns)> = self
            .spans
            .iter()
            .filter(|s| pred(s))
            .map(|s| (s.start, s.end))
            .collect();
        merged_length(&mut ivals)
    }

    /// Time during which both a transfer span and a compute span are active.
    pub fn overlap_time(&self) -> Ns {
        let mut xfer: Vec<(Ns, Ns)> = self
            .spans
            .iter()
            .filter(|s| s.kind.is_transfer())
            .map(|s| (s.start, s.end))
            .collect();
        let mut comp: Vec<(Ns, Ns)> = self
            .spans
            .iter()
            .filter(|s| !s.kind.is_transfer())
            .map(|s| (s.start, s.end))
            .collect();
        intersect_length(&mut xfer, &mut comp)
    }

    /// Fraction of transfer busy time that is hidden under compute.
    pub fn overlap_fraction(&self) -> f64 {
        let t = self.busy_time(|s| s.kind.is_transfer());
        if t == 0 {
            return 0.0;
        }
        self.overlap_time() as f64 / t as f64
    }

    /// End of the last span, i.e. the makespan of the recording.
    pub fn end(&self) -> Ns {
        self.spans.iter().map(|s| s.end).max().unwrap_or(0)
    }

    /// Serializes the recording as a Chrome trace (the `chrome://tracing` /
    /// Perfetto JSON array format): transfer spans on one track, compute on
    /// another, timestamps in microseconds. Hand-formatted — every field is
    /// a number or a fixed identifier, so no JSON escaping is needed.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        for (i, s) in self.spans.iter().enumerate() {
            let name = s.kind.name();
            let tid = if s.kind.is_transfer() { 1 } else { 2 };
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"bytes\":{}}}}}",
                s.start as f64 / 1e3,
                s.duration() as f64 / 1e3,
                s.bytes
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

/// Sorts, merges and sums a set of intervals.
fn merged_length(ivals: &mut Vec<(Ns, Ns)>) -> Ns {
    merge(ivals);
    ivals.iter().map(|&(a, b)| b - a).sum()
}

fn merge(ivals: &mut Vec<(Ns, Ns)>) {
    ivals.sort_unstable();
    let mut out: Vec<(Ns, Ns)> = Vec::with_capacity(ivals.len());
    for &(a, b) in ivals.iter() {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    *ivals = out;
}

fn intersect_length(a: &mut Vec<(Ns, Ns)>, b: &mut Vec<(Ns, Ns)>) -> Ns {
    merge(a);
    merge(b);
    let (mut i, mut j) = (0usize, 0usize);
    let mut total = 0;
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, start: Ns, end: Ns) -> Span {
        Span {
            kind,
            start,
            end,
            bytes: 0,
        }
    }

    #[test]
    fn busy_time_merges_overlaps() {
        let mut t = Timeline::new();
        t.push(span(SpanKind::Migration, 0, 10));
        t.push(span(SpanKind::Migration, 5, 15));
        t.push(span(SpanKind::Prefetch, 20, 30));
        assert_eq!(t.busy_time(|s| s.kind.is_transfer()), 25);
    }

    #[test]
    fn overlap_of_disjoint_resources() {
        let mut t = Timeline::new();
        t.push(span(SpanKind::Compute, 0, 100));
        t.push(span(SpanKind::Migration, 20, 60));
        t.push(span(SpanKind::Migration, 110, 150));
        assert_eq!(t.overlap_time(), 40);
        let frac = t.overlap_fraction();
        assert!((frac - 0.5).abs() < 1e-12, "40 of 80 transfer ns hidden");
    }

    #[test]
    fn empty_timeline_is_zero() {
        let t = Timeline::new();
        assert_eq!(t.overlap_time(), 0);
        assert_eq!(t.overlap_fraction(), 0.0);
        assert_eq!(t.end(), 0);
    }

    #[test]
    fn makespan_is_last_end() {
        let mut t = Timeline::new();
        t.push(span(SpanKind::Compute, 5, 9));
        t.push(span(SpanKind::CopyH2D, 0, 4));
        assert_eq!(t.end(), 9);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_event_per_span() {
        let mut t = Timeline::new();
        t.push(span(SpanKind::CopyH2D, 0, 2000));
        t.push(span(SpanKind::Compute, 1000, 5000));
        let trace = t.to_chrome_trace();
        // Hand-rolled writer: sanity-check shape without a JSON parser.
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), 2);
        assert!(trace.contains("\"name\":\"copy_h2d\""));
        assert!(trace.contains("\"name\":\"kernel\""));
        assert!(trace.trim_start().starts_with('['));
        assert!(trace.trim_end().ends_with(']'));
    }

    #[test]
    fn intersect_handles_nested_intervals() {
        let mut t = Timeline::new();
        t.push(span(SpanKind::Compute, 0, 100));
        t.push(span(SpanKind::Compute, 10, 20));
        t.push(span(SpanKind::Migration, 15, 25));
        assert_eq!(t.overlap_time(), 10);
    }
}
