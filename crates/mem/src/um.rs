//! Unified Memory: page residency, demand migration, prefetch, eviction.
//!
//! Models the CUDA UM behaviour the paper leans on (§IV-B, Tables III/V,
//! Fig. 4):
//!
//! * Allocations are host-backed and page-granular (4 KiB). A GPU access to a
//!   non-resident page raises a fault; the driver migrates a *batch* of
//!   contiguous faulting pages, rounded out to a fault-group granularity, so
//!   observed migration sizes range from one page to ~1 MiB (Table V, "w/o
//!   UMP" rows: avg ≈ 44 KB, min 4 KB, max ≈ 996 KB).
//! * `prefetch` (the `cudaMemPrefetchAsync` analog) streams the allocation in
//!   2 MiB chunks, which is why Table V's prefetch rows are almost all 2 MB.
//! * When resident pages would exceed the device budget, least-recently-used
//!   pages are evicted (*oversubscription*), letting traversal run on graphs
//!   larger than device memory — the paper's uk-2006 case.

use crate::pcie::PcieLink;
use crate::timeline::SpanKind;
use crate::Ns;
use serde::Serialize;

/// UM page size in bytes (x86 system page, as in the paper's Table V).
pub const PAGE_BYTES: u64 = 4096;
/// UM page size in device words.
pub const PAGE_WORDS: u64 = PAGE_BYTES / 4;
/// Base driver fault-group granularity: a demand batch is rounded out to
/// this boundary over non-resident pages before migrating. When faults
/// arrive densely (streaming access), the driver escalates the group size
/// up to [`MAX_BATCH_BYTES`] — CUDA's density-tree heuristic — which is why
/// the paper's Table V sees migrated sizes from one 4 KiB page up to
/// ~1 MB with a ~44 KB average.
pub const FAULT_GROUP_BYTES: u64 = 32 * 1024;
/// Upper bound on one demand-migration batch.
pub const MAX_BATCH_BYTES: u64 = 1024 * 1024;
/// Prefetch streaming chunk (large-page granularity the driver promotes to).
pub const PREFETCH_CHUNK_BYTES: u64 = 2 * 1024 * 1024;
/// Driver-side service time per demand-migration batch (fault report, TLB
/// shootdown, page-table update) — the cost `cudaMemPrefetchAsync` avoids,
/// scaled with the rest of the interconnect constants.
pub const FAULT_SERVICE_NS: Ns = 4_000;

#[derive(Debug, Clone, Copy)]
struct PageState {
    resident: bool,
    /// Link time at which the page's data is available on-device.
    arrival: Ns,
    /// LRU clock of the last GPU access.
    last_access: u64,
}

/// Aggregate migration statistics (drives Table V).
#[derive(Debug, Clone, Default, Serialize)]
pub struct UmStats {
    /// Size in bytes of every demand-migrated batch.
    pub migration_batches: Vec<u64>,
    /// Size in bytes of every prefetch chunk.
    pub prefetch_chunks: Vec<u64>,
    /// Number of GPU page faults (batches may serve several).
    pub faults: u64,
    /// Pages evicted under oversubscription.
    pub evicted_pages: u64,
    /// Total bytes demand-migrated.
    pub migrated_bytes: u64,
    /// Total bytes prefetched.
    pub prefetched_bytes: u64,
}

impl UmStats {
    pub fn batch_avg_bytes(&self) -> f64 {
        if self.migration_batches.is_empty() {
            0.0
        } else {
            self.migrated_bytes as f64 / self.migration_batches.len() as f64
        }
    }

    pub fn batch_min_bytes(&self) -> u64 {
        self.migration_batches.iter().copied().min().unwrap_or(0)
    }

    pub fn batch_max_bytes(&self) -> u64 {
        self.migration_batches.iter().copied().max().unwrap_or(0)
    }

    /// All observed migration sizes (demand batches and prefetch chunks),
    /// matching what the paper's Table V reports per configuration.
    pub fn all_sizes(&self) -> Vec<u64> {
        let mut v = self.migration_batches.clone();
        v.extend_from_slice(&self.prefetch_chunks);
        v
    }
}

/// Residency bookkeeping for one unified allocation.
#[derive(Debug, Clone)]
pub struct UmRegion {
    /// First device word of the allocation (page aligned).
    pub start_word: u64,
    /// Length in words.
    pub len_words: u64,
    pages: Vec<PageState>,
    /// Last page the driver migrated (for the density heuristic).
    last_batch_end: usize,
    /// Consecutive near-adjacent fault batches observed.
    streak: u32,
}

impl UmRegion {
    pub fn new(start_word: u64, len_words: u64) -> Self {
        debug_assert_eq!(start_word % PAGE_WORDS, 0, "UM regions are page aligned");
        let n_pages = len_words.div_ceil(PAGE_WORDS) as usize;
        UmRegion {
            start_word,
            len_words,
            pages: vec![
                PageState {
                    resident: false,
                    arrival: 0,
                    last_access: 0,
                };
                n_pages
            ],
            last_batch_end: usize::MAX,
            streak: 0,
        }
    }

    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.resident).count()
    }

    /// Whether one page is currently resident (the adaptive policy routes
    /// zero-copy reads only to pages that are *not*).
    #[inline]
    pub fn page_resident(&self, page: usize) -> bool {
        self.pages[page].resident
    }

    /// Page index containing a global word address.
    pub fn page_of_word(&self, word_addr: u64) -> usize {
        debug_assert!(word_addr >= self.start_word);
        ((word_addr - self.start_word) / PAGE_WORDS) as usize
    }

    fn bytes_of_page(&self, page: usize) -> u64 {
        let start_w = page as u64 * PAGE_WORDS;
        let end_w = (start_w + PAGE_WORDS).min(self.len_words);
        (end_w - start_w) * 4
    }
}

/// The Unified Memory driver state shared by all UM regions of a device.
#[derive(Debug, Clone)]
pub struct UmDriver {
    regions: Vec<UmRegion>,
    /// LRU clock; bumped on every GPU access batch.
    clock: u64,
    resident_bytes: u64,
    pub stats: UmStats,
}

impl Default for UmDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl UmDriver {
    pub fn new() -> Self {
        UmDriver {
            regions: Vec::new(),
            clock: 0,
            resident_bytes: 0,
            stats: UmStats::default(),
        }
    }

    pub fn add_region(&mut self, region: UmRegion) -> usize {
        self.regions.push(region);
        self.regions.len() - 1
    }

    pub fn region(&self, idx: usize) -> &UmRegion {
        &self.regions[idx]
    }

    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Host-side access after kernels complete: residency is irrelevant.
    pub fn reset_stats(&mut self) {
        self.stats = UmStats::default();
    }

    /// Ensures the given pages of `region` are resident, migrating on demand.
    ///
    /// `pages` must be sorted (the coalescer emits sorted sectors, so this is
    /// free for callers). Returns the latest arrival time among the touched
    /// pages — `now` if everything was already on-device — which the caller
    /// charges as transfer wait.
    ///
    /// `budget_bytes` is the device memory available to UM (capacity minus
    /// explicit allocations); exceeding it triggers LRU eviction.
    pub fn touch_pages(
        &mut self,
        region_idx: usize,
        pages: &[usize],
        now: Ns,
        budget_bytes: u64,
        link: &mut PcieLink,
    ) -> Ns {
        self.clock += 1;
        let mut latest = now;

        // Mark accesses and collect the non-resident pages (sorted, unique).
        let mut missing: Vec<usize> = Vec::new();
        {
            let region = &mut self.regions[region_idx];
            let mut prev = usize::MAX;
            for &p in pages {
                if p == prev {
                    continue;
                }
                prev = p;
                let st = &mut region.pages[p];
                st.last_access = self.clock;
                if st.resident {
                    latest = latest.max(st.arrival);
                } else {
                    missing.push(p);
                }
            }
        }
        if missing.is_empty() {
            return latest;
        }
        self.stats.faults += missing.len() as u64;

        // Group contiguous missing pages, round each group out to the fault
        // granularity over non-resident neighbours, cap at MAX_BATCH_BYTES.
        let batches = self.plan_batches(region_idx, &missing);
        for &(first, last) in &batches {
            // Only non-resident pages move; planning guarantees this, but
            // recompute defensively so accounting can never drift.
            let bytes: u64 = (first..=last)
                .filter(|&p| !self.regions[region_idx].pages[p].resident)
                .map(|p| self.regions[region_idx].bytes_of_page(p))
                .sum();
            if bytes == 0 {
                continue;
            }
            // Every batch of this fault event is protected from eviction, not
            // just the current one: under a tight budget, a later batch's
            // eviction pass must not reclaim pages an earlier batch of the
            // same event just migrated (the uk-2006 double-charge anomaly —
            // the page's arrival was charged, then it vanished before the
            // kernel read it, so the very next access re-faulted and paid
            // the full migration again).
            self.make_room(region_idx, &batches, bytes, budget_bytes, now, link);
            let (_, end) =
                link.transfer_with_setup(SpanKind::Migration, bytes, now, FAULT_SERVICE_NS);
            let region = &mut self.regions[region_idx];
            for p in first..=last {
                let st = &mut region.pages[p];
                if st.resident {
                    continue;
                }
                st.resident = true;
                st.arrival = end;
                st.last_access = self.clock;
            }
            self.resident_bytes += bytes;
            self.stats.migration_batches.push(bytes);
            self.stats.migrated_bytes += bytes;
            latest = latest.max(end);
        }
        latest
    }

    /// Groups sorted missing pages into `(first, last)` inclusive batches,
    /// applying the density heuristic: each batch near the previous one
    /// doubles the speculative group size, up to [`MAX_BATCH_BYTES`].
    fn plan_batches(&mut self, region_idx: usize, missing: &[usize]) -> Vec<(usize, usize)> {
        let region = &mut self.regions[region_idx];
        let base_group = (FAULT_GROUP_BYTES / PAGE_BYTES) as usize;
        let max_pages = (MAX_BATCH_BYTES / PAGE_BYTES) as usize;
        let n_pages = region.pages.len();

        let mut out: Vec<(usize, usize)> = Vec::new();
        for &p in missing {
            if let Some(&(first, last)) = out.last() {
                if p <= last {
                    continue; // already covered by the previous rounded batch
                }
                if p == last + 1 && (p - first) < max_pages {
                    out.last_mut().expect("just checked").1 = p;
                    continue;
                }
            }
            // Density escalation: only faults landing immediately after the
            // previous batch (a streaming sweep) grow the speculative group
            // (16 KiB -> ... -> 1 MiB); anything scattered resets it.
            let near = region.last_batch_end != usize::MAX
                && p > region.last_batch_end
                && p - region.last_batch_end <= base_group;
            region.streak = if near { (region.streak + 1).min(6) } else { 0 };
            let group_pages = (base_group << region.streak).min(max_pages);

            // Start the batch at the group boundary, but never cover
            // already-resident pages (the driver only moves missing ones)
            // nor pages already claimed by the previous batch.
            let mut first = p - (p % group_pages);
            if let Some(&(_, prev_last)) = out.last() {
                first = first.max(prev_last + 1);
            }
            while first < p && region.pages[first].resident {
                first += 1;
            }
            // Round the tail out to the end of the group as long as the
            // pages there are also missing (speculative migration).
            let group_end = ((p / group_pages) + 1) * group_pages;
            let mut last = p;
            while last + 1 < n_pages.min(group_end) && !region.pages[last + 1].resident {
                last += 1;
            }
            region.last_batch_end = last;
            out.push((first, last));
        }
        out
    }

    /// Evicts LRU pages (skipping the `protect`ed inclusive page ranges of
    /// `region_idx`) until `incoming_bytes` fits in the budget.
    fn make_room(
        &mut self,
        region_idx: usize,
        protect: &[(usize, usize)],
        incoming_bytes: u64,
        budget_bytes: u64,
        now: Ns,
        link: &mut PcieLink,
    ) {
        if self.resident_bytes + incoming_bytes <= budget_bytes {
            return;
        }
        let mut to_free = (self.resident_bytes + incoming_bytes).saturating_sub(budget_bytes);
        let mut evicted_bytes = 0u64;
        // One scan collects every evictable page; sorting by last access then
        // gives LRU order without rescanning per victim (heavy
        // oversubscription evicts thousands of pages per call).
        let mut candidates: Vec<(u64, usize, usize)> = Vec::new();
        for (ri, region) in self.regions.iter().enumerate() {
            for (pi, st) in region.pages.iter().enumerate() {
                if !st.resident {
                    continue;
                }
                if ri == region_idx && protect.iter().any(|&(f, l)| (f..=l).contains(&pi)) {
                    continue;
                }
                candidates.push((st.last_access, ri, pi));
            }
        }
        candidates.sort_unstable();
        for (_, ri, pi) in candidates {
            if to_free == 0 {
                break;
            }
            let bytes = self.regions[ri].bytes_of_page(pi);
            self.regions[ri].pages[pi].resident = false;
            self.resident_bytes -= bytes;
            self.stats.evicted_pages += 1;
            evicted_bytes += bytes;
            to_free = to_free.saturating_sub(bytes);
        }
        // If the candidate list ran out first, the budget is simply exceeded.
        if evicted_bytes > 0 {
            // Topology pages are clean on the GPU (graph data is read-only
            // during traversal), so eviction is a cheap unmap, but we still
            // record the event on the timeline for Fig. 4 style accounting.
            link.transfer(SpanKind::Eviction, evicted_bytes / 64, now);
        }
    }

    /// Streams the whole region to the device in 2 MiB chunks
    /// (`cudaMemPrefetchAsync`). Returns the completion time of the last
    /// chunk. Pages become individually available as their chunk lands, so
    /// compute can start before the prefetch finishes.
    pub fn prefetch(
        &mut self,
        region_idx: usize,
        now: Ns,
        budget_bytes: u64,
        link: &mut PcieLink,
    ) -> Ns {
        let n_pages = self.regions[region_idx].n_pages();
        self.prefetch_range(region_idx, 0, n_pages - 1, now, budget_bytes, link)
    }

    /// Streams one inclusive page range of a region to the device in 2 MiB
    /// chunks, skipping already-resident pages — a no-op (no span, no stats)
    /// when the whole range is resident, so the adaptive policy can call it
    /// every iteration to keep its prefetch groups healed after evictions.
    pub fn prefetch_range(
        &mut self,
        region_idx: usize,
        first_page: usize,
        last_page: usize,
        now: Ns,
        budget_bytes: u64,
        link: &mut PcieLink,
    ) -> Ns {
        let n_pages = self.regions[region_idx].n_pages();
        let last_page = last_page.min(n_pages - 1);
        let chunk_pages = (PREFETCH_CHUNK_BYTES / PAGE_BYTES) as usize;
        let mut end = now;
        let mut p = first_page;
        while p <= last_page {
            let last = (p + chunk_pages - 1).min(last_page);
            // Skip already-resident prefix/suffix inside the chunk.
            let bytes: u64 = (p..=last)
                .filter(|&q| !self.regions[region_idx].pages[q].resident)
                .map(|q| self.regions[region_idx].bytes_of_page(q))
                .sum();
            if bytes > 0 {
                self.make_room(region_idx, &[(p, last)], bytes, budget_bytes, now, link);
                let (_, chunk_end) = link.transfer(SpanKind::Prefetch, bytes, now);
                let region = &mut self.regions[region_idx];
                for q in p..=last {
                    let st = &mut region.pages[q];
                    if !st.resident {
                        st.resident = true;
                        st.arrival = chunk_end;
                    }
                }
                self.resident_bytes += bytes;
                self.stats.prefetch_chunks.push(bytes);
                self.stats.prefetched_bytes += bytes;
                end = end.max(chunk_end);
            }
            p = last + 1;
        }
        end
    }

    /// Drops one region's residency (the allocation is being retired, e.g.
    /// a served graph evicted from the registry). Its device bytes return
    /// to the UM budget; the host-backed storage itself is bump-allocated
    /// and not reclaimed, like [`crate::system::MemSystem::free_explicit`].
    pub fn invalidate_region(&mut self, region_idx: usize) {
        let region = &mut self.regions[region_idx];
        let mut freed = 0u64;
        for (pi, st) in region.pages.iter_mut().enumerate() {
            if st.resident {
                freed += {
                    let start_w = pi as u64 * PAGE_WORDS;
                    let end_w = (start_w + PAGE_WORDS).min(region.len_words);
                    (end_w - start_w) * 4
                };
            }
            st.resident = false;
            st.arrival = 0;
            st.last_access = 0;
        }
        region.last_batch_end = usize::MAX;
        region.streak = 0;
        self.resident_bytes -= freed;
    }

    /// Drops residency of one inclusive page range (the adaptive policy
    /// moving a group to zero-copy: its pages no longer earn their device
    /// bytes). Returns the bytes freed. Unlike [`Self::invalidate_region`]
    /// this leaves the density heuristic state (`last_batch_end`, `streak`)
    /// untouched — the rest of the region keeps demand-faulting normally.
    pub fn invalidate_pages(
        &mut self,
        region_idx: usize,
        first_page: usize,
        last_page: usize,
    ) -> u64 {
        let region = &mut self.regions[region_idx];
        let last_page = last_page.min(region.pages.len() - 1);
        let mut freed = 0u64;
        for pi in first_page..=last_page {
            let st = &mut region.pages[pi];
            if st.resident {
                freed += {
                    let start_w = pi as u64 * PAGE_WORDS;
                    let end_w = (start_w + PAGE_WORDS).min(region.len_words);
                    (end_w - start_w) * 4
                };
            }
            st.resident = false;
            st.arrival = 0;
        }
        self.resident_bytes -= freed;
        freed
    }

    /// Drops all residency (new experiment on the same data).
    pub fn invalidate_all(&mut self) {
        for region in &mut self.regions {
            for st in &mut region.pages {
                st.resident = false;
                st.arrival = 0;
                st.last_access = 0;
            }
            region.last_batch_end = usize::MAX;
            region.streak = 0;
        }
        self.resident_bytes = 0;
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver_with_region(pages: u64) -> (UmDriver, usize) {
        let mut d = UmDriver::new();
        let idx = d.add_region(UmRegion::new(0, pages * PAGE_WORDS));
        (d, idx)
    }

    fn link() -> PcieLink {
        PcieLink::new(12.0, 5_000)
    }

    #[test]
    fn first_touch_faults_then_hits() {
        let (mut d, r) = driver_with_region(64);
        let mut l = link();
        let t1 = d.touch_pages(r, &[3], 0, u64::MAX, &mut l);
        assert!(t1 > 0, "fault must cost transfer time");
        assert_eq!(d.stats.faults, 1);
        let batches = d.stats.migration_batches.len();
        // Second touch of the same page: resident, no new batch.
        let t2 = d.touch_pages(r, &[3], t1, u64::MAX, &mut l);
        assert_eq!(t2, t1);
        assert_eq!(d.stats.migration_batches.len(), batches);
    }

    #[test]
    fn fault_group_rounds_out_batches() {
        let (mut d, r) = driver_with_region(64);
        let mut l = link();
        d.touch_pages(r, &[0], 0, u64::MAX, &mut l);
        // One cold fault migrates the base fault group.
        assert_eq!(d.stats.migration_batches, vec![FAULT_GROUP_BYTES]);
        assert_eq!(
            d.region(r).resident_pages() as u64,
            FAULT_GROUP_BYTES / PAGE_BYTES
        );
    }

    #[test]
    fn dense_faults_escalate_group_size() {
        let (mut d, r) = driver_with_region(2048); // 8 MiB region
        let mut l = link();
        // Stream faults through the region page by page, as a dense sweep
        // would: the driver must escalate batch sizes toward the 1 MiB cap.
        let mut p = 0usize;
        while p < 2048 {
            d.touch_pages(r, &[p], 0, u64::MAX, &mut l);
            // jump to the first page past everything resident
            while p < 2048 && d.region(r).resident_pages() > 0 && {
                // advance p to the next non-resident page
                let resident = d.region(r).resident_pages();
                resident > p
            } {
                p += 1;
            }
            p = d.region(r).resident_pages();
        }
        let max = d.stats.batch_max_bytes();
        let min = d.stats.batch_min_bytes();
        assert_eq!(max, MAX_BATCH_BYTES, "dense faulting reaches the 1 MiB cap");
        assert_eq!(min, FAULT_GROUP_BYTES, "the first cold batch stays small");
    }

    #[test]
    fn sparse_faults_stay_small() {
        let (mut d, r) = driver_with_region(4096);
        let mut l = link();
        // Far-apart faults never escalate.
        for p in [0usize, 1000, 2000, 3000] {
            d.touch_pages(r, &[p], 0, u64::MAX, &mut l);
        }
        assert!(d.stats.batch_max_bytes() <= 2 * FAULT_GROUP_BYTES);
    }

    #[test]
    fn isolated_fault_at_region_tail_migrates_one_page() {
        // A region of 17 pages: the second fault group holds a single page,
        // so faulting it moves exactly 4 KiB (Table V min column).
        let (mut d, r) = driver_with_region(17);
        let mut l = link();
        d.touch_pages(r, &[16], 0, u64::MAX, &mut l);
        assert_eq!(
            d.stats.migration_batches,
            vec![PAGE_BYTES],
            "min migrated size is one 4 KiB page"
        );
    }

    #[test]
    fn refault_of_evicted_page_can_migrate_alone() {
        let (mut d, r) = driver_with_region(16);
        let mut l = link();
        d.touch_pages(r, &[0], 0, u64::MAX, &mut l); // whole group resident
                                                     // Evict exactly page 3 by hand via invalidate + selective re-touch is
                                                     // impossible through the public API, so emulate the state: touch a
                                                     // fresh driver where only page 3 is missing.
        d.invalidate_all();
        d.touch_pages(r, &[0], 0, u64::MAX, &mut l); // group resident again
                                                     // Now all 16 pages are resident; nothing to migrate.
        d.stats.migration_batches.clear();
        d.touch_pages(r, &[3], 0, u64::MAX, &mut l);
        assert!(d.stats.migration_batches.is_empty());
    }

    #[test]
    fn prefetch_uses_two_mb_chunks() {
        let pages = 3 * 512 + 100; // 3 full chunks + a tail
        let (mut d, r) = driver_with_region(pages as u64);
        let mut l = link();
        let end = d.prefetch(r, 0, u64::MAX, &mut l);
        assert!(end > 0);
        assert_eq!(d.stats.prefetch_chunks.len(), 4);
        assert_eq!(d.stats.prefetch_chunks[0], PREFETCH_CHUNK_BYTES);
        assert_eq!(d.stats.prefetch_chunks[3], 100 * PAGE_BYTES);
        assert_eq!(d.region(r).resident_pages(), pages);
    }

    #[test]
    fn oversubscription_evicts_lru() {
        let (mut d, r) = driver_with_region(32);
        let mut l = link();
        let budget = 16 * PAGE_BYTES;
        // Touch pages one by one with the group heuristic disabled by
        // touching non-aligned isolated pages far apart.
        for p in (0..32).step_by(1) {
            d.touch_pages(r, &[p], 0, budget, &mut l);
        }
        assert!(d.resident_bytes() <= budget, "budget must be respected");
        assert!(d.stats.evicted_pages > 0, "eviction must have happened");
        // The protected (most recent) page is still resident.
        assert!(d.region(r).resident_pages() >= 1);
    }

    #[test]
    fn touch_after_eviction_refaults() {
        let (mut d, r) = driver_with_region(64);
        let mut l = link();
        let budget = FAULT_GROUP_BYTES; // one fault group fits
        d.touch_pages(r, &[0], 0, budget, &mut l);
        d.touch_pages(r, &[20], 0, budget, &mut l); // evicts the first group
        let before = d.stats.migration_batches.len();
        d.touch_pages(r, &[0], 0, budget, &mut l);
        assert!(d.stats.migration_batches.len() > before);
    }

    #[test]
    fn stats_summaries() {
        let (mut d, r) = driver_with_region(512);
        let mut l = link();
        d.touch_pages(r, &[0], 0, u64::MAX, &mut l);
        d.touch_pages(r, &[400], 0, u64::MAX, &mut l);
        assert_eq!(d.stats.batch_min_bytes(), FAULT_GROUP_BYTES);
        assert!(d.stats.batch_avg_bytes() > 0.0);
        assert!(d.stats.batch_max_bytes() <= MAX_BATCH_BYTES);
    }

    #[test]
    fn invalidate_region_returns_only_its_bytes() {
        let mut d = UmDriver::new();
        let a = d.add_region(UmRegion::new(0, 16 * PAGE_WORDS));
        let b = d.add_region(UmRegion::new(16 * PAGE_WORDS, 16 * PAGE_WORDS));
        let mut l = link();
        d.prefetch(a, 0, u64::MAX, &mut l);
        d.prefetch(b, 0, u64::MAX, &mut l);
        let both = d.resident_bytes();
        d.invalidate_region(a);
        assert_eq!(d.resident_bytes(), both / 2, "only region a's bytes freed");
        assert_eq!(d.region(a).resident_pages(), 0);
        assert_eq!(d.region(b).resident_pages(), 16);
        // Idempotent: a second invalidation frees nothing more.
        d.invalidate_region(a);
        assert_eq!(d.resident_bytes(), both / 2);
    }

    #[test]
    fn tight_budget_fault_event_keeps_all_its_batches() {
        // Regression for the uk-2006 double-charge anomaly: one fault event
        // produces two batches under a budget that fits exactly one. The
        // second batch's eviction pass used to reclaim the first batch's
        // just-migrated pages (only the current batch was protected), so the
        // kernel re-faulted data whose arrival it had already paid for.
        let (mut d, r) = driver_with_region(64);
        let mut l = link();
        // Budget fits ONE batch: batch 2's make_room must look for victims,
        // and batch 1's pages are the only resident ones. Protected, the
        // budget is simply exceeded for the event — never a self-eviction.
        let budget = FAULT_GROUP_BYTES;
        let t = d.touch_pages(r, &[16, 32], 0, budget, &mut l);
        assert!(t > 0);
        assert_eq!(d.stats.migration_batches.len(), 2, "two disjoint batches");
        assert_eq!(d.stats.evicted_pages, 0, "batch 2 must not evict batch 1");
        // Both faulted pages are on-device after the event that charged them.
        let before = d.stats.migration_batches.len();
        let t2 = d.touch_pages(r, &[16, 32], t, budget, &mut l);
        assert_eq!(t2, t, "re-touch is free: no double charge");
        assert_eq!(d.stats.migration_batches.len(), before);
    }

    #[test]
    fn prefetch_range_targets_only_the_range() {
        let (mut d, r) = driver_with_region(64);
        let mut l = link();
        let end = d.prefetch_range(r, 16, 31, 0, u64::MAX, &mut l);
        assert!(end > 0);
        assert_eq!(d.region(r).resident_pages(), 16);
        assert_eq!(d.stats.prefetched_bytes, 16 * PAGE_BYTES);
        // Idempotent once resident: no new chunk, no time.
        let chunks = d.stats.prefetch_chunks.len();
        let end2 = d.prefetch_range(r, 16, 31, end, u64::MAX, &mut l);
        assert_eq!(end2, end);
        assert_eq!(d.stats.prefetch_chunks.len(), chunks);
    }

    #[test]
    fn invalidate_pages_frees_only_the_range() {
        let (mut d, r) = driver_with_region(32);
        let mut l = link();
        d.prefetch(r, 0, u64::MAX, &mut l);
        assert_eq!(d.region(r).resident_pages(), 32);
        let freed = d.invalidate_pages(r, 8, 15);
        assert_eq!(freed, 8 * PAGE_BYTES);
        assert_eq!(d.region(r).resident_pages(), 24);
        assert_eq!(d.resident_bytes(), 24 * PAGE_BYTES);
        // Idempotent.
        assert_eq!(d.invalidate_pages(r, 8, 15), 0);
    }

    #[test]
    fn prefetch_respects_budget_via_eviction() {
        let pages = 1024u64; // 4 MiB region
        let (mut d, r) = driver_with_region(pages);
        let mut l = link();
        let budget = 2 * 1024 * 1024; // half fits
        d.prefetch(r, 0, budget, &mut l);
        assert!(d.resident_bytes() <= budget);
        assert!(d.stats.evicted_pages > 0);
    }
}
