//! `eta-par` — a minimal, dependency-light data-parallel substrate.
//!
//! The EtaGraph reproduction needs a small slice of what `rayon` offers:
//! chunked parallel-for over index ranges and slices, and deterministic
//! map-reduce. Rather than pull in a work-stealing scheduler, we build that
//! slice on `crossbeam::scope`, which is plenty for the regular, statically
//! partitionable loops that dominate graph generation, analysis and the CPU
//! reference algorithms.
//!
//! Design points:
//!
//! * **Static chunking.** Work is split into `num_threads` contiguous chunks.
//!   All our loops are dense index ranges with near-uniform per-element cost
//!   (edge generation, label init, histogram builds), so static partitioning
//!   is within a few percent of a work-stealing schedule and keeps the
//!   implementation obviously correct.
//! * **Deterministic reduction.** [`map_reduce`] always folds per-thread
//!   partials in thread-index order, so floating-point and other
//!   non-commutative reductions are reproducible run to run.
//! * **Small-input fast path.** Inputs below [`PAR_THRESHOLD`] run inline on
//!   the calling thread; spawning threads for tiny loops costs more than it
//!   saves.

pub mod sort;

pub use sort::par_sort_by_key;

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs smaller than this run sequentially on the calling thread.
pub const PAR_THRESHOLD: usize = 4096;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the number of worker threads used by this module.
///
/// `0` restores the default (the machine's available parallelism). Intended
/// for tests and benchmarks that want single-threaded determinism checks.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Number of worker threads a parallel call will use.
pub fn current_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `len` items into at most `parts` contiguous `(start, end)` chunks.
///
/// Every chunk is non-empty and the chunks exactly cover `0..len` in order.
pub fn chunks(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < rem);
        out.push((start, start + sz));
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

/// Runs `body(start, end)` over disjoint chunks of `0..len` in parallel.
///
/// `body` must be safe to run concurrently on disjoint ranges; the usual
/// pattern is to capture only shared immutable state plus atomics.
pub fn for_each_chunk<F>(len: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = current_threads();
    if len < PAR_THRESHOLD || threads <= 1 {
        if len > 0 {
            body(0, len);
        }
        return;
    }
    let parts = chunks(len, threads);
    crossbeam::scope(|s| {
        for &(a, b) in &parts {
            let body = &body;
            s.spawn(move |_| body(a, b));
        }
    })
    .expect("eta-par worker panicked");
}

/// Parallel in-place transform of a mutable slice, chunk by chunk.
pub fn for_each_mut<T, F>(data: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = data.len();
    let threads = current_threads();
    if len < PAR_THRESHOLD || threads <= 1 {
        for (i, item) in data.iter_mut().enumerate() {
            body(i, item);
        }
        return;
    }
    let parts = chunks(len, threads);
    // Split the slice into the exact chunk boundaries so each worker owns a
    // disjoint &mut region.
    let mut rest = data;
    let mut slices = Vec::with_capacity(parts.len());
    let mut consumed = 0;
    for &(a, b) in &parts {
        let (head, tail) = rest.split_at_mut(b - a);
        slices.push((consumed, head));
        rest = tail;
        consumed = b;
    }
    crossbeam::scope(|s| {
        for (offset, chunk) in slices {
            let body = &body;
            s.spawn(move |_| {
                for (i, item) in chunk.iter_mut().enumerate() {
                    body(offset + i, item);
                }
            });
        }
    })
    .expect("eta-par worker panicked");
}

/// Parallel map-reduce over `0..len` with a deterministic fold order.
///
/// Each worker folds its chunk with `fold` starting from `identity()`; the
/// per-thread partials are then combined with `combine` in chunk order, so
/// the result is independent of thread scheduling.
pub fn map_reduce<T, I, F, C>(len: usize, identity: I, fold: F, combine: C) -> T
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(T, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let threads = current_threads();
    if len < PAR_THRESHOLD || threads <= 1 {
        let mut acc = identity();
        for i in 0..len {
            acc = fold(acc, i);
        }
        return acc;
    }
    let parts = chunks(len, threads);
    let partials: Vec<T> = crossbeam::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|&(a, b)| {
                let identity = &identity;
                let fold = &fold;
                s.spawn(move |_| {
                    let mut acc = identity();
                    for i in a..b {
                        acc = fold(acc, i);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("eta-par worker panicked"))
            .collect()
    })
    .expect("eta-par scope failed");
    let mut iter = partials.into_iter();
    let first = iter.next().expect("chunks() never returns empty for len>0");
    iter.fold(first, combine)
}

/// Convenience: parallel generation of a `Vec<T>` where element `i` is
/// `gen(i)`.
pub fn build_vec<T, G>(len: usize, generate: G) -> Vec<T>
where
    T: Send + Default + Clone,
    G: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); len];
    for_each_mut(&mut out, |i, slot| *slot = generate(i));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_cover_range_exactly() {
        for len in [0usize, 1, 7, 100, 4097] {
            for parts in [1usize, 2, 3, 8, 200] {
                let cs = chunks(len, parts);
                if len == 0 {
                    assert!(cs.is_empty());
                    continue;
                }
                assert_eq!(cs[0].0, 0);
                assert_eq!(cs.last().unwrap().1, len);
                for w in cs.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                    assert!(w[0].0 < w[0].1);
                }
                assert!(cs.len() <= parts.min(len));
            }
        }
    }

    #[test]
    fn for_each_chunk_visits_everything_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        for_each_chunk(n, |a, b| {
            for h in &hits[a..b] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_mut_matches_sequential() {
        let n = 9001;
        let mut par = vec![0u64; n];
        for_each_mut(&mut par, |i, v| *v = (i as u64) * 3 + 1);
        let seq: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_reduce_sums_correctly() {
        let n = 50_000usize;
        let total = map_reduce(n, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn map_reduce_is_deterministic_for_order_sensitive_combine() {
        // Fold partials into a Vec — result must always be in chunk order.
        let n = 20_000usize;
        let a = map_reduce(
            n,
            Vec::new,
            |mut acc: Vec<usize>, i| {
                if i % 5000 == 0 {
                    acc.push(i);
                }
                acc
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(a, vec![0, 5000, 10000, 15000]);
    }

    #[test]
    fn small_inputs_run_inline() {
        // Must not deadlock or spawn for trivial sizes.
        let mut v = vec![0u8; 16];
        for_each_mut(&mut v, |i, x| *x = i as u8);
        assert_eq!(v[15], 15);
        let s = map_reduce(10, || 0usize, |a, i| a + i, |a, b| a + b);
        assert_eq!(s, 45);
    }

    #[test]
    fn thread_override_roundtrip() {
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn build_vec_matches_generator() {
        let v = build_vec(8192, |i| i as u32 ^ 0xdead);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 ^ 0xdead));
    }
}
