//! `eta-par` — a minimal, dependency-light data-parallel substrate.
//!
//! The EtaGraph reproduction needs a small slice of what `rayon` offers:
//! chunked parallel-for over index ranges and slices, and deterministic
//! map-reduce. Rather than pull in a work-stealing scheduler, we build that
//! slice on `crossbeam::scope`, which is plenty for the regular, statically
//! partitionable loops that dominate graph generation, analysis and the CPU
//! reference algorithms.
//!
//! Design points:
//!
//! * **Static chunking.** Work is split into `num_threads` contiguous chunks.
//!   All our loops are dense index ranges with near-uniform per-element cost
//!   (edge generation, label init, histogram builds), so static partitioning
//!   is within a few percent of a work-stealing schedule and keeps the
//!   implementation obviously correct.
//! * **Deterministic reduction.** [`map_reduce`] always folds per-thread
//!   partials in thread-index order, so floating-point and other
//!   non-commutative reductions are reproducible run to run.
//! * **Small-input fast path.** Inputs below [`PAR_THRESHOLD`] run inline on
//!   the calling thread; spawning threads for tiny loops costs more than it
//!   saves.

pub mod sort;

pub use sort::par_sort_by_key;

use std::cell::Cell;
use std::num::NonZeroUsize;

/// Inputs smaller than this run sequentially on the calling thread.
pub const PAR_THRESHOLD: usize = 4096;

thread_local! {
    /// Per-thread override of the worker count; `0` means "use the
    /// machine's available parallelism". Thread-local on purpose: the
    /// spawn decision is made on the calling thread, and a process-global
    /// override would leak between concurrently-running tests in the same
    /// binary (cargo's default test harness runs them on a thread pool).
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Scoped override of the number of worker threads used by this module on
/// the *calling thread*. The previous override is restored on drop, so
/// overrides nest and cannot leak across tests — the replacement for the
/// old process-global `set_threads`, which raced every concurrently
/// running test in the same binary.
///
/// ```
/// let _guard = eta_par::ThreadGuard::set(1);
/// // every eta-par call on this thread is now single-threaded
/// ```
#[derive(Debug)]
pub struct ThreadGuard {
    prev: usize,
}

impl ThreadGuard {
    /// Overrides the worker count until the guard drops. `0` restores the
    /// default (the machine's available parallelism).
    #[must_use = "the override ends when the guard drops"]
    pub fn set(n: usize) -> ThreadGuard {
        let prev = THREAD_OVERRIDE.with(|o| o.replace(n));
        ThreadGuard { prev }
    }
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Number of worker threads a parallel call will use.
pub fn current_threads() -> usize {
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o != 0 {
        return o;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `len` items into at most `parts` contiguous `(start, end)` chunks.
///
/// Every chunk is non-empty and the chunks exactly cover `0..len` in order.
pub fn chunks(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < rem);
        out.push((start, start + sz));
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

/// Runs `body(start, end)` over disjoint chunks of `0..len` in parallel.
///
/// `body` must be safe to run concurrently on disjoint ranges; the usual
/// pattern is to capture only shared immutable state plus atomics.
pub fn for_each_chunk<F>(len: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = current_threads();
    if len < PAR_THRESHOLD || threads <= 1 {
        if len > 0 {
            body(0, len);
        }
        return;
    }
    let parts = chunks(len, threads);
    crossbeam::scope(|s| {
        for &(a, b) in &parts {
            let body = &body;
            s.spawn(move |_| body(a, b));
        }
    })
    .expect("eta-par worker panicked");
}

/// Parallel in-place transform of a mutable slice, chunk by chunk.
pub fn for_each_mut<T, F>(data: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = current_threads();
    if data.len() < PAR_THRESHOLD || threads <= 1 {
        for (i, item) in data.iter_mut().enumerate() {
            body(i, item);
        }
        return;
    }
    spawn_over_chunks(threads, data, &body);
}

/// Parallel in-place transform with an **explicit** worker count and no
/// small-input fast path: every element runs under the chunked schedule
/// even for a handful of items. This is the primitive for few-but-heavy
/// work units — e.g. the simulator's per-SM replay stages, where the item
/// count (~tens of SMs) never clears [`PAR_THRESHOLD`] but each item is
/// millions of cache probes. `threads <= 1` runs inline on the caller.
pub fn for_each_mut_threads<T, F>(threads: usize, data: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if threads <= 1 || data.len() <= 1 {
        for (i, item) in data.iter_mut().enumerate() {
            body(i, item);
        }
        return;
    }
    spawn_over_chunks(threads, data, &body);
}

/// Shared worker spawn: splits `data` at exact chunk boundaries so each
/// worker owns a disjoint `&mut` region, then runs `body` under a scope.
fn spawn_over_chunks<T, F>(threads: usize, data: &mut [T], body: &F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let parts = chunks(data.len(), threads);
    let mut rest = data;
    let mut slices = Vec::with_capacity(parts.len());
    let mut consumed = 0;
    for &(a, b) in &parts {
        let (head, tail) = rest.split_at_mut(b - a);
        slices.push((consumed, head));
        rest = tail;
        consumed = b;
    }
    crossbeam::scope(|s| {
        for (offset, chunk) in slices {
            s.spawn(move |_| {
                for (i, item) in chunk.iter_mut().enumerate() {
                    body(offset + i, item);
                }
            });
        }
    })
    .expect("eta-par worker panicked");
}

/// Parallel map-reduce over `0..len` with a deterministic fold order.
///
/// Each worker folds its chunk with `fold` starting from `identity()`; the
/// per-thread partials are then combined with `combine` in chunk order, so
/// the result is independent of thread scheduling.
pub fn map_reduce<T, I, F, C>(len: usize, identity: I, fold: F, combine: C) -> T
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(T, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let threads = current_threads();
    if len < PAR_THRESHOLD || threads <= 1 {
        let mut acc = identity();
        for i in 0..len {
            acc = fold(acc, i);
        }
        return acc;
    }
    let parts = chunks(len, threads);
    let partials: Vec<T> = crossbeam::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|&(a, b)| {
                let identity = &identity;
                let fold = &fold;
                s.spawn(move |_| {
                    let mut acc = identity();
                    for i in a..b {
                        acc = fold(acc, i);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("eta-par worker panicked"))
            .collect()
    })
    .expect("eta-par scope failed");
    let mut iter = partials.into_iter();
    let first = iter.next().expect("chunks() never returns empty for len>0");
    iter.fold(first, combine)
}

/// Convenience: parallel generation of a `Vec<T>` where element `i` is
/// `gen(i)`.
pub fn build_vec<T, G>(len: usize, generate: G) -> Vec<T>
where
    T: Send + Default + Clone,
    G: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); len];
    for_each_mut(&mut out, |i, slot| *slot = generate(i));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn chunks_cover_range_exactly() {
        for len in [0usize, 1, 7, 100, 4097] {
            for parts in [1usize, 2, 3, 8, 200] {
                let cs = chunks(len, parts);
                if len == 0 {
                    assert!(cs.is_empty());
                    continue;
                }
                assert_eq!(cs[0].0, 0);
                assert_eq!(cs.last().unwrap().1, len);
                for w in cs.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                    assert!(w[0].0 < w[0].1);
                }
                assert!(cs.len() <= parts.min(len));
            }
        }
    }

    #[test]
    fn for_each_chunk_visits_everything_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        for_each_chunk(n, |a, b| {
            for h in &hits[a..b] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_mut_matches_sequential() {
        let n = 9001;
        let mut par = vec![0u64; n];
        for_each_mut(&mut par, |i, v| *v = (i as u64) * 3 + 1);
        let seq: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_reduce_sums_correctly() {
        let n = 50_000usize;
        let total = map_reduce(n, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn map_reduce_is_deterministic_for_order_sensitive_combine() {
        // Fold partials into a Vec — result must always be in chunk order.
        let n = 20_000usize;
        let a = map_reduce(
            n,
            Vec::new,
            |mut acc: Vec<usize>, i| {
                if i % 5000 == 0 {
                    acc.push(i);
                }
                acc
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(a, vec![0, 5000, 10000, 15000]);
    }

    #[test]
    fn small_inputs_run_inline() {
        // Must not deadlock or spawn for trivial sizes.
        let mut v = vec![0u8; 16];
        for_each_mut(&mut v, |i, x| *x = i as u8);
        assert_eq!(v[15], 15);
        let s = map_reduce(10, || 0usize, |a, i| a + i, |a, b| a + b);
        assert_eq!(s, 45);
    }

    #[test]
    fn thread_override_roundtrip() {
        {
            let _g = ThreadGuard::set(3);
            assert_eq!(current_threads(), 3);
        }
        assert!(current_threads() >= 1);
    }

    #[test]
    fn thread_guards_nest_and_restore() {
        let _outer = ThreadGuard::set(2);
        assert_eq!(current_threads(), 2);
        {
            let _inner = ThreadGuard::set(7);
            assert_eq!(current_threads(), 7);
        }
        assert_eq!(current_threads(), 2, "inner guard restored the outer");
    }

    /// Regression (PR 9): the override used to be a process-global
    /// `AtomicUsize`, so two tests pinning thread counts concurrently
    /// clobbered each other. With the scoped, thread-local guard, two
    /// strictly interleaved guards on different threads must never observe
    /// each other's override.
    #[test]
    fn interleaved_guards_do_not_observe_each_other() {
        use std::sync::mpsc;
        let (to_b, from_a) = mpsc::channel::<()>();
        let (to_a, from_b) = mpsc::channel::<()>();
        let a = std::thread::spawn(move || {
            let _g = ThreadGuard::set(2);
            to_b.send(()).unwrap(); // B now sets its own override...
            from_b.recv().unwrap(); // ...and has done so before we re-read.
            let seen = current_threads();
            to_b.send(()).unwrap();
            seen
        });
        let b = std::thread::spawn(move || {
            from_a.recv().unwrap();
            let _g = ThreadGuard::set(5);
            to_a.send(()).unwrap();
            from_a.recv().unwrap(); // A has re-read while our guard is live.
            current_threads()
        });
        assert_eq!(a.join().unwrap(), 2, "thread A sees only its own guard");
        assert_eq!(b.join().unwrap(), 5, "thread B sees only its own guard");
    }

    #[test]
    fn for_each_mut_threads_ignores_the_small_input_fast_path() {
        // 8 items is far below PAR_THRESHOLD; the explicit-thread primitive
        // must still visit every element exactly once with correct indices.
        for threads in [0usize, 1, 2, 8, 64] {
            let mut v = vec![0usize; 8];
            for_each_mut_threads(threads, &mut v, |i, x| *x = i * 10);
            let want: Vec<usize> = (0..8).map(|i| i * 10).collect();
            assert_eq!(v, want, "threads = {threads}");
        }
        let mut empty: Vec<u8> = Vec::new();
        for_each_mut_threads(4, &mut empty, |_, _| unreachable!());
    }

    #[test]
    fn build_vec_matches_generator() {
        let v = build_vec(8192, |i| i as u32 ^ 0xdead);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 ^ 0xdead));
    }
}
