//! Parallel merge sort on the scoped-thread substrate.
//!
//! Chunked sort + pairwise parallel merges: split the input into one chunk
//! per worker, `sort_unstable_by_key` each chunk concurrently, then merge
//! pairs of runs (each merge on its own worker) until one run remains.
//! Stable across thread counts (ties keep chunk order within each merge),
//! and falls back to the standard sort below [`crate::PAR_THRESHOLD`].
//!
//! Built for the graph builders: sorting tens of millions of edge indices
//! dominates dataset construction, and this cuts it by ~the worker count.

use crate::{chunks, current_threads, PAR_THRESHOLD};

/// Sorts `data` by `key` using all worker threads.
pub fn par_sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Send + Sync + Copy,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let len = data.len();
    let threads = current_threads();
    if len < PAR_THRESHOLD || threads <= 1 {
        data.sort_unstable_by_key(|x| key(x));
        return;
    }

    // Phase 1: sort disjoint chunks in parallel.
    let bounds = chunks(len, threads);
    {
        let mut rest = &mut *data;
        let mut slices: Vec<&mut [T]> = Vec::with_capacity(bounds.len());
        for &(a, b) in &bounds {
            let (head, tail) = rest.split_at_mut(b - a);
            slices.push(head);
            rest = tail;
        }
        crossbeam::scope(|s| {
            for chunk in slices {
                let key = &key;
                s.spawn(move |_| chunk.sort_unstable_by_key(|x| key(x)));
            }
        })
        .expect("eta-par sort worker panicked");
    }

    // Phase 2: merge runs pairwise until one remains, ping-ponging between
    // `data` itself and one auxiliary buffer (fully rewritten each round).
    let mut runs: Vec<(usize, usize)> = bounds;
    let mut aux: Vec<T> = vec![data[0]; len];
    let mut runs_in_data = true; // which buffer currently holds the runs

    while runs.len() > 1 {
        let mut next_runs = Vec::with_capacity(runs.len().div_ceil(2));
        {
            let (from, to): (&[T], &mut [T]) = if runs_in_data {
                (&*data, &mut aux)
            } else {
                (&aux, data)
            };
            // Carve `to` into per-pair output regions: the output slab and
            // the (up to two) input runs merged into it.
            type MergeRegion<'a, T> = (&'a mut [T], (usize, usize), Option<(usize, usize)>);
            let mut regions: Vec<MergeRegion<'_, T>> = Vec::new();
            let mut rest = to;
            let mut offset = 0;
            let mut i = 0;
            while i < runs.len() {
                let a = runs[i];
                let b = runs.get(i + 1).copied();
                let span = b.map_or(a.1 - a.0, |b| b.1 - a.0);
                let (head, tail) = rest.split_at_mut(span);
                regions.push((head, a, b));
                next_runs.push((offset, offset + span));
                offset += span;
                rest = tail;
                i += 2;
            }
            crossbeam::scope(|s| {
                for (out, a, b) in regions {
                    let key = &key;
                    s.spawn(move |_| match b {
                        None => out.copy_from_slice(&from[a.0..a.1]),
                        Some(b) => merge_by_key(&from[a.0..a.1], &from[b.0..b.1], out, key),
                    });
                }
            })
            .expect("eta-par merge worker panicked");
        }
        runs = next_runs;
        runs_in_data = !runs_in_data;
    }

    // Copy back only if the final round left the result in the aux buffer.
    if !runs_in_data {
        data.copy_from_slice(&aux);
    }
}

fn merge_by_key<T: Copy, K: Ord, F: Fn(&T) -> K>(a: &[T], b: &[T], out: &mut [T], key: &F) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => key(x) <= key(y),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("output longer than inputs"),
        };
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadGuard;

    fn pseudo_random(n: usize, seed: u64) -> Vec<(u32, u32)> {
        (0..n as u64)
            .map(|i| {
                let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((z >> 32) as u32 % 1000, z as u32)
            })
            .collect()
    }

    #[test]
    fn matches_std_sort_on_random_input() {
        let mut a = pseudo_random(50_000, 7);
        let mut b = a.clone();
        par_sort_by_key(&mut a, |&(k, v)| (k, v));
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn small_inputs_use_the_sequential_path() {
        let mut v = vec![(3u32, 0u32), (1, 0), (2, 0)];
        par_sort_by_key(&mut v, |&(k, _)| k);
        assert_eq!(v, vec![(1, 0), (2, 0), (3, 0)]);
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let mut asc: Vec<(u32, u32)> = (0..20_000).map(|i| (i, 0)).collect();
        let want = asc.clone();
        par_sort_by_key(&mut asc, |&(k, _)| k);
        assert_eq!(asc, want);

        let mut desc: Vec<(u32, u32)> = (0..20_000).rev().map(|i| (i, 0)).collect();
        par_sort_by_key(&mut desc, |&(k, _)| k);
        assert_eq!(desc, want);
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let input = pseudo_random(30_000, 9);
        let mut results = Vec::new();
        for t in [1usize, 2, 3, 8] {
            let _g = ThreadGuard::set(t);
            let mut v = input.clone();
            par_sort_by_key(&mut v, |&(k, _)| k);
            // Sort by key only: equal keys may order differently per merge
            // structure, so compare keys.
            let keys: Vec<u32> = v.iter().map(|&(k, _)| k).collect();
            results.push(keys);
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn duplicate_heavy_input() {
        let mut v: Vec<(u32, u32)> = (0..40_000).map(|i| (i % 3, i)).collect();
        par_sort_by_key(&mut v, |&(k, _)| k);
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(v.len(), 40_000);
    }

    #[test]
    fn odd_number_of_runs_merges_cleanly() {
        let _g = ThreadGuard::set(3); // three runs: exercises the unpaired-run copy path
        let mut v = pseudo_random(30_000, 5);
        let mut want = v.clone();
        par_sort_by_key(&mut v, |&(k, v)| (k, v));
        want.sort_unstable();
        assert_eq!(v, want);
    }
}
