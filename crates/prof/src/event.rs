//! The event model: tracks, argument values, and recorded events.

use crate::fmt;
use crate::Ns;

/// Which logical track (Chrome trace `tid`) an event belongs to. One track
/// per resource class keeps kernel and transfer activity visually separate
/// in Perfetto, which is what makes overlap *visible*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Kernel launches on the SMs.
    Kernel,
    /// Explicit PCIe copies (`copy_h2d` / `copy_d2h`).
    Transfer,
    /// Unified-memory and mapped-host traffic: fault migrations, prefetches,
    /// evictions, and per-launch aggregate zero-copy reads.
    Um,
    /// Engine-level spans: whole queries and per-BFS-iteration frontiers.
    Iteration,
    /// Serve-scheduler events: arrivals, rejections, batches.
    Sched,
    /// Fault-injection events: ECC errors, hangs, UM failures, retries,
    /// quarantines, CPU fallbacks (see eta-fault and PROFILING.md).
    Fault,
    /// Checkpoint/resume activity: snapshot spans at iteration boundaries,
    /// resume spans, and migration instants (see eta-ckpt).
    Ckpt,
    /// Peer-to-peer (NVLink-style) device-to-device transfers: the sharded
    /// engine's halo frontier/label exchanges (see eta-shard and eta-mem's
    /// `PeerFabric`).
    Peer,
    /// Overload-control events: infeasible-deadline admissions, sheds,
    /// tenant throttles, retry-budget denials, and brownout transitions
    /// (see eta-serve's `qos` module).
    Qos,
}

impl Track {
    /// Stable Chrome trace thread id for the track.
    pub fn tid(self) -> u32 {
        match self {
            Track::Kernel => 1,
            Track::Transfer => 2,
            Track::Um => 3,
            Track::Iteration => 4,
            Track::Sched => 5,
            Track::Fault => 6,
            Track::Ckpt => 7,
            Track::Peer => 8,
            Track::Qos => 9,
        }
    }

    /// Human label, used for Chrome `thread_name` metadata and summaries.
    pub fn label(self) -> &'static str {
        match self {
            Track::Kernel => "kernels",
            Track::Transfer => "pcie transfers",
            Track::Um => "unified memory",
            Track::Iteration => "engine iterations",
            Track::Sched => "scheduler",
            Track::Fault => "faults",
            Track::Ckpt => "checkpoints",
            Track::Peer => "peer links",
            Track::Qos => "qos",
        }
    }

    /// All tracks, in tid order.
    pub fn all() -> [Track; 9] {
        [
            Track::Kernel,
            Track::Transfer,
            Track::Um,
            Track::Iteration,
            Track::Sched,
            Track::Fault,
            Track::Ckpt,
            Track::Peer,
            Track::Qos,
        ]
    }
}

/// A typed event argument (counter snapshot, byte count, reason string…).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl ArgValue {
    /// The value as a JSON fragment (deterministic formatting).
    pub fn to_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) => fmt::f64_json(*v),
            ArgValue::Str(s) => format!("\"{}\"", fmt::json_escape(s)),
            ArgValue::Bool(b) => b.to_string(),
        }
    }

    /// Numeric view, for counter aggregation. Strings and bools are not
    /// counters and return `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ArgValue::U64(v) => Some(*v as f64),
            ArgValue::F64(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// One recorded span (or instant, when `start == end`) on simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub name: String,
    pub track: Track,
    pub start: Ns,
    pub end: Ns,
    /// Ordered key/value pairs; order is part of the deterministic output.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    pub fn duration(&self) -> Ns {
        self.end.saturating_sub(self.start)
    }

    /// An instant has zero extent and renders as a Chrome instant event.
    pub fn is_instant(&self) -> bool {
        self.start == self.end
    }

    /// The event's `args` object as a JSON fragment, `{}` when empty.
    pub fn args_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(k);
            out.push_str("\":");
            out.push_str(&v.to_json());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_stable_and_distinct() {
        let mut seen: Vec<u32> = Track::all().iter().map(|t| t.tid()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), Track::all().len());
        assert_eq!(Track::Kernel.tid(), 1);
        assert_eq!(Track::Transfer.tid(), 2);
    }

    #[test]
    fn arg_values_render_deterministic_json() {
        assert_eq!(ArgValue::from(7u64).to_json(), "7");
        assert_eq!(ArgValue::from(0.25).to_json(), "0.250000");
        assert_eq!(ArgValue::from("a\"b").to_json(), "\"a\\\"b\"");
        assert_eq!(ArgValue::from(true).to_json(), "true");
    }

    #[test]
    fn args_object_preserves_order() {
        let e = Event {
            name: "k".into(),
            track: Track::Kernel,
            start: 0,
            end: 5,
            args: vec![("cycles", 10u64.into()), ("ipc", 0.5.into())],
        };
        assert_eq!(e.args_json(), "{\"cycles\":10,\"ipc\":0.500000}");
        assert_eq!(e.duration(), 5);
        assert!(!e.is_instant());
    }
}
