//! Deterministic, allocation-light formatting helpers shared by the sinks.
//!
//! Everything here is integer math or fixed-precision float formatting so a
//! profile renders byte-identically on every run and platform. No locale,
//! no shortest-float heuristics on values users diff.

use crate::Ns;

/// Microseconds with fixed three-decimal nanosecond remainder: `1234` ns
/// renders as `1.234`. Chrome trace timestamps are microseconds; doing the
/// division in integer space keeps traces byte-stable.
pub fn us(ns: Ns) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Human duration in the unit nvprof would pick, fixed three decimals.
pub fn dur(ns: Ns) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else if ns < 1_000_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else {
        format!(
            "{}.{:03}s",
            ns / 1_000_000_000,
            (ns % 1_000_000_000) / 1_000_000
        )
    }
}

/// Fixed-precision float for JSON and tables. `{:.6}` is deterministic for
/// a given value; all profiled floats are themselves deterministic.
pub fn f64_json(x: f64) -> String {
    if x.is_finite() {
        // Normalize negative zero (e.g. `-0.4e-7` rounded to six places, or
        // `0.0 * -1.0` from an empty-window division): `-0.000000` and
        // `0.000000` are the same value and must format identically.
        let x = if x == 0.0 { 0.0 } else { x };
        format!("{x:.6}")
    } else {
        // JSON has no NaN/inf; counters should never produce them, but a
        // sink must not emit invalid JSON if one slips through.
        "null".to_string()
    }
}

/// Percentage with two decimals, e.g. `43.21%`. Non-finite fractions (a
/// 0/0 share from an empty window) render as a stable `--%` token, and
/// negative zero is normalized, so the output is byte-stable for every
/// input.
pub fn pct(fraction: f64) -> String {
    if !fraction.is_finite() {
        return "--%".to_string();
    }
    let scaled = fraction * 100.0;
    let scaled = if scaled == 0.0 { 0.0 } else { scaled };
    format!("{scaled:.2}%")
}

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_is_integer_math() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn dur_picks_nvprof_units() {
        assert_eq!(dur(999), "999ns");
        assert_eq!(dur(1_500), "1.500us");
        assert_eq!(dur(2_345_678), "2.345ms");
        assert_eq!(dur(3_000_000_000), "3.000s");
    }

    #[test]
    fn floats_are_fixed_precision_and_json_safe() {
        assert_eq!(f64_json(0.5), "0.500000");
        assert_eq!(f64_json(f64::NAN), "null");
        assert_eq!(f64_json(f64::INFINITY), "null");
        assert_eq!(pct(0.4321), "43.21%");
    }

    #[test]
    fn edge_values_format_byte_stably() {
        // Negative zero (0/−x, or a tiny negative rounded to zero) must not
        // leak a sign into diffs against the positive-zero path.
        assert_eq!(f64_json(-0.0), "0.000000");
        assert_eq!(f64_json(-1e-12), "-0.000000");
        assert_eq!(pct(-0.0), "0.00%");
        assert_eq!(pct(0.0), "0.00%");
        // Shares from an empty window (0/0 or x/0) get a stable token
        // instead of `NaN%`/`inf%`.
        assert_eq!(pct(f64::NAN), "--%");
        assert_eq!(pct(f64::INFINITY), "--%");
        assert_eq!(pct(f64::NEG_INFINITY), "--%");
    }

    #[test]
    fn escaping_covers_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
