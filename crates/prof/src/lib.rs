//! `eta-prof` — an nvprof/Nsight-analogue profiler for the simulated GPU.
//!
//! Every layer of the reproduction records structured events here, on
//! *simulated* time: kernel launches with per-launch counter snapshots
//! (`eta-sim`), PCIe copies and unified-memory migrations/prefetches/
//! evictions (`eta-mem`), per-BFS-iteration frontier statistics
//! (`etagraph::engine`), and queue/batch/admission events from the serve
//! scheduler (`eta-serve`). A profile exports through three sinks:
//!
//! * [`Profile::summary_text`] — an nvprof-style per-kernel table plus a
//!   counter report,
//! * [`Profile::to_json`] — a machine-readable profile (`eta-prof-v1`),
//! * [`Profile::to_chrome_trace`] — Chrome `trace_event` JSON loadable in
//!   `chrome://tracing` / Perfetto, with kernels and transfers on distinct
//!   tracks so transfer/compute overlap is visible.
//!
//! Because all timestamps are deterministic simulated nanoseconds and all
//! sinks are hand-formatted with integer math, every export is
//! byte-identical across runs. A disabled [`Profiler`] (the default) is
//! zero-cost: no allocation, no recording.
//!
//! # Module map
//!
//! * [`event`] — [`Track`]s, typed [`ArgValue`]s, and the [`Event`] record
//! * [`profiler`] — the [`Profiler`] recorder with nested spans
//! * [`profile`] — assembled [`Profile`]s, overlap math, and the sinks
//! * [`fmt`] — deterministic formatting shared by the sinks
//!
//! # Example
//!
//! ```
//! use eta_prof::{Profile, Profiler, Track};
//!
//! let mut prof = Profiler::new(true);
//! prof.record(Track::Kernel, "bfs_expand", 0, 900, vec![("cycles", 450u64.into())]);
//! prof.record(Track::Um, "um_migration", 500, 1_200, vec![("bytes", 8192u64.into())]);
//! let profile = Profile::single("device", prof.events().to_vec());
//! assert_eq!(profile.overlap_ns(), 400); // migration hidden under compute
//! assert!(profile.to_chrome_trace().contains("\"ph\":\"X\""));
//! ```

pub mod event;
pub mod fmt;
pub mod profile;
pub mod profiler;

/// Simulated nanoseconds (the workspace-wide clock unit).
pub type Ns = u64;

pub use event::{ArgValue, Event, Track};
pub use profile::{CounterStat, KernelCounters, Profile, ProfileProcess, Summary, SummaryRow};
pub use profiler::Profiler;
