//! Assembled profiles and their three sinks: nvprof-style text summary,
//! machine-readable JSON, and a Chrome `trace_event` file for Perfetto.

use crate::event::{Event, Track};
use crate::fmt;
use crate::Ns;

/// One process row in the trace: a device, or the serve scheduler.
#[derive(Debug, Clone)]
pub struct ProfileProcess {
    pub pid: u32,
    pub name: String,
    pub events: Vec<Event>,
}

/// A complete profile: one or more processes' recordings, assembled after a
/// run. Single-device runs have one process; a serve run has the scheduler
/// as process 1 and each device worker after it.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    pub processes: Vec<ProfileProcess>,
}

/// Aggregated statistics for one `(track, name)` group, nvprof-row style.
#[derive(Debug, Clone)]
pub struct SummaryRow {
    pub track: Track,
    pub name: String,
    pub calls: u64,
    pub total_ns: Ns,
    pub min_ns: Ns,
    pub max_ns: Ns,
    /// Sum of the group's `bytes` args (transfer rows; 0 elsewhere).
    pub bytes: u64,
}

impl SummaryRow {
    pub fn avg_ns(&self) -> Ns {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// Min/avg/max of one numeric counter across a kernel's launches.
#[derive(Debug, Clone)]
pub struct CounterStat {
    pub name: &'static str,
    pub avg: f64,
    pub min: f64,
    pub max: f64,
}

/// Per-kernel counter aggregation (the `nvprof --metrics` analogue).
#[derive(Debug, Clone)]
pub struct KernelCounters {
    pub kernel: String,
    pub calls: u64,
    pub counters: Vec<CounterStat>,
}

/// Everything the text sink prints, exposed as data so callers (the bench
/// `report profile` artifact, the CLI) can re-serialize it without parsing.
#[derive(Debug, Clone)]
pub struct Summary {
    pub rows: Vec<SummaryRow>,
    pub kernel_counters: Vec<KernelCounters>,
    pub kernel_busy_ns: Ns,
    pub transfer_busy_ns: Ns,
    pub overlap_ns: Ns,
    /// Fraction of transfer busy time hidden under compute (the same
    /// definition as `eta_mem::timeline::Timeline::overlap_fraction`).
    pub overlap_fraction: f64,
    pub makespan_ns: Ns,
    pub event_count: usize,
}

impl Profile {
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-process profile (the common non-serve case).
    pub fn single(name: &str, events: Vec<Event>) -> Self {
        let mut p = Self::new();
        p.push(name, events);
        p
    }

    /// Appends a process; pids are assigned in push order starting at 1.
    pub fn push(&mut self, name: &str, events: Vec<Event>) {
        let pid = self.processes.len() as u32 + 1;
        self.processes.push(ProfileProcess {
            pid,
            name: name.to_string(),
            events,
        });
    }

    pub fn event_count(&self) -> usize {
        self.processes.iter().map(|p| p.events.len()).sum()
    }

    /// Merged busy time of kernel-track spans, summed over processes
    /// (each process has its own clock, so intervals never merge across).
    pub fn kernel_busy_ns(&self) -> Ns {
        self.busy(|t| t == Track::Kernel)
    }

    /// Merged busy time of transfer-class spans (PCIe copies + UM traffic).
    pub fn transfer_busy_ns(&self) -> Ns {
        self.busy(|t| t == Track::Transfer || t == Track::Um)
    }

    /// Time during which a transfer span and a kernel span are simultaneously
    /// active within the same process.
    pub fn overlap_ns(&self) -> Ns {
        self.processes
            .iter()
            .map(|p| {
                let kern = intervals(&p.events, |t| t == Track::Kernel);
                let xfer = intervals(&p.events, |t| t == Track::Transfer || t == Track::Um);
                intersect_length(kern, xfer)
            })
            .sum()
    }

    /// Fraction of transfer busy time hidden under compute.
    pub fn overlap_fraction(&self) -> f64 {
        let t = self.transfer_busy_ns();
        if t == 0 {
            return 0.0;
        }
        self.overlap_ns() as f64 / t as f64
    }

    /// Latest event end across all processes.
    pub fn makespan_ns(&self) -> Ns {
        self.processes
            .iter()
            .flat_map(|p| p.events.iter())
            .map(|e| e.end)
            .max()
            .unwrap_or(0)
    }

    fn busy<F: Fn(Track) -> bool>(&self, pred: F) -> Ns {
        self.processes
            .iter()
            .map(|p| {
                let iv = intervals(&p.events, &pred);
                iv.iter().map(|&(a, b)| b - a).sum::<Ns>()
            })
            .sum()
    }

    /// Aggregates the recording into nvprof-style rows and counter tables.
    pub fn summary(&self) -> Summary {
        let mut rows: Vec<SummaryRow> = Vec::new();
        for p in &self.processes {
            for e in &p.events {
                let dur = e.duration();
                let bytes = e
                    .args
                    .iter()
                    .find(|(k, _)| *k == "bytes")
                    .and_then(|(_, v)| v.as_f64())
                    .unwrap_or(0.0) as u64;
                match rows
                    .iter_mut()
                    .find(|r| r.track == e.track && r.name == e.name)
                {
                    Some(r) => {
                        r.calls += 1;
                        r.total_ns += dur;
                        r.min_ns = r.min_ns.min(dur);
                        r.max_ns = r.max_ns.max(dur);
                        r.bytes += bytes;
                    }
                    None => rows.push(SummaryRow {
                        track: e.track,
                        name: e.name.clone(),
                        calls: 1,
                        total_ns: dur,
                        min_ns: dur,
                        max_ns: dur,
                        bytes,
                    }),
                }
            }
        }
        // nvprof sorts within a section by time share; ties break on name so
        // the output is a total order (byte-identical across runs).
        rows.sort_by(|a, b| {
            a.track
                .tid()
                .cmp(&b.track.tid())
                .then(b.total_ns.cmp(&a.total_ns))
                .then(a.name.cmp(&b.name))
        });

        let mut kernel_counters: Vec<KernelCounters> = Vec::new();
        for p in &self.processes {
            for e in p.events.iter().filter(|e| e.track == Track::Kernel) {
                let kc = match kernel_counters.iter_mut().find(|k| k.kernel == e.name) {
                    Some(kc) => kc,
                    None => {
                        kernel_counters.push(KernelCounters {
                            kernel: e.name.clone(),
                            calls: 0,
                            counters: Vec::new(),
                        });
                        kernel_counters.last_mut().expect("just pushed")
                    }
                };
                kc.calls += 1;
                for (k, v) in &e.args {
                    let Some(x) = v.as_f64() else { continue };
                    match kc.counters.iter_mut().find(|c| c.name == *k) {
                        Some(c) => {
                            // Accumulate the sum in `avg`; finalized below.
                            c.avg += x;
                            c.min = c.min.min(x);
                            c.max = c.max.max(x);
                        }
                        None => kc.counters.push(CounterStat {
                            name: k,
                            avg: x,
                            min: x,
                            max: x,
                        }),
                    }
                }
            }
        }
        for kc in &mut kernel_counters {
            for c in &mut kc.counters {
                c.avg /= kc.calls as f64;
            }
        }
        kernel_counters.sort_by(|a, b| a.kernel.cmp(&b.kernel));

        Summary {
            rows,
            kernel_counters,
            kernel_busy_ns: self.kernel_busy_ns(),
            transfer_busy_ns: self.transfer_busy_ns(),
            overlap_ns: self.overlap_ns(),
            overlap_fraction: self.overlap_fraction(),
            makespan_ns: self.makespan_ns(),
            event_count: self.event_count(),
        }
    }

    /// The nvprof-style text report.
    pub fn summary_text(&self) -> String {
        let s = self.summary();
        let mut out = String::new();
        out.push_str(&format!(
            "==eta-prof== profile summary (simulated time, makespan {}, {} events)\n",
            fmt::dur(s.makespan_ns),
            s.event_count
        ));
        let names: Vec<&str> = self.processes.iter().map(|p| p.name.as_str()).collect();
        out.push_str(&format!("==eta-prof== processes: {}\n", names.join(", ")));

        for track in Track::all() {
            let rows: Vec<&SummaryRow> = s.rows.iter().filter(|r| r.track == track).collect();
            if rows.is_empty() {
                continue;
            }
            let total: Ns = rows.iter().map(|r| r.total_ns).sum();
            out.push_str(&format!("\n{}:\n", track.label()));
            out.push_str(&format!(
                "{:>8} {:>12} {:>7} {:>12} {:>12} {:>12}  {}\n",
                "Time(%)", "Time", "Calls", "Avg", "Min", "Max", "Name"
            ));
            for r in rows {
                let share = if total == 0 {
                    0.0
                } else {
                    r.total_ns as f64 / total as f64
                };
                out.push_str(&format!(
                    "{:>8} {:>12} {:>7} {:>12} {:>12} {:>12}  {}\n",
                    fmt::pct(share),
                    fmt::dur(r.total_ns),
                    r.calls,
                    fmt::dur(r.avg_ns()),
                    fmt::dur(r.min_ns),
                    fmt::dur(r.max_ns),
                    r.name
                ));
            }
        }

        if !s.kernel_counters.is_empty() {
            out.push_str("\nkernel counters (avg / min / max over launches):\n");
            for kc in &s.kernel_counters {
                out.push_str(&format!("  {} ({} launches)\n", kc.kernel, kc.calls));
                for c in &kc.counters {
                    out.push_str(&format!(
                        "    {:<24} {} / {} / {}\n",
                        c.name,
                        fmt::f64_json(c.avg),
                        fmt::f64_json(c.min),
                        fmt::f64_json(c.max)
                    ));
                }
            }
        }

        out.push_str(&format!(
            "\ntransfer/compute overlap: {} of {} transfer busy ({})\n",
            fmt::dur(s.overlap_ns),
            fmt::dur(s.transfer_busy_ns),
            fmt::pct(s.overlap_fraction)
        ));
        out
    }

    /// The machine-readable profile (schema `eta-prof-v1`), hand-formatted
    /// so it is byte-identical across runs.
    pub fn to_json(&self) -> String {
        let s = self.summary();
        let mut out = String::from("{\n  \"schema\": \"eta-prof-v1\",\n  \"processes\": [\n");
        for (pi, p) in self.processes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"pid\": {},\n      \"name\": \"{}\",\n      \"events\": [\n",
                p.pid,
                fmt::json_escape(&p.name)
            ));
            for (ei, e) in p.events.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"name\":\"{}\",\"track\":\"{}\",\"tid\":{},\"start_ns\":{},\"end_ns\":{},\"dur_ns\":{},\"args\":{}}}{}\n",
                    fmt::json_escape(&e.name),
                    e.track.label(),
                    e.track.tid(),
                    e.start,
                    e.end,
                    e.duration(),
                    e.args_json(),
                    if ei + 1 < p.events.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "      ]\n    }}{}\n",
                if pi + 1 < self.processes.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n  \"summary\": {\n    \"rows\": [\n");
        for (ri, r) in s.rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"track\":\"{}\",\"name\":\"{}\",\"calls\":{},\"total_ns\":{},\"avg_ns\":{},\"min_ns\":{},\"max_ns\":{},\"bytes\":{}}}{}\n",
                r.track.label(),
                fmt::json_escape(&r.name),
                r.calls,
                r.total_ns,
                r.avg_ns(),
                r.min_ns,
                r.max_ns,
                r.bytes,
                if ri + 1 < s.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("    ],\n    \"kernel_counters\": [\n");
        for (ki, kc) in s.kernel_counters.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"kernel\":\"{}\",\"calls\":{},\"counters\":{{",
                fmt::json_escape(&kc.kernel),
                kc.calls
            ));
            for (ci, c) in kc.counters.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{}\":{{\"avg\":{},\"min\":{},\"max\":{}}}",
                    c.name,
                    fmt::f64_json(c.avg),
                    fmt::f64_json(c.min),
                    fmt::f64_json(c.max)
                ));
            }
            out.push_str(&format!(
                "}}}}{}\n",
                if ki + 1 < s.kernel_counters.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str(&format!(
            "    ],\n    \"kernel_busy_ns\": {},\n    \"transfer_busy_ns\": {},\n    \"overlap_ns\": {},\n    \"overlap_fraction\": {},\n    \"makespan_ns\": {},\n    \"event_count\": {}\n  }}\n}}\n",
            s.kernel_busy_ns,
            s.transfer_busy_ns,
            s.overlap_ns,
            fmt::f64_json(s.overlap_fraction),
            s.makespan_ns,
            s.event_count
        ));
        out
    }

    /// The Chrome `trace_event` sink (JSON object format), loadable in
    /// `chrome://tracing` and Perfetto. Each process gets `process_name`
    /// metadata and one named thread per active track, so kernel and
    /// transfer activity render as distinct rows whose overlap is visible.
    /// Durations are in microseconds (integer math — byte-stable).
    pub fn to_chrome_trace(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for p in &self.processes {
            lines.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                p.pid,
                fmt::json_escape(&p.name)
            ));
            for track in Track::all() {
                if !p.events.iter().any(|e| e.track == track) {
                    continue;
                }
                lines.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                    p.pid,
                    track.tid(),
                    track.label()
                ));
            }
            for e in &p.events {
                if e.is_instant() {
                    lines.push(format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{}}}",
                        fmt::json_escape(&e.name),
                        p.pid,
                        e.track.tid(),
                        fmt::us(e.start),
                        e.args_json()
                    ));
                } else {
                    lines.push(format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{}}}",
                        fmt::json_escape(&e.name),
                        p.pid,
                        e.track.tid(),
                        fmt::us(e.start),
                        fmt::us(e.duration()),
                        e.args_json()
                    ));
                }
            }
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&lines.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

/// Sorted, merged busy intervals of the events matching `pred`.
fn intervals<F: Fn(Track) -> bool>(events: &[Event], pred: F) -> Vec<(Ns, Ns)> {
    let mut iv: Vec<(Ns, Ns)> = events
        .iter()
        .filter(|e| pred(e.track) && e.end > e.start)
        .map(|e| (e.start, e.end))
        .collect();
    iv.sort_unstable();
    let mut out: Vec<(Ns, Ns)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Total length of the intersection of two merged interval sets.
fn intersect_length(a: Vec<(Ns, Ns)>, b: Vec<(Ns, Ns)>) -> Ns {
    let (mut i, mut j) = (0usize, 0usize);
    let mut total = 0;
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArgValue;
    use crate::Profiler;

    fn sample() -> Profile {
        let mut p = Profiler::new(true);
        p.record(
            Track::Kernel,
            "bfs_expand",
            0,
            100,
            vec![("cycles", 50u64.into()), ("ipc", 0.5.into())],
        );
        p.record(
            Track::Kernel,
            "bfs_expand",
            120,
            160,
            vec![("cycles", 30u64.into()), ("ipc", 0.7.into())],
        );
        p.record(
            Track::Um,
            "um_migration",
            50,
            130,
            vec![("bytes", ArgValue::U64(4096))],
        );
        p.instant(
            Track::Sched,
            "reject",
            10,
            vec![("reason", "queue\"full".into())],
        );
        Profile::single("device", p.events().to_vec())
    }

    #[test]
    fn overlap_counts_kernel_transfer_intersection() {
        let p = sample();
        // kernel [0,100)∪[120,160); transfer [50,130) → [50,100)+[120,130).
        assert_eq!(p.overlap_ns(), 60);
        assert_eq!(p.transfer_busy_ns(), 80);
        assert_eq!(p.kernel_busy_ns(), 140);
        assert!((p.overlap_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(p.makespan_ns(), 160);
    }

    #[test]
    fn summary_groups_by_name_and_averages_counters() {
        let s = sample().summary();
        let kernel = s
            .rows
            .iter()
            .find(|r| r.name == "bfs_expand")
            .expect("kernel row");
        assert_eq!(kernel.calls, 2);
        assert_eq!(kernel.total_ns, 140);
        assert_eq!((kernel.min_ns, kernel.max_ns), (40, 100));
        let mig = s
            .rows
            .iter()
            .find(|r| r.name == "um_migration")
            .expect("migration row");
        assert_eq!(mig.bytes, 4096);

        assert_eq!(s.kernel_counters.len(), 1);
        let kc = &s.kernel_counters[0];
        assert_eq!(kc.calls, 2);
        let cycles = kc.counters.iter().find(|c| c.name == "cycles").unwrap();
        assert!((cycles.avg - 40.0).abs() < 1e-12);
        assert!((cycles.min - 30.0).abs() < 1e-12);
        assert!((cycles.max - 50.0).abs() < 1e-12);
    }

    #[test]
    fn sinks_are_byte_identical_across_calls() {
        let p = sample();
        assert_eq!(p.to_chrome_trace(), p.to_chrome_trace());
        assert_eq!(p.to_json(), p.to_json());
        assert_eq!(p.summary_text(), p.summary_text());
        // And across two identically-constructed profiles.
        let q = sample();
        assert_eq!(p.to_chrome_trace(), q.to_chrome_trace());
        assert_eq!(p.to_json(), q.to_json());
    }

    #[test]
    fn chrome_trace_has_metadata_and_distinct_tracks() {
        let trace = sample().to_chrome_trace();
        assert!(trace.contains("\"ph\":\"M\""));
        assert!(trace.contains("\"name\":\"process_name\""));
        assert!(trace.contains("\"name\":\"kernels\""));
        assert!(trace.contains("\"name\":\"unified memory\""));
        // Kernel and transfer events land on different tids.
        assert!(trace.contains("\"tid\":1,\"ts\":0.000"));
        assert!(trace.contains("\"tid\":3,\"ts\":0.050"));
        // Instants use the instant phase with thread scope.
        assert!(trace.contains("\"ph\":\"i\",\"s\":\"t\""));
        // Escaped quote from the rejection reason survives round-tripping.
        assert!(trace.contains("queue\\\"full"));
        assert!(trace.trim_end().ends_with("\"displayTimeUnit\":\"ns\"}"));
    }

    #[test]
    fn json_sink_carries_summary_and_events() {
        let j = sample().to_json();
        assert!(j.contains("\"schema\": \"eta-prof-v1\""));
        assert!(j.contains("\"name\":\"bfs_expand\""));
        assert!(j.contains("\"overlap_ns\": 60"));
        assert!(j.contains("\"cycles\":{\"avg\":40.000000"));
        // Balanced braces/brackets (structural sanity without a parser).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn multi_process_profiles_keep_clocks_separate() {
        let mut a = Profiler::new(true);
        a.record(Track::Kernel, "k", 0, 100, Vec::new());
        let mut b = Profiler::new(true);
        b.record(Track::Um, "um_migration", 0, 100, Vec::new());
        let mut p = Profile::new();
        p.push("scheduler", a.events().to_vec());
        p.push("device0", b.events().to_vec());
        assert_eq!(p.processes[0].pid, 1);
        assert_eq!(p.processes[1].pid, 2);
        // Same wall interval but different processes: no cross-overlap.
        assert_eq!(p.overlap_ns(), 0);
        let trace = p.to_chrome_trace();
        assert!(trace.contains("\"pid\":1"));
        assert!(trace.contains("\"pid\":2"));
    }
}
