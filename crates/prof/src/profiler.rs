//! The recorder: a per-subsystem event sink with zero-cost disable.

use crate::event::{ArgValue, Event, Track};
use crate::Ns;

/// An in-progress nested span, closed by [`Profiler::end`].
#[derive(Debug, Clone)]
struct OpenSpan {
    name: String,
    track: Track,
    start: Ns,
}

/// An append-only event recorder.
///
/// Disabled (the default), every method returns before touching its
/// buffers; since `Vec::new` does not allocate, a disabled profiler never
/// allocates — [`Profiler::allocated_bytes`] stays 0, which the test suite
/// asserts. Enabled, it records spans and instants on *simulated* time, so
/// the recording is deterministic and byte-identical across runs.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    events: Vec<Event>,
    stack: Vec<OpenSpan>,
}

impl Profiler {
    /// A profiler that is recording iff `enabled`.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            events: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// A disabled profiler (what subsystems embed by default).
    pub fn off() -> Self {
        Self::new(false)
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Flips recording. Enabling mid-run starts recording from the next
    /// event; disabling keeps what was already recorded.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Records a complete span. `args` order becomes output order.
    pub fn record(
        &mut self,
        track: Track,
        name: &str,
        start: Ns,
        end: Ns,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(end >= start, "span must not be inverted");
        self.events.push(Event {
            name: name.to_string(),
            track,
            start,
            end,
            args,
        });
    }

    /// Records a zero-duration instant (arrival, rejection, fault…).
    pub fn instant(
        &mut self,
        track: Track,
        name: &str,
        ts: Ns,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.record(track, name, ts, ts, args);
    }

    /// Opens a nested span; close it with [`Profiler::end`]. Spans may nest
    /// arbitrarily; a child is recorded before its parent (it ends first),
    /// which Chrome's containment-based nesting renders correctly.
    pub fn begin(&mut self, track: Track, name: &str, ts: Ns) {
        if !self.enabled {
            return;
        }
        self.stack.push(OpenSpan {
            name: name.to_string(),
            track,
            start: ts,
        });
    }

    /// Closes the innermost open span.
    pub fn end(&mut self, ts: Ns) {
        self.end_with_args(ts, Vec::new());
    }

    /// Closes the innermost open span, attaching args known only at close
    /// time (e.g. the iteration's frontier size). A stray `end` with no
    /// open span is ignored rather than corrupting the recording.
    pub fn end_with_args(&mut self, ts: Ns, args: Vec<(&'static str, ArgValue)>) {
        if !self.enabled {
            return;
        }
        if let Some(open) = self.stack.pop() {
            self.events.push(Event {
                name: open.name,
                track: open.track,
                start: open.start,
                end: ts,
                args,
            });
        }
    }

    /// Number of spans currently open.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Recorded events, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all recorded events and open spans (e.g. between experiment
    /// runs on a reused device) without changing the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
        self.stack.clear();
    }

    /// Heap bytes held by the recording buffers. Exposed so tests can
    /// assert the disabled mode's zero-allocation guarantee.
    pub fn allocated_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<Event>()
            + self.stack.capacity() * std::mem::size_of::<OpenSpan>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_never_allocates() {
        let mut p = Profiler::off();
        for i in 0..1000u64 {
            p.record(Track::Kernel, "k", i, i + 1, Vec::new());
            p.begin(Track::Iteration, "iter", i);
            p.instant(Track::Sched, "arrival", i, Vec::new());
            p.end(i + 1);
        }
        assert!(p.is_empty());
        assert_eq!(p.allocated_bytes(), 0, "disabled mode must not allocate");
    }

    #[test]
    fn nested_spans_close_inner_first() {
        let mut p = Profiler::new(true);
        p.begin(Track::Iteration, "query", 0);
        p.begin(Track::Iteration, "iteration", 10);
        p.end_with_args(20, vec![("active", 4u64.into())]);
        p.end(100);
        assert_eq!(p.depth(), 0);
        let ev = p.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "iteration");
        assert_eq!((ev[0].start, ev[0].end), (10, 20));
        assert_eq!(ev[1].name, "query");
        assert_eq!((ev[1].start, ev[1].end), (0, 100));
        // The child is contained in the parent — Chrome nests by containment.
        assert!(ev[1].start <= ev[0].start && ev[0].end <= ev[1].end);
    }

    #[test]
    fn stray_end_is_ignored() {
        let mut p = Profiler::new(true);
        p.end(5);
        assert!(p.is_empty());
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn clear_resets_recording_but_not_enablement() {
        let mut p = Profiler::new(true);
        p.instant(Track::Um, "fault", 3, Vec::new());
        p.begin(Track::Kernel, "k", 4);
        assert_eq!(p.len(), 1);
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.depth(), 0);
        assert!(p.is_enabled());
    }

    #[test]
    fn instants_have_zero_extent() {
        let mut p = Profiler::new(true);
        p.instant(
            Track::Sched,
            "reject",
            7,
            vec![("reason", "queue_full".into())],
        );
        assert!(p.events()[0].is_instant());
        assert_eq!(p.events()[0].start, 7);
    }
}
